//! # incdx — Incremental Diagnosis and Correction of Multiple Faults and Errors
//!
//! A from-scratch Rust implementation of Veneris, Liu, Amiri and Abadir,
//! *"Incremental Diagnosis and Correction of Multiple Faults and Errors"*
//! (DATE 2002), together with every substrate the paper's experiments rest
//! on: a gate-level netlist kernel, a 64-way bit-parallel logic simulator,
//! the Abadir design-error model with Campenhout-distributed injection, a
//! PODEM ATPG, an area optimizer, and structural analogs of the ISCAS'85
//! and (full-scan) ISCAS'89 benchmark suites.
//!
//! The engine rectifies a netlist toward reference responses by
//! interleaving *diagnosis* (path-trace marking plus a flip-and-propagate
//! correcting-potential measure) and *correction* (fault-model/design-error
//! candidates screened by the `V_err`/`V_corr` bit-list heuristics and
//! ranked by `(1 − V_ratio)·h3 + V_ratio·h1`), traversing a decision tree
//! in rounds.
//!
//! ## Quickstart
//!
//! ```
//! use incdx::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The specification and the erroneous design.
//! let spec_nl = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
//! let design = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
//!
//! // Simulate the specification to obtain reference responses.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let vectors = PackedMatrix::random(spec_nl.inputs().len(), 64, &mut rng);
//! let mut sim = Simulator::new();
//! let spec = Response::capture(&spec_nl, &sim.run(&spec_nl, &vectors));
//!
//! // Diagnose and correct.
//! let result = Rectifier::new(design, vectors, spec, RectifyConfig::dedc(1))?.run();
//! assert!(!result.solutions.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`netlist`] | gates, netlists, `.bench` I/O, scan conversion, XOR expansion |
//! | [`sim`] | packed values, combinational/sequential simulation, responses |
//! | [`fault`] | stuck-at faults, design errors, injection, corrections |
//! | [`atpg`] | PODEM, fault simulation, deterministic test sets |
//! | [`opt`] | area optimization (the paper's §4.1 preprocessing) |
//! | [`gen`] | ISCAS-analog benchmark generators |
//! | [`core`] | the diagnosis/correction engine itself |

pub use incdx_atpg as atpg;
pub use incdx_core as core;
pub use incdx_fault as fault;
pub use incdx_gen as gen;
pub use incdx_netlist as netlist;
pub use incdx_opt as opt;
pub use incdx_sim as sim;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use incdx_core::{Rectifier, RectifyConfig, RectifyResult, Solution};
    pub use incdx_fault::{
        inject_design_errors, inject_stuck_at_faults, Correction, CorrectionAction,
        CorrectionModel, DesignError, DesignErrorKind, InjectionConfig, StuckAt,
    };
    pub use incdx_gen::generate;
    pub use incdx_netlist::{parse_bench, scan_convert, write_bench, GateId, GateKind, Netlist};
    pub use incdx_sim::{PackedBits, PackedMatrix, Response, SequentialSimulator, Simulator};
    pub use rand::SeedableRng;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = RectifyConfig::dedc(1);
        let _ = InjectionConfig::default();
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        assert_eq!(n.len(), 2);
    }
}
