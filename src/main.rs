//! `incdx` — command-line front end for the diagnosis/correction engine.
//!
//! ```text
//! incdx stats    <file.bench>
//! incdx generate <suite-name> [-o out.bench]
//! incdx optimize <file.bench> [-o out.bench]
//! incdx atpg     <file.bench> [--backtracks N]
//! incdx inject   <golden.bench> (--faults N | --errors N) [-o out.bench] [--seed N]
//! incdx diagnose <golden.bench> <device.bench> [--faults N] [--vectors N] [--seed N]
//! incdx dedc     <spec.bench> <design.bench> [--errors N] [--vectors N] [--seed N]
//! ```
//!
//! Sequential (DFF-bearing) inputs are scan-converted automatically for
//! `diagnose`/`dedc`/`atpg`/`optimize`.

use std::process::ExitCode;

use incdx::atpg::{generate_tests, FaultClasses, TestGenConfig};
use incdx::opt::{optimize_for_area, OptConfig};
use incdx::prelude::*;
use rand::rngs::StdRng;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!(
            "usage: incdx <stats|generate|optimize|atpg|inject|diagnose|dedc> ... (see --help)"
        );
        return ExitCode::from(2);
    };
    let rest = &argv[1..];
    let result = match command.as_str() {
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "optimize" => cmd_optimize(rest),
        "atpg" => cmd_atpg(rest),
        "inject" => cmd_inject(rest),
        "diagnose" => cmd_diagnose(rest),
        "dedc" => cmd_dedc(rest),
        "--help" | "-h" | "help" => {
            println!(
                "incdx — incremental diagnosis and correction of multiple faults and errors\n\
                 \n\
                 subcommands:\n\
                 \x20 stats    <file.bench>                       circuit statistics\n\
                 \x20 generate <suite-name> [-o out.bench]        emit a benchmark-suite circuit\n\
                 \x20 optimize <file.bench> [-o out.bench]        area optimization (§4.1 preprocessing)\n\
                 \x20 atpg     <file.bench> [--backtracks N]      deterministic test generation\n\
                 \x20 inject   <golden> --faults N|--errors N     corrupt a circuit [-o out.bench] [--seed N]\n\
                 \x20 diagnose <golden> <device> [--faults N]     exhaustive stuck-at diagnosis\n\
                 \x20 dedc     <spec> <design> [--errors N]       design error diagnosis & correction\n\
                 \n\
                 common flags: --vectors N (default 1024), --seed N (default 2002)"
            );
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------- helpers

struct Flags {
    positional: Vec<String>,
    out: Option<String>,
    faults: Option<usize>,
    errors: Option<usize>,
    vectors: usize,
    seed: u64,
    backtracks: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        positional: Vec::new(),
        out: None,
        faults: None,
        errors: None,
        vectors: 1024,
        seed: 2002,
        backtracks: 10_000,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match a.as_str() {
            "-o" | "--out" => flags.out = Some(value("-o")?),
            "--faults" => flags.faults = Some(num(&value("--faults")?)?),
            "--errors" => flags.errors = Some(num(&value("--errors")?)?),
            "--vectors" => flags.vectors = num(&value("--vectors")?)?,
            "--seed" => flags.seed = num(&value("--seed")?)? as u64,
            "--backtracks" => flags.backtracks = num(&value("--backtracks")?)?,
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            positional => flags.positional.push(positional.to_string()),
        }
    }
    Ok(flags)
}

fn num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn load(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse_bench(&text).map_err(|e| format!("`{path}`: {e}"))
}

fn load_comb(path: &str) -> Result<Netlist, String> {
    let n = load(path)?;
    if n.is_combinational() {
        Ok(n)
    } else {
        eprintln!("note: `{path}` is sequential; using its full-scan combinational core");
        scan_convert(&n)
            .map(|(core, _)| core)
            .map_err(|e| e.to_string())
    }
}

fn save(netlist: &Netlist, out: Option<&str>) -> Result<(), String> {
    let text = write_bench(netlist);
    match out {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn named(netlist: &Netlist, id: GateId) -> String {
    netlist
        .name(id)
        .map(|n| format!("{id} ({n})"))
        .unwrap_or_else(|| id.to_string())
}

// ------------------------------------------------------------ subcommands

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = &flags.positional[..] else {
        return Err("usage: incdx stats <file.bench>".into());
    };
    let n = load(path)?;
    let s = n.stats();
    println!("circuit   {path}");
    println!("gates     {}", s.gates);
    println!("inputs    {}", s.inputs);
    println!("outputs   {}", s.outputs);
    println!("dffs      {}", s.dffs);
    println!("lines     {} (stems + fanout branches)", s.lines);
    println!("depth     {}", s.depth);
    let mut kinds: Vec<_> = s.by_kind.iter().collect();
    kinds.sort_by_key(|(k, _)| format!("{k}"));
    for (kind, count) in kinds {
        println!("  {kind:<6} {count}");
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [name] = &flags.positional[..] else {
        let names: Vec<&str> = incdx::gen::SUITE.iter().map(|s| s.name).collect();
        return Err(format!(
            "usage: incdx generate <name> [-o out.bench]; names: {}",
            names.join(", ")
        ));
    };
    let n = generate(name).map_err(|e| e.to_string())?;
    save(&n, flags.out.as_deref())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = &flags.positional[..] else {
        return Err("usage: incdx optimize <file.bench> [-o out.bench]".into());
    };
    let n = load_comb(path)?;
    let r = optimize_for_area(&n, &OptConfig::default());
    eprintln!(
        "optimized: {} -> {} gates ({} removed, {} redundancies eliminated)",
        n.len(),
        r.netlist.len(),
        r.removed_gates,
        r.redundancies_removed
    );
    save(&r.netlist, flags.out.as_deref())
}

fn cmd_atpg(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = &flags.positional[..] else {
        return Err("usage: incdx atpg <file.bench> [--backtracks N]".into());
    };
    let n = load_comb(path)?;
    let classes = FaultClasses::build(&n);
    println!(
        "fault classes: {} over {} faults (collapse ratio {:.2})",
        classes.classes().len(),
        classes.total_faults(),
        classes.ratio()
    );
    let ts = generate_tests(
        &n,
        &TestGenConfig {
            backtrack_limit: flags.backtracks,
            batch: 64,
            collapse: true,
            compact: true,
        },
    );
    println!(
        "faults {}  detected {}  untestable {}  aborted {}  coverage {:.2}%  vectors {}",
        ts.total_faults,
        ts.detected,
        ts.untestable.len(),
        ts.aborted.len(),
        ts.coverage() * 100.0,
        ts.vectors.len()
    );
    for f in &ts.untestable {
        println!("redundant: {}", named(&n, f.line()));
    }
    Ok(())
}

fn cmd_inject(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [path] = &flags.positional[..] else {
        return Err("usage: incdx inject <golden.bench> (--faults N | --errors N) [-o out]".into());
    };
    let n = load_comb(path)?;
    let mut rng = StdRng::seed_from_u64(flags.seed);
    let config = InjectionConfig {
        count: flags.faults.or(flags.errors).unwrap_or(1),
        require_individually_observable: flags.errors.is_some(),
        check_vectors: flags.vectors,
        max_attempts: 300,
    };
    let corrupted = match (flags.faults, flags.errors) {
        (Some(_), None) => {
            let inj = inject_stuck_at_faults(&n, &config, &mut rng).map_err(|e| e.to_string())?;
            for f in &inj.injected {
                eprintln!("injected: {} at {}", f, named(&n, f.line()));
            }
            inj.corrupted
        }
        (None, Some(_)) => {
            let inj = inject_design_errors(&n, &config, &mut rng).map_err(|e| e.to_string())?;
            for e in &inj.injected {
                eprintln!("injected: {} ({})", e, named(&n, e.line()));
            }
            inj.corrupted
        }
        _ => return Err("pass exactly one of --faults N / --errors N".into()),
    };
    save(&corrupted, flags.out.as_deref())
}

fn cmd_diagnose(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [golden_path, device_path] = &flags.positional[..] else {
        return Err("usage: incdx diagnose <golden.bench> <device.bench> [--faults N]".into());
    };
    let golden = load_comb(golden_path)?;
    let device_netlist = load_comb(device_path)?;
    if device_netlist.outputs().len() != golden.outputs().len() {
        return Err("golden and device must have the same output count".into());
    }
    let mut rng = StdRng::seed_from_u64(flags.seed);
    let pi = PackedMatrix::random(golden.inputs().len(), flags.vectors, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &device_netlist,
        &sim.run_for_inputs(&device_netlist, golden.inputs(), &pi),
    );
    let k = flags.faults.unwrap_or(2);
    let result = Rectifier::new(
        golden.clone(),
        pi,
        device,
        RectifyConfig::stuck_at_exhaustive(k),
    )
    .map_err(|e| e.to_string())?
    .run();
    if result.solutions.len() == 1 && result.solutions[0].corrections.is_empty() {
        println!(
            "device matches the golden circuit on all {} vectors",
            flags.vectors
        );
        return Ok(());
    }
    println!(
        "{} minimal equivalent tuple(s) of size <= {k} over {} site(s) \
         ({} nodes explored{}):",
        result.solutions.len(),
        result.distinct_sites(),
        result.stats.nodes,
        if result.stats.truncated {
            ", budget hit"
        } else {
            ""
        },
    );
    for solution in &result.solutions {
        let tuple = solution.stuck_at_tuple().expect("stuck-at mode");
        let rendered: Vec<String> = tuple
            .iter()
            .map(|f| format!("{} stuck-at-{}", named(&golden, f.line()), f.value() as u8))
            .collect();
        println!("  {{{}}}", rendered.join(", "));
    }
    if result.solutions.is_empty() {
        println!("no tuple of size <= {k} explains the device; try a larger --faults");
    }
    Ok(())
}

fn cmd_dedc(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let [spec_path, design_path] = &flags.positional[..] else {
        return Err("usage: incdx dedc <spec.bench> <design.bench> [--errors N]".into());
    };
    let spec_netlist = load_comb(spec_path)?;
    let design = load_comb(design_path)?;
    if spec_netlist.outputs().len() != design.outputs().len() {
        return Err("spec and design must have the same output count".into());
    }
    if spec_netlist.inputs().len() != design.inputs().len() {
        return Err("spec and design must have the same input count".into());
    }
    let mut rng = StdRng::seed_from_u64(flags.seed);
    let pi = PackedMatrix::random(design.inputs().len(), flags.vectors, &mut rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&spec_netlist, &sim.run(&spec_netlist, &pi));
    let k = flags.errors.unwrap_or(3);
    let result = Rectifier::new(
        design.clone(),
        pi.clone(),
        spec.clone(),
        RectifyConfig::dedc(k),
    )
    .map_err(|e| e.to_string())?
    .run();
    let Some(solution) = result.solutions.first() else {
        println!(
            "no correction tuple of size <= {k} found ({} nodes explored); \
             try a larger --errors or more --vectors",
            result.stats.nodes
        );
        return Ok(());
    };
    if solution.corrections.is_empty() {
        println!(
            "design already matches the spec on all {} vectors",
            flags.vectors
        );
        return Ok(());
    }
    println!(
        "correction tuple ({} nodes, ladder level {}):",
        result.stats.nodes, result.stats.deepest_ladder_level
    );
    for c in &solution.corrections {
        println!("  {} [{}]", c, named(&design, c.line()));
    }
    // Verify before claiming success.
    let mut fixed = design.clone();
    for c in &solution.corrections {
        c.apply(&mut fixed).map_err(|e| e.to_string())?;
    }
    let check = Response::compare(
        &fixed,
        &sim.run_for_inputs(&fixed, design.inputs(), &pi),
        &spec,
    );
    if check.matches() {
        println!("verified: rectified design matches the spec on all vectors");
        Ok(())
    } else {
        Err("internal error: claimed solution failed verification".into())
    }
}
