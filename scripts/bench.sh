#!/usr/bin/env bash
# Before/after benchmark of the event-driven incremental resimulation
# engine. Runs the table1 (stuck-at) and fig2_rounds (DEDC) workloads
# twice — once with --no-incremental (full cone resimulation, no matrix
# cache) and once with the incremental engine — and aggregates the
# per-run RectifyReport JSON records into BENCH_incremental.json at the
# repo root: wall time and simulated words per circuit, plus the
# full/incremental words ratio. Results are bit-identical between the
# two modes; only the amount of simulation work differs.
#
# The defaults deliberately use one trial and a generous time limit: every
# run then ends at a *deterministic* budget (node/round caps), so the two
# modes traverse identical trees and the words ratio compares equal work —
# a clock-truncated run would only compare throughput.
#
# A second mode, `BENCH_MODE=traversal`, benchmarks the decision-tree
# traversal strategies instead: it runs the ablation_traversal workload
# (3-error DEDC) once per strategy (bfs, dfs, naive-bfs, best-first) and
# aggregates nodes expanded and engine wall time per (circuit, strategy)
# into BENCH_traversal.json.
#
# A third mode, `BENCH_MODE=robustness`, measures the cost of the
# resilience layer when armed but never tripped: the table1 workload
# runs once as the baseline and once with a deadline and node budget far
# above anything the run needs (chaos off). Both runs traverse identical
# trees — the script asserts the solution sets match — so the wall-time
# delta is the price of the once-per-plan-item limit checks. The budget
# is <= 2% overhead; BENCH_robustness.json records the measurement.
#
# A fourth mode, `BENCH_MODE=simd`, benchmarks the hierarchical sparse
# simulation kernel: the fig2_rounds workload runs once with --no-sparse
# (dense masked popcounts over every word) and once with --sparse (block
# summaries skip all-zero blocks). The two runs are bit-identical — the
# script asserts the solution fingerprints match — so the wall-time
# delta is pure kernel throughput. BENCH_simd.json records wall and CPU
# seconds per mode (the speedup is computed from CPU seconds, which a
# contended core cannot distort), per-circuit engine seconds, and the
# sparse-kernel counters (blocks_skipped, sparse_rows, dense_fallbacks).
# Each kernel runs BENCH_REPEATS times (default 5), interleaved with
# the other kernel pairwise, and times are summed,
# damping scheduler noise; simd mode also defaults to 4096 vectors —
# at the suite default of 1024 a row holds only four 256-vector blocks,
# so there is nothing for the block summary to skip.
#
# A fifth mode, `BENCH_MODE=scaling`, measures the speculative node
# dispatcher: the fig2_rounds (best-first) and table2 workloads run at
# --dispatch --jobs 1/2/4/8 and BENCH_scaling.json records wall and CPU
# seconds per job count plus the dispatcher telemetry (speculative
# hits/misses, steals, wasted tasks). The script asserts the solution
# fingerprints are identical across every job count — the dispatcher's
# determinism contract — and records the machine's core count, since
# wall-clock speedup is bounded by physical parallelism (on a 1-core
# host the expected speedup is <= 1.0 and the run measures overhead).
#
# A sixth mode, `BENCH_MODE=hierarchical`, benchmarks two-level
# hierarchical diagnosis at scale: the hier_scale binary runs paired
# flat/hierarchical first-solution trials (identical injections, stems
# of collapsed super-gates as fault sites) under one shared node budget
# on c6288-scale circuits from crates/gen (c6288a plus the generated
# parity2048 / sec256). BENCH_hierarchical.json records, per circuit,
# the abstraction leverage (abstract gates, collapse ratio) and each
# mode's solved count, summed nodes and wall time, plus the number of
# trials where the hierarchical run solved inside a budget the flat
# search exhausted — the mode's headline claim.
#
# A seventh mode, `BENCH_MODE=analysis`, measures static candidate
# pruning: the table1 (exhaustive stuck-at — both pruning rules) and
# fig2_rounds (DEDC — where pruning is a verified no-op) workloads run
# once with --no-prune and once with --prune. The script asserts the
# solution fingerprints are identical — the pruning soundness contract —
# and BENCH_analysis.json records, per circuit, nodes visited and words
# simulated in each mode, plus the pruned runs' analysis telemetry
# (prune checks, statically pruned candidates, constant/dominated line
# counts from the tables).
#
# An eighth mode, `BENCH_MODE=serve`, load-tests the `incdx-serve`
# daemon over its line-JSON TCP protocol via the serve_load binary:
# BENCH_SMALL closed-loop small jobs (c17, one slice) from
# BENCH_THREADS client threads race BENCH_GIANTS multi-slice c432a
# jobs through one daemon, then a second daemon is SIGKILLed mid-job
# and restarted over the same spool. BENCH_serve.json records
# p50/p99/max submit-to-terminal latency, throughput, the
# interned-artifact hit rate (basis points — must be nonzero), queue
# rejections/retries, and the recovery block (jobs recovered after the
# crash, and whether the resumed solution fingerprint is identical to
# an uninterrupted control run — serve_load exits nonzero otherwise).
#
# Environment overrides (defaults reproduce the committed benchmarks):
#   BENCH_MODE         incremental | traversal | robustness | simd | scaling | hierarchical | analysis | serve  (default incremental)
#   BENCH_SMALL        serve mode: small jobs            (default 1500)
#   BENCH_GIANTS       serve mode: giant jobs            (default 3)
#   BENCH_THREADS      serve mode: client threads        (default 4)
#   BENCH_WORKERS      serve mode: daemon worker threads (default 4)
#   BENCH_REPEATS      simd mode: runs per kernel, summed  (default 5)
#   BENCH_CIRCUITS     comma-separated suite circuits   (default c432a,c880a;
#                      hierarchical: c6288a,parity2048,sec256)
#   BENCH_EXPERIMENTS  space-separated subset to run    (default "table1 fig2_rounds")
#   BENCH_TRIALS       trials per cell                  (default 1; hierarchical: 3)
#   BENCH_VECTORS      test vectors per run             (default 1024; simd: 4096;
#                      hierarchical: 256)
#   BENCH_BUDGET       hierarchical mode: shared node budget per run (default 2000)
#   BENCH_SEED         master seed                      (default 2002)
#   BENCH_TIME_LIMIT   per-run limit, seconds           (default 600)
#   BENCH_OUT          output path (default BENCH_<mode>.json)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${BENCH_MODE:-incremental}"
if [ "$MODE" = hierarchical ]; then
    CIRCUITS="${BENCH_CIRCUITS:-c6288a,parity2048,sec256}"
else
    CIRCUITS="${BENCH_CIRCUITS:-c432a,c880a}"
fi
EXPERIMENTS="${BENCH_EXPERIMENTS:-table1 fig2_rounds}"
if [ "$MODE" = hierarchical ]; then
    TRIALS="${BENCH_TRIALS:-3}"
else
    TRIALS="${BENCH_TRIALS:-1}"
fi
if [ "$MODE" = simd ]; then
    VECTORS="${BENCH_VECTORS:-4096}"
elif [ "$MODE" = hierarchical ]; then
    # 256 vectors excite and discriminate the paired injections while
    # keeping three budget-bound runs per circuit affordable.
    VECTORS="${BENCH_VECTORS:-256}"
else
    VECTORS="${BENCH_VECTORS:-1024}"
fi
REPEATS="${BENCH_REPEATS:-5}"
SEED="${BENCH_SEED:-2002}"
TIME_LIMIT="${BENCH_TIME_LIMIT:-600}"
SMALL="${BENCH_SMALL:-1500}"
GIANTS="${BENCH_GIANTS:-3}"
THREADS="${BENCH_THREADS:-4}"
WORKERS="${BENCH_WORKERS:-4}"
case "$MODE" in
    incremental) OUT="${BENCH_OUT:-BENCH_incremental.json}" ;;
    traversal)   OUT="${BENCH_OUT:-BENCH_traversal.json}" ;;
    robustness)  OUT="${BENCH_OUT:-BENCH_robustness.json}" ;;
    simd)        OUT="${BENCH_OUT:-BENCH_simd.json}" ;;
    scaling)     OUT="${BENCH_OUT:-BENCH_scaling.json}" ;;
    hierarchical) OUT="${BENCH_OUT:-BENCH_hierarchical.json}" ;;
    analysis)    OUT="${BENCH_OUT:-BENCH_analysis.json}" ;;
    serve)       OUT="${BENCH_OUT:-BENCH_serve.json}" ;;
    *) echo "unknown BENCH_MODE $MODE (incremental|traversal|robustness|simd|scaling|hierarchical|analysis|serve)" >&2; exit 2 ;;
esac

echo "==> build (release)"
cargo build --release -p incdx-bench
if [ "$MODE" = serve ]; then
    cargo build --release -p incdx-serve
fi

bin=target/release
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if [ "$MODE" = serve ]; then
    # serve_load drives real daemon processes over TCP, asserts the
    # kill -9 recovery fingerprint matches the uninterrupted control
    # run, and exits nonzero if the intern hit rate is zero — the two
    # acceptance properties gate the benchmark artifact itself.
    echo "==> serve_load ($SMALL small + $GIANTS giant jobs, $THREADS clients, $WORKERS workers)"
    "$bin/serve_load" --daemon "$bin/incdx-serve" --spool "$tmp/serve-spool" \
        --small "$SMALL" --giants "$GIANTS" --threads "$THREADS" --workers "$WORKERS" \
        --json > "$OUT"
    cat "$OUT"
    echo "wrote $OUT"
    exit 0
fi

if [ "$MODE" = traversal ]; then
    # One ablation_traversal invocation runs every strategy on every
    # circuit; the per-run JSON records carry the strategy in their label
    # (ablation_traversal/<circuit>/<strategy>/t<trial>).
    log="$tmp/traversal.jsonl"
    echo "==> ablation_traversal (all strategies)"
    "$bin/ablation_traversal" --circuits "$CIRCUITS" --trials "$TRIALS" \
        --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
        --json | grep '"report":"rectify"' > "$log"

    # Per (circuit, strategy): summed nodes expanded and engine seconds
    # (diagnosis + correction phases — the search itself, not setup).
    awk '{
        if (match($0, /"label":"[^"]*"/)) {
            label = substr($0, RSTART + 9, RLENGTH - 10)
            split(label, p, "/")
        }
        nodes = dt = ct = 0
        if (match($0, /"nodes":[0-9]+/)) {
            s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); nodes = s + 0
        }
        if (match($0, /"diagnosis":[0-9.]+/)) {
            s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); dt = s + 0
        }
        if (match($0, /"correction":[0-9.]+/)) {
            s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); ct = s + 0
        }
        key = p[2] "/" p[3]
        n[key] += nodes; t[key] += dt + ct; solved[key] += ($0 ~ /"solutions":0/) ? 0 : 1
        runs[key]++
    } END {
        for (k in n) printf "%s %d %.6f %d %d\n", k, n[k], t[k], solved[k], runs[k]
    }' "$log" | sort > "$tmp/traversal.agg"

    {
        printf '{"bench":"traversal_strategies","seed":%s,"trials":%s,"vectors":%s' \
            "$SEED" "$TRIALS" "$VECTORS"
        printf ',"circuits":['
        first_ckt=1
        for ckt in ${CIRCUITS//,/ }; do
            [ "$first_ckt" -eq 1 ] || printf ','
            first_ckt=0
            printf '{"circuit":"%s","strategies":[' "$ckt"
            first_strat=1
            for strat in bfs dfs naive-bfs best-first; do
                line="$(awk -v k="$ckt/$strat" '$1==k' "$tmp/traversal.agg")"
                [ -n "$line" ] || continue
                read -r _ nodes secs solved runs <<< "$line"
                [ "$first_strat" -eq 1 ] || printf ','
                first_strat=0
                printf '{"traversal":"%s","nodes":%s,"engine_s":%s,"solved":%s,"runs":%s}' \
                    "$strat" "$nodes" "$secs" "$solved" "$runs"
                echo "    $ckt/$strat: nodes=$nodes engine_s=$secs solved=$solved/$runs" >&2
            done
            printf ']}'
        done
        printf ']}\n'
    } > "$OUT"
    echo "wrote $OUT"
    exit 0
fi

if [ "$MODE" = robustness ]; then
    # $1=run name, rest = extra table1 flags. Captures the JSON records
    # and prints the run's wall seconds.
    run_table1() {
        local name="$1" t0 t1
        shift
        t0=$(date +%s.%N)
        "$bin/table1" --circuits "$CIRCUITS" --trials "$TRIALS" \
            --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
            --json "$@" | grep '"report":"rectify"' > "$tmp/$name.jsonl"
        t1=$(date +%s.%N)
        awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}'
    }
    # Sorted "label solutions distinct_sites" fingerprint of a run —
    # armed limits must not change what the search finds.
    fingerprint() {
        sed -E 's/.*"label":"([^"]*)".*"solutions":([0-9]+),"distinct_sites":([0-9]+).*/\1 \2 \3/' \
            "$1" | sort
    }
    echo "==> table1 (baseline)"
    base_wall=$(run_table1 baseline)
    echo "==> table1 (limits armed, chaos off)"
    armed_wall=$(run_table1 armed --deadline-ms 86400000 --max-nodes 1000000000)
    if [ "$(fingerprint "$tmp/baseline.jsonl")" != "$(fingerprint "$tmp/armed.jsonl")" ]; then
        echo "armed-limits run diverged from the baseline solution set" >&2
        exit 1
    fi
    overhead=$(awk -v b="$base_wall" -v a="$armed_wall" \
        'BEGIN{if (b > 0) printf "%.2f", (a - b) / b * 100; else print "null"}')
    printf '{"bench":"robustness_overhead","seed":%s,"trials":%s,"vectors":%s,"circuits":"%s","wall_s":{"baseline":%s,"armed":%s},"overhead_pct":%s,"budget_pct":2.0,"results_identical":true}\n' \
        "$SEED" "$TRIALS" "$VECTORS" "$CIRCUITS" "$base_wall" "$armed_wall" \
        "$overhead" > "$OUT"
    echo "    wall: baseline=${base_wall}s armed=${armed_wall}s overhead=${overhead}%" >&2
    case "$overhead" in
        -*|null) ;;
        *) awk -v o="$overhead" 'BEGIN{exit !(o > 2.0)}' \
            && echo "warning: armed-limits overhead ${overhead}% exceeds the 2% budget" >&2 ;;
    esac
    echo "wrote $OUT"
    exit 0
fi

if [ "$MODE" = simd ]; then
    # $1=run name, $2=kernel flag. Captures the JSON records and prints
    # the run's wall seconds (fig2_rounds benches one circuit per
    # invocation).
    # One fig2_rounds invocation; appends its records to $tmp/$1.jsonl
    # and its "<wall_s> <user_s> <sys_s>" line to $tmp/$1.times. CPU
    # seconds (user+sys) are immune to other processes stealing the
    # core; wall time is recorded alongside for context. Dense and
    # sparse invocations are interleaved pairwise so both kernels
    # sample the same machine conditions.
    run_one() {
        local name="$1" flag="$2" ckt="$3" rep="$4" t0 t1
        t0=$(date +%s.%N)
        local TIMEFORMAT='%U %S'
        { time "$bin/fig2_rounds" --circuits "$ckt" --vectors "$VECTORS" \
            --seed "$SEED" --time-limit "$TIME_LIMIT" \
            --json "$flag" | grep '"report":"rectify"' \
            | sed "s/\"label\":\"/&r$rep\//" >> "$tmp/$name.jsonl"
        } 2> "$tmp/one.cpu"
        t1=$(date +%s.%N)
        { awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f ", b-a}'
          cat "$tmp/one.cpu"; } >> "$tmp/$name.times"
    }
    # Sums "$tmp/$1.times" into "<wall_s> <cpu_s>".
    sum_times() {
        awk '{w += $1; c += $2 + $3} END {printf "%.3f %.3f", w, c}' "$tmp/$1.times"
    }
    # Sorted "label solutions distinct_sites" fingerprint — the sparse
    # kernel must not change what the search finds.
    fingerprint() {
        sed -E 's/.*"label":"([^"]*)".*"solutions":([0-9]+),"distinct_sites":([0-9]+).*/\1 \2 \3/' \
            "$1" | sort
    }
    # Sums diagnosis+correction engine seconds for one circuit across a
    # run's JSON records (labels are r<rep>/fig2_rounds/<circuit>/...).
    engine_s() {
        awk -v c="$2" '{
            if (match($0, /"label":"[^"]*"/)) {
                label = substr($0, RSTART + 10, RLENGTH - 11)
                split(label, p, "/")
            }
            if (p[3] != c) next
            while (match($0, /"(diagnosis|correction)":[0-9.]+/)) {
                s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); t += s + 0
                $0 = substr($0, RSTART + RLENGTH)
            }
        } END { printf "%.3f", t }' "$1"
    }
    # Sums one numeric counter field across a run's JSON records.
    sum_field() {
        awk -v f="\"$2\":" '{
            while (match($0, f "[0-9]+")) {
                s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); total += s + 0
                $0 = substr($0, RSTART + RLENGTH)
            }
        } END { print total + 0 }' "$1"
    }
    : > "$tmp/dense.jsonl"; : > "$tmp/dense.times"
    : > "$tmp/sparse.jsonl"; : > "$tmp/sparse.times"
    for rep in $(seq "$REPEATS"); do
        for ckt in ${CIRCUITS//,/ }; do
            echo "==> fig2_rounds $ckt r$rep (dense, then sparse)"
            run_one dense --no-sparse "$ckt" "$rep"
            run_one sparse --sparse "$ckt" "$rep"
        done
    done
    read -r dense_wall dense_cpu <<< "$(sum_times dense)"
    read -r sparse_wall sparse_cpu <<< "$(sum_times sparse)"
    if [ "$(fingerprint "$tmp/dense.jsonl")" != "$(fingerprint "$tmp/sparse.jsonl")" ]; then
        echo "sparse-kernel run diverged from the dense solution set" >&2
        exit 1
    fi
    blocks_skipped=$(sum_field "$tmp/sparse.jsonl" blocks_skipped)
    sparse_rows=$(sum_field "$tmp/sparse.jsonl" sparse_rows)
    dense_fallbacks=$(sum_field "$tmp/sparse.jsonl" dense_fallbacks)
    speedup=$(awk -v d="$dense_cpu" -v s="$sparse_cpu" \
        'BEGIN{if (s > 0) printf "%.2f", d/s; else print "null"}')
    per_circuit=""
    first_ckt=1
    for ckt in ${CIRCUITS//,/ }; do
        de=$(engine_s "$tmp/dense.jsonl" "$ckt")
        se=$(engine_s "$tmp/sparse.jsonl" "$ckt")
        [ "$first_ckt" -eq 1 ] || per_circuit="$per_circuit,"
        first_ckt=0
        per_circuit="$per_circuit{\"circuit\":\"$ckt\",\"engine_s\":{\"dense\":$de,\"sparse\":$se}}"
        echo "    $ckt engine: dense=${de}s sparse=${se}s" >&2
    done
    printf '{"bench":"sparse_simd_kernel","seed":%s,"repeats":%s,"vectors":%s,"circuits":[%s],"wall_s":{"dense":%s,"sparse":%s},"cpu_s":{"dense":%s,"sparse":%s},"speedup":%s,"counters":{"blocks_skipped":%s,"sparse_rows":%s,"dense_fallbacks":%s},"results_identical":true}\n' \
        "$SEED" "$REPEATS" "$VECTORS" "$per_circuit" "$dense_wall" "$sparse_wall" \
        "$dense_cpu" "$sparse_cpu" \
        "$speedup" "$blocks_skipped" "$sparse_rows" "$dense_fallbacks" > "$OUT"
    echo "    wall: dense=${dense_wall}s sparse=${sparse_wall}s" >&2
    echo "    cpu:  dense=${dense_cpu}s sparse=${sparse_cpu}s speedup=${speedup}x" >&2
    echo "    counters: blocks_skipped=$blocks_skipped sparse_rows=$sparse_rows dense_fallbacks=$dense_fallbacks" >&2
    echo "wrote $OUT"
    exit 0
fi

if [ "$MODE" = hierarchical ]; then
    BUDGET="${BENCH_BUDGET:-2000}"
    log="$tmp/hier.jsonl"
    echo "==> hier_scale (paired flat/hierarchical, node budget $BUDGET)"
    "$bin/hier_scale" --circuits "$CIRCUITS" --trials "$TRIALS" \
        --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
        --max-nodes "$BUDGET" --json | grep '"report":"hier_scale"' > "$log"

    # Per circuit: static leverage, per-mode aggregates, and the count of
    # trials where the hierarchical run solved inside a budget the flat
    # search exhausted (the mode's headline).
    awk '{
        c = m = ""; t = g = s = nd = w = ag = 0; cr = 1.0
        if (match($0, /"circuit":"[^"]*"/)) c = substr($0, RSTART + 11, RLENGTH - 12)
        if (match($0, /"mode":"[^"]*"/)) m = substr($0, RSTART + 8, RLENGTH - 9)
        if (match($0, /"trial":[0-9]+/)) { x = substr($0, RSTART, RLENGTH); sub(/.*:/, "", x); t = x + 0 }
        if (match($0, /"gates":[0-9]+/)) { x = substr($0, RSTART, RLENGTH); sub(/.*:/, "", x); g = x + 0 }
        if (match($0, /"solved":true/)) s = 1
        if (match($0, /"nodes":[0-9]+/)) { x = substr($0, RSTART, RLENGTH); sub(/.*:/, "", x); nd = x + 0 }
        if (match($0, /"wall_ms":[0-9]+/)) { x = substr($0, RSTART, RLENGTH); sub(/.*:/, "", x); w = x + 0 }
        if (match($0, /"abstract_gates":[0-9]+/)) { x = substr($0, RSTART, RLENGTH); sub(/.*:/, "", x); ag = x + 0 }
        if (match($0, /"collapse_ratio":[0-9.]+/)) { x = substr($0, RSTART, RLENGTH); sub(/.*:/, "", x); cr = x + 0 }
        if (c == "" || m == "") next
        runs[c "/" m]++; solved[c "/" m] += s
        nodes[c "/" m] += nd; wall[c "/" m] += w
        gates[c] = g
        if (m == "hierarchical") { agates[c] = ag; ratio[c] = cr }
        ok[c "/" t "/" m] = s
        seen[c "/" t] = c
    } END {
        for (k in seen) {
            split(k, p, "/")
            if (!ok[p[1] "/" p[2] "/flat"] && ok[p[1] "/" p[2] "/hierarchical"])
                win[p[1]]++
        }
        for (c in gates)
            printf "%s %d %d %.4f %d %d %d %d %d %d %d %d %d\n", c, gates[c], \
                agates[c], ratio[c], \
                solved[c "/flat"], runs[c "/flat"], nodes[c "/flat"], wall[c "/flat"], \
                solved[c "/hierarchical"], runs[c "/hierarchical"], \
                nodes[c "/hierarchical"], wall[c "/hierarchical"], win[c] + 0
    }' "$log" | sort > "$tmp/hier.agg"

    {
        printf '{"bench":"hierarchical_scale","seed":%s,"trials":%s,"vectors":%s,"budget":%s,"faults":2' \
            "$SEED" "$TRIALS" "$VECTORS" "$BUDGET"
        printf ',"circuits":['
        first_ckt=1
        for ckt in ${CIRCUITS//,/ }; do
            line="$(awk -v c="$ckt" '$1==c' "$tmp/hier.agg")"
            [ -n "$line" ] || continue
            read -r _ g ag cr fs fr fn fw hs hr hn hw win <<< "$line"
            [ "$first_ckt" -eq 1 ] || printf ','
            first_ckt=0
            printf '{"circuit":"%s","gates":%s,"abstract_gates":%s,"collapse_ratio":%s' \
                "$ckt" "$g" "$ag" "$cr"
            printf ',"flat":{"solved":%s,"runs":%s,"nodes":%s,"wall_ms":%s}' \
                "$fs" "$fr" "$fn" "$fw"
            printf ',"hierarchical":{"solved":%s,"runs":%s,"nodes":%s,"wall_ms":%s}' \
                "$hs" "$hr" "$hn" "$hw"
            printf ',"hier_solves_where_flat_exhausts":%s}' "$win"
            echo "    $ckt: ratio=$cr flat ${fs}/${fr} (${fn} nodes) hier ${hs}/${hr} (${hn} nodes) wins=$win" >&2
        done
        printf ']}\n'
    } > "$OUT"
    echo "wrote $OUT"
    exit 0
fi

if [ "$MODE" = analysis ]; then
    # $1=experiment $2=prune mode (off|on) $3=flag. Captures the JSON
    # records in $tmp/$1.$2.jsonl and the wall seconds in $tmp/$1.$2.wall.
    run_exp() {
        local exp="$1" mode="$2" flag="$3" t0 t1
        local log="$tmp/$exp.$mode.jsonl"
        echo "==> $exp (pruning $mode)"
        t0=$(date +%s.%N)
        case "$exp" in
            table1)
                "$bin/table1" --circuits "$CIRCUITS" --trials "$TRIALS" \
                    --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
                    --json "$flag" | grep '"report":"rectify"' > "$log" ;;
            fig2_rounds)
                # fig2_rounds benches one circuit per invocation.
                : > "$log"
                local ckt
                for ckt in ${CIRCUITS//,/ }; do
                    "$bin/fig2_rounds" --circuits "$ckt" --vectors "$VECTORS" \
                        --seed "$SEED" --time-limit "$TIME_LIMIT" \
                        --json "$flag" | grep '"report":"rectify"' >> "$log"
                done ;;
            *) echo "unknown experiment $exp" >&2; exit 2 ;;
        esac
        t1=$(date +%s.%N)
        awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}' > "$tmp/$exp.$mode.wall"
    }
    # Sorted "label solutions distinct_sites" fingerprint — pruning must
    # not change what the search finds.
    fingerprint() {
        sed -E 's/.*"label":"([^"]*)".*"solutions":([0-9]+),"distinct_sites":([0-9]+).*/\1 \2 \3/' \
            "$1" | sort
    }
    # Sums one regex-matched numeric field over a run's records,
    # restricted to one circuit (the label's second `/` segment) when $3
    # is non-empty.
    sum_match() { # $1=jsonl $2=regex with trailing :[0-9]+ $3=circuit|""
        awk -v c="$3" -v re="$2" '{
            if (match($0, /"label":"[^"]*"/)) {
                label = substr($0, RSTART + 9, RLENGTH - 10); split(label, p, "/")
            }
            if (c != "" && p[2] != c) next
            if (match($0, re)) {
                s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); t += s + 0
            }
        } END { print t + 0 }' "$1"
    }
    for exp in $EXPERIMENTS; do
        run_exp "$exp" off --no-prune
        run_exp "$exp" on --prune
        if [ "$(fingerprint "$tmp/$exp.off.jsonl")" != "$(fingerprint "$tmp/$exp.on.jsonl")" ]; then
            echo "$exp --prune diverged from the --no-prune solution set" >&2
            exit 1
        fi
    done
    {
        printf '{"bench":"static_pruning","seed":%s,"trials":%s,"vectors":%s,"results_identical":true' \
            "$SEED" "$TRIALS" "$VECTORS"
        printf ',"experiments":['
        first_exp=1
        for exp in $EXPERIMENTS; do
            [ "$first_exp" -eq 1 ] || printf ','
            first_exp=0
            off_wall=$(cat "$tmp/$exp.off.wall")
            on_wall=$(cat "$tmp/$exp.on.wall")
            checks=$(sum_match "$tmp/$exp.on.jsonl" '"prune_checks":[0-9]+' "")
            pruned=$(sum_match "$tmp/$exp.on.jsonl" '"static_pruned":[0-9]+' "")
            consts=$(sum_match "$tmp/$exp.on.jsonl" '"const_lines":[0-9]+' "")
            doms=$(sum_match "$tmp/$exp.on.jsonl" '"dominated_lines":[0-9]+' "")
            printf '{"experiment":"%s","wall_s":{"off":%s,"on":%s}' \
                "$exp" "$off_wall" "$on_wall"
            printf ',"prune":{"checks":%s,"static_pruned":%s,"const_lines":%s,"dominated_lines":%s}' \
                "$checks" "$pruned" "$consts" "$doms"
            printf ',"circuits":['
            first_ckt=1
            for ckt in ${CIRCUITS//,/ }; do
                no=$(sum_match "$tmp/$exp.off.jsonl" '"nodes":[0-9]+' "$ckt")
                yo=$(sum_match "$tmp/$exp.on.jsonl" '"nodes":[0-9]+' "$ckt")
                wo=$(sum_match "$tmp/$exp.off.jsonl" '"words":[0-9]+' "$ckt")
                wy=$(sum_match "$tmp/$exp.on.jsonl" '"words":[0-9]+' "$ckt")
                [ "$first_ckt" -eq 1 ] || printf ','
                first_ckt=0
                printf '{"circuit":"%s","nodes":{"off":%s,"on":%s},"words_simulated":{"off":%s,"on":%s}}' \
                    "$ckt" "$no" "$yo" "$wo" "$wy"
                echo "    $exp/$ckt: nodes off=$no on=$yo, words off=$wo on=$wy" >&2
            done
            printf ']}'
            echo "    $exp: wall off=${off_wall}s on=${on_wall}s checks=$checks pruned=$pruned" >&2
        done
        printf ']}\n'
    } > "$OUT"
    echo "wrote $OUT"
    exit 0
fi

if [ "$MODE" = scaling ]; then
    JOB_COUNTS="${BENCH_JOBS:-1 2 4 8}"
    cores=$(nproc)
    # One run of both workloads at a job count. Appends records to
    # $tmp/j$1.jsonl and "<wall_s> <user_s> <sys_s>" per invocation to
    # $tmp/j$1.times. fig2_rounds uses best-first (the policy whose
    # frontier priorities the dispatcher exploits most); table2 keeps
    # the paper's round-robin default. jobs=1 never arms the dispatcher
    # (pure serial baseline); jobs>1 runs the speculative workers.
    run_jobs() {
        local jobs="$1" t0 t1 ckt
        local TIMEFORMAT='%U %S'
        for ckt in ${CIRCUITS//,/ }; do
            t0=$(date +%s.%N)
            { time "$bin/fig2_rounds" --circuits "$ckt" --vectors "$VECTORS" \
                --seed "$SEED" --time-limit "$TIME_LIMIT" \
                --traversal best-first --dispatch --jobs "$jobs" \
                --json | grep '"report":"rectify"' >> "$tmp/j$jobs.jsonl"
            } 2> "$tmp/one.cpu"
            t1=$(date +%s.%N)
            { awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f ", b-a}'
              cat "$tmp/one.cpu"; } >> "$tmp/j$jobs.times"
        done
        t0=$(date +%s.%N)
        { time "$bin/table2" --circuits "$CIRCUITS" --trials "$TRIALS" \
            --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
            --dispatch --jobs "$jobs" \
            --json | grep '"report":"rectify"' >> "$tmp/j$jobs.jsonl"
        } 2> "$tmp/one.cpu"
        t1=$(date +%s.%N)
        { awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f ", b-a}'
          cat "$tmp/one.cpu"; } >> "$tmp/j$jobs.times"
    }
    # Sorted "label solutions distinct_sites" fingerprint — the
    # dispatcher must not change what the search finds at any job count.
    fingerprint() {
        sed -E 's/.*"label":"([^"]*)".*"solutions":([0-9]+),"distinct_sites":([0-9]+).*/\1 \2 \3/' \
            "$1" | sort
    }
    sum_times() {
        awk '{w += $1; c += $2 + $3} END {printf "%.3f %.3f", w, c}' "$tmp/j$1.times"
    }
    # Sums one numeric dispatcher-telemetry field across a run's records.
    sum_field() {
        awk -v f="\"$2\":" '{
            while (match($0, f "[0-9]+")) {
                s = substr($0, RSTART, RLENGTH); sub(/.*:/, "", s); total += s + 0
                $0 = substr($0, RSTART + RLENGTH)
            }
        } END { print total + 0 }' "$tmp/j$1.jsonl"
    }
    for jobs in $JOB_COUNTS; do
        echo "==> scaling run: --dispatch --jobs $jobs"
        : > "$tmp/j$jobs.jsonl"; : > "$tmp/j$jobs.times"
        run_jobs "$jobs"
    done
    base_jobs="${JOB_COUNTS%% *}"
    base_fp="$(fingerprint "$tmp/j$base_jobs.jsonl")"
    for jobs in $JOB_COUNTS; do
        if [ "$(fingerprint "$tmp/j$jobs.jsonl")" != "$base_fp" ]; then
            echo "jobs=$jobs diverged from the jobs=$base_jobs solution set" >&2
            exit 1
        fi
    done
    read -r base_wall _base_cpu <<< "$(sum_times "$base_jobs")"
    {
        printf '{"bench":"dispatch_scaling","seed":%s,"trials":%s,"vectors":%s,"circuits":"%s","cores":%s,"results_identical":true' \
            "$SEED" "$TRIALS" "$VECTORS" "$CIRCUITS" "$cores"
        printf ',"runs":['
        first=1
        for jobs in $JOB_COUNTS; do
            read -r wall cpu <<< "$(sum_times "$jobs")"
            speedup=$(awk -v b="$base_wall" -v w="$wall" \
                'BEGIN{if (w > 0) printf "%.2f", b/w; else print "null"}')
            hits=$(sum_field "$jobs" speculative_hits)
            misses=$(sum_field "$jobs" speculative_misses)
            stolen=$(sum_field "$jobs" tasks_stolen)
            wasted=$(sum_field "$jobs" tasks_wasted)
            executed=$(sum_field "$jobs" tasks_executed)
            [ "$first" -eq 1 ] || printf ','
            first=0
            printf '{"jobs":%s,"wall_s":%s,"cpu_s":%s,"speedup_vs_serial":%s,"dispatch":{"tasks_executed":%s,"speculative_hits":%s,"speculative_misses":%s,"tasks_stolen":%s,"tasks_wasted":%s}}' \
                "$jobs" "$wall" "$cpu" "$speedup" \
                "$executed" "$hits" "$misses" "$stolen" "$wasted"
            echo "    jobs=$jobs wall=${wall}s cpu=${cpu}s speedup=${speedup}x hits=$hits misses=$misses stolen=$stolen wasted=$wasted" >&2
        done
        printf ']}\n'
    } > "$OUT"
    echo "wrote $OUT"
    exit 0
fi

# Runs one experiment binary in one mode, capturing its JSON records and
# wall time. $1=experiment $2=mode(full|incremental) $3=extra flag
run_mode() {
    local exp="$1" mode="$2" flag="$3" t0 t1
    local log="$tmp/$exp.$mode.jsonl"
    echo "==> $exp ($mode)"
    t0=$(date +%s.%N)
    case "$exp" in
        table1)
            "$bin/table1" --circuits "$CIRCUITS" --trials "$TRIALS" \
                --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
                --json $flag | grep '"report":"rectify"' > "$log" ;;
        fig2_rounds)
            # fig2_rounds benches one circuit per invocation.
            : > "$log"
            local ckt
            for ckt in ${CIRCUITS//,/ }; do
                "$bin/fig2_rounds" --circuits "$ckt" --vectors "$VECTORS" \
                    --seed "$SEED" --time-limit "$TIME_LIMIT" \
                    --json $flag | grep '"report":"rectify"' >> "$log"
            done ;;
        *) echo "unknown experiment $exp" >&2; exit 2 ;;
    esac
    t1=$(date +%s.%N)
    echo "$t0 $t1" > "$tmp/$exp.$mode.time"
}

for exp in $EXPERIMENTS; do
    run_mode "$exp" full "--no-incremental"
    run_mode "$exp" incremental "--incremental"
done

# Aggregate the one-line JSON records: per (experiment, circuit, mode),
# sum simulated words; per (experiment, mode), wall seconds.
awk_extract() { # $1=jsonl file → lines "circuit words"
    awk '{
        label = ""; words = 0
        if (match($0, /"label":"[^"]*"/)) {
            label = substr($0, RSTART + 9, RLENGTH - 10)
            split(label, parts, "/")
        }
        if (match($0, /"simulation":\{"words":[0-9]+/)) {
            s = substr($0, RSTART, RLENGTH)
            sub(/.*:/, "", s); words = s + 0
        }
        if (label != "") print parts[2], words
    }' "$1"
}

{
    printf '{"bench":"incremental_resimulation","seed":%s,"trials":%s,"vectors":%s' \
        "$SEED" "$TRIALS" "$VECTORS"
    printf ',"experiments":['
    first_exp=1
    for exp in $EXPERIMENTS; do
        [ "$first_exp" -eq 1 ] || printf ','
        first_exp=0
        read -r f0 f1 < "$tmp/$exp.full.time"
        read -r i0 i1 < "$tmp/$exp.incremental.time"
        full_wall=$(awk -v a="$f0" -v b="$f1" 'BEGIN{printf "%.3f", b-a}')
        inc_wall=$(awk -v a="$i0" -v b="$i1" 'BEGIN{printf "%.3f", b-a}')
        printf '{"experiment":"%s","wall_s":{"full":%s,"incremental":%s},"circuits":[' \
            "$exp" "$full_wall" "$inc_wall"
        first_ckt=1
        for ckt in ${CIRCUITS//,/ }; do
            fw=$(awk_extract "$tmp/$exp.full.jsonl" | awk -v c="$ckt" '$1==c{s+=$2}END{print s+0}')
            iw=$(awk_extract "$tmp/$exp.incremental.jsonl" | awk -v c="$ckt" '$1==c{s+=$2}END{print s+0}')
            ratio=$(awk -v f="$fw" -v i="$iw" 'BEGIN{if (i > 0) printf "%.2f", f/i; else printf "null"}')
            [ "$first_ckt" -eq 1 ] || printf ','
            first_ckt=0
            printf '{"circuit":"%s","words_simulated":{"full":%s,"incremental":%s},"ratio":%s}' \
                "$ckt" "$fw" "$iw" "$ratio"
            echo "    $exp/$ckt: words full=$fw incremental=$iw (ratio $ratio)" >&2
        done
        printf ']}'
        echo "    $exp wall: full=${full_wall}s incremental=${inc_wall}s" >&2
    done
    printf ']}\n'
} > "$OUT"

echo "wrote $OUT"
