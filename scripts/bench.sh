#!/usr/bin/env bash
# Before/after benchmark of the event-driven incremental resimulation
# engine. Runs the table1 (stuck-at) and fig2_rounds (DEDC) workloads
# twice — once with --no-incremental (full cone resimulation, no matrix
# cache) and once with the incremental engine — and aggregates the
# per-run RectifyReport JSON records into BENCH_incremental.json at the
# repo root: wall time and simulated words per circuit, plus the
# full/incremental words ratio. Results are bit-identical between the
# two modes; only the amount of simulation work differs.
#
# The defaults deliberately use one trial and a generous time limit: every
# run then ends at a *deterministic* budget (node/round caps), so the two
# modes traverse identical trees and the words ratio compares equal work —
# a clock-truncated run would only compare throughput.
#
# Environment overrides (defaults reproduce the committed benchmark):
#   BENCH_CIRCUITS     comma-separated suite circuits   (default c432a,c880a)
#   BENCH_EXPERIMENTS  space-separated subset to run    (default "table1 fig2_rounds")
#   BENCH_TRIALS       trials per table1 cell           (default 1)
#   BENCH_VECTORS      test vectors per run             (default 1024)
#   BENCH_SEED         master seed                      (default 2002)
#   BENCH_TIME_LIMIT   per-run limit, seconds           (default 600)
#   BENCH_OUT          output path                      (default BENCH_incremental.json)
set -euo pipefail
cd "$(dirname "$0")/.."

CIRCUITS="${BENCH_CIRCUITS:-c432a,c880a}"
EXPERIMENTS="${BENCH_EXPERIMENTS:-table1 fig2_rounds}"
TRIALS="${BENCH_TRIALS:-1}"
VECTORS="${BENCH_VECTORS:-1024}"
SEED="${BENCH_SEED:-2002}"
TIME_LIMIT="${BENCH_TIME_LIMIT:-600}"
OUT="${BENCH_OUT:-BENCH_incremental.json}"

echo "==> build (release)"
cargo build --release -p incdx-bench

bin=target/release
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Runs one experiment binary in one mode, capturing its JSON records and
# wall time. $1=experiment $2=mode(full|incremental) $3=extra flag
run_mode() {
    local exp="$1" mode="$2" flag="$3" t0 t1
    local log="$tmp/$exp.$mode.jsonl"
    echo "==> $exp ($mode)"
    t0=$(date +%s.%N)
    case "$exp" in
        table1)
            "$bin/table1" --circuits "$CIRCUITS" --trials "$TRIALS" \
                --vectors "$VECTORS" --seed "$SEED" --time-limit "$TIME_LIMIT" \
                --json $flag | grep '"report":"rectify"' > "$log" ;;
        fig2_rounds)
            # fig2_rounds benches one circuit per invocation.
            : > "$log"
            local ckt
            for ckt in ${CIRCUITS//,/ }; do
                "$bin/fig2_rounds" --circuits "$ckt" --vectors "$VECTORS" \
                    --seed "$SEED" --time-limit "$TIME_LIMIT" \
                    --json $flag | grep '"report":"rectify"' >> "$log"
            done ;;
        *) echo "unknown experiment $exp" >&2; exit 2 ;;
    esac
    t1=$(date +%s.%N)
    echo "$t0 $t1" > "$tmp/$exp.$mode.time"
}

for exp in $EXPERIMENTS; do
    run_mode "$exp" full "--no-incremental"
    run_mode "$exp" incremental "--incremental"
done

# Aggregate the one-line JSON records: per (experiment, circuit, mode),
# sum simulated words; per (experiment, mode), wall seconds.
awk_extract() { # $1=jsonl file → lines "circuit words"
    awk '{
        label = ""; words = 0
        if (match($0, /"label":"[^"]*"/)) {
            label = substr($0, RSTART + 9, RLENGTH - 10)
            split(label, parts, "/")
        }
        if (match($0, /"simulation":\{"words":[0-9]+/)) {
            s = substr($0, RSTART, RLENGTH)
            sub(/.*:/, "", s); words = s + 0
        }
        if (label != "") print parts[2], words
    }' "$1"
}

{
    printf '{"bench":"incremental_resimulation","seed":%s,"trials":%s,"vectors":%s' \
        "$SEED" "$TRIALS" "$VECTORS"
    printf ',"experiments":['
    first_exp=1
    for exp in $EXPERIMENTS; do
        [ "$first_exp" -eq 1 ] || printf ','
        first_exp=0
        read -r f0 f1 < "$tmp/$exp.full.time"
        read -r i0 i1 < "$tmp/$exp.incremental.time"
        full_wall=$(awk -v a="$f0" -v b="$f1" 'BEGIN{printf "%.3f", b-a}')
        inc_wall=$(awk -v a="$i0" -v b="$i1" 'BEGIN{printf "%.3f", b-a}')
        printf '{"experiment":"%s","wall_s":{"full":%s,"incremental":%s},"circuits":[' \
            "$exp" "$full_wall" "$inc_wall"
        first_ckt=1
        for ckt in ${CIRCUITS//,/ }; do
            fw=$(awk_extract "$tmp/$exp.full.jsonl" | awk -v c="$ckt" '$1==c{s+=$2}END{print s+0}')
            iw=$(awk_extract "$tmp/$exp.incremental.jsonl" | awk -v c="$ckt" '$1==c{s+=$2}END{print s+0}')
            ratio=$(awk -v f="$fw" -v i="$iw" 'BEGIN{if (i > 0) printf "%.2f", f/i; else printf "null"}')
            [ "$first_ckt" -eq 1 ] || printf ','
            first_ckt=0
            printf '{"circuit":"%s","words_simulated":{"full":%s,"incremental":%s},"ratio":%s}' \
                "$ckt" "$fw" "$iw" "$ratio"
            echo "    $exp/$ckt: words full=$fw incremental=$iw (ratio $ratio)" >&2
        done
        printf ']}'
        echo "    $exp wall: full=${full_wall}s incremental=${inc_wall}s" >&2
    done
    printf ']}\n'
} > "$OUT"

echo "wrote $OUT"
