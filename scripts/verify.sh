#!/usr/bin/env bash
# Full verification gate: build, tests (unit + integration + property +
# doctests), lints, and docs, all with warnings denied. CI and local
# pre-push both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (the third_party/ vendored crates are workspace
# members too, so formatting must be scoped per package).
FMT_PACKAGES=(incdx incdx-analysis incdx-atpg incdx-bench incdx-core
    incdx-fault incdx-gen incdx-lint incdx-netlist incdx-opt incdx-serve
    incdx-sim)

fmt_args=()
for p in "${FMT_PACKAGES[@]}"; do fmt_args+=(-p "$p"); done

echo "==> rustfmt (first-party packages, --check)"
cargo fmt --check "${fmt_args[@]}"

echo "==> panic audit: denied panicking constructs in first-party non-test code"
# A real parser (brace-aware `#[cfg(test)]` skipping, strict tier for
# incdx-core) replacing the old awk gate, which silently stopped at the
# *first* `#[cfg(test)]` occurrence. Same scanner runs as an in-tree
# test (crates/lint/tests/panic_gate.rs).
cargo run -q -p incdx-lint --bin panic_audit

echo "==> build (release, all targets)"
cargo build --workspace --release --all-targets

echo "==> tests (workspace)"
cargo test --workspace --release -q

echo "==> clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> rustdoc (no deps, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --release

echo "==> lint: example netlists + generated suite (--deny error)"
cargo run -q -p incdx-bench --release --bin lint -- \
    examples/netlists/*.bench --suite --deny error >/dev/null

echo "==> smoke: engine invariant audit (table2 --audit on c432a)"
audit_out="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 10 --audit 2>/dev/null)"
echo "$audit_out" | grep -q '"evaluator":"audit+' \
    || { echo "table2 --audit did not engage the audit layer" >&2; exit 1; }
echo "$audit_out" | grep -q '"violations":0' \
    || { echo "audit reported violations (or none ran)" >&2; exit 1; }
if echo "$audit_out" | grep -q '"audit":{"checks":0'; then
    echo "audit layer performed zero checks" >&2; exit 1
fi

echo "==> smoke: JSON report emission"
out="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 5 2>/dev/null)"
echo "$out" | grep -q '"report":"rectify"' \
    || { echo "table2 emitted no RectifyReport JSON" >&2; exit 1; }

# Reduces a run's JSON records to sorted "label solutions distinct_sites"
# lines — the solution-set fingerprint the resilience smokes compare.
solution_set() {
    grep '"report":"rectify"' \
        | sed -E 's/.*"label":"([^"]*)".*"solutions":([0-9]+),"distinct_sites":([0-9]+).*/\1 \2 \3/' \
        | sort
}

echo "==> smoke: chaos recovery reproduces the chaos-off solution set"
clean_out="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 60 --json 2>/dev/null)"
chaos_out="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 60 --json \
    --chaos 7,0.05 2>/dev/null)"
clean_set="$(echo "$clean_out" | solution_set)"
[ -n "$clean_set" ] || { echo "chaos-off table2 run emitted no reports" >&2; exit 1; }
if [ "$clean_set" != "$(echo "$chaos_out" | solution_set)" ]; then
    echo "table2 --chaos 7,0.05 diverged from the chaos-off solution set" >&2
    exit 1
fi

echo "==> smoke: checkpoint/resume determinism"
ckpt="$(mktemp)"
# --max-nodes 1 is a deterministic stop, so the checkpoint is
# reproducible; resuming without the budget must land on the same
# solution set the unlimited run above found for that trial.
cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 60 \
    --max-nodes 1 --checkpoint "$ckpt" >/dev/null 2>&1 \
    || { echo "table2 --max-nodes 1 --checkpoint failed" >&2; exit 1; }
[ -s "$ckpt" ] || { echo "table2 --max-nodes 1 wrote no checkpoint" >&2; exit 1; }
resumed_set="$(cargo run -p incdx-bench --release --bin table2 -- \
    --time-limit 60 --resume "$ckpt" 2>/dev/null | solution_set)"
[ -n "$resumed_set" ] || { echo "table2 --resume emitted no report" >&2; exit 1; }
resumed_label="${resumed_set%% *}"
if [ "$resumed_set" != "$(echo "$clean_set" | grep "^$resumed_label ")" ]; then
    echo "resumed run diverged from the unlimited run for $resumed_label" >&2
    exit 1
fi
rm -f "$ckpt"

echo "==> smoke: best-first traversal"
bf_out="$(cargo run -p incdx-bench --release --bin ablation_traversal -- \
    --traversal best-first --circuits c432a --trials 1 --vectors 256 \
    --time-limit 10 --json 2>/dev/null)"
echo "$bf_out" | grep -q '"traversal":"best-first"' \
    || { echo "ablation_traversal --traversal best-first emitted no report" >&2; exit 1; }

echo "==> smoke: incremental resimulation bench"
bench_out="$(mktemp)"
BENCH_CIRCUITS=c432a BENCH_EXPERIMENTS=fig2_rounds BENCH_VECTORS=256 \
    BENCH_TIME_LIMIT=10 BENCH_OUT="$bench_out" bash scripts/bench.sh \
    >/dev/null 2>&1 || { echo "bench.sh smoke failed" >&2; exit 1; }
grep -q '"words_simulated"' "$bench_out" \
    || { echo "bench.sh wrote no per-circuit word counts" >&2; exit 1; }
rm -f "$bench_out"

echo "==> smoke: sparse SIMD kernel bench (BENCH_MODE=simd)"
simd_out="$(mktemp)"
BENCH_MODE=simd BENCH_CIRCUITS=c432a BENCH_VECTORS=1024 BENCH_REPEATS=1 \
    BENCH_TIME_LIMIT=10 BENCH_OUT="$simd_out" bash scripts/bench.sh \
    >/dev/null 2>&1 || { echo "bench.sh simd smoke failed" >&2; exit 1; }
grep -q '"results_identical":true' "$simd_out" \
    || { echo "simd bench did not certify sparse == dense results" >&2; exit 1; }
grep -q '"blocks_skipped"' "$simd_out" \
    || { echo "simd bench wrote no sparse-kernel counters" >&2; exit 1; }
rm -f "$simd_out"

echo "==> smoke: hierarchical diagnosis reproduces the flat solution set"
# The two-level engine's contract: exhaustive hierarchical runs report
# exactly the flat solution set (phase 3 + merge), with the abstraction
# telemetry attached where the map had leverage.
flat_set="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 60 --flat \
    --json 2>/dev/null | solution_set)"
[ -n "$flat_set" ] || { echo "table2 --flat emitted no reports" >&2; exit 1; }
hier_out="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 60 --hierarchical \
    --batch-obs --json 2>/dev/null)"
if [ "$flat_set" != "$(echo "$hier_out" | solution_set)" ]; then
    echo "table2 --hierarchical diverged from the --flat solution set" >&2
    exit 1
fi
echo "$hier_out" | grep -q '"abstraction":{' \
    || { echo "hierarchical run reported no abstraction telemetry" >&2; exit 1; }

echo "==> smoke: hierarchical scale bench (BENCH_MODE=hierarchical)"
hier_bench_out="$(mktemp)"
BENCH_MODE=hierarchical BENCH_CIRCUITS=parity256 BENCH_TRIALS=1 \
    BENCH_VECTORS=256 BENCH_BUDGET=2000 BENCH_TIME_LIMIT=30 \
    BENCH_OUT="$hier_bench_out" bash scripts/bench.sh \
    >/dev/null 2>&1 || { echo "bench.sh hierarchical smoke failed" >&2; exit 1; }
grep -q '"hier_solves_where_flat_exhausts"' "$hier_bench_out" \
    || { echo "hierarchical bench wrote no per-circuit comparison" >&2; exit 1; }
rm -f "$hier_bench_out"

echo "==> smoke: speculative dispatcher determinism (fig2_rounds --jobs 4)"
# The dispatcher's contract: dispatched runs find exactly the serial
# solution set, and repeated dispatched runs agree with each other.
serial_set="$(cargo run -p incdx-bench --release --bin fig2_rounds -- \
    --circuits c432a --vectors 256 --time-limit 30 --jobs 1 \
    --json 2>/dev/null | solution_set)"
[ -n "$serial_set" ] || { echo "fig2_rounds --jobs 1 emitted no reports" >&2; exit 1; }
for rep in 1 2; do
    dispatched_set="$(cargo run -p incdx-bench --release --bin fig2_rounds -- \
        --circuits c432a --vectors 256 --time-limit 30 --dispatch --jobs 4 \
        --json 2>/dev/null | solution_set)"
    if [ "$dispatched_set" != "$serial_set" ]; then
        echo "fig2_rounds --dispatch --jobs 4 (run $rep) diverged from --jobs 1" >&2
        exit 1
    fi
done

echo "==> smoke: static pruning reproduces the unpruned solution set"
# The pruning soundness contract on the DEDC workload, where a pruned
# run is bit-identical to an unpruned one (reachability pruning is a
# verified no-op there — the counters prove it ran at all).
unpruned_set="$(cargo run -p incdx-bench --release --bin fig2_rounds -- \
    --circuits c432a --vectors 256 --time-limit 30 --no-prune \
    --json 2>/dev/null | solution_set)"
[ -n "$unpruned_set" ] || { echo "fig2_rounds --no-prune emitted no reports" >&2; exit 1; }
pruned_out="$(cargo run -p incdx-bench --release --bin fig2_rounds -- \
    --circuits c432a --vectors 256 --time-limit 30 --prune --json 2>/dev/null)"
if [ "$unpruned_set" != "$(echo "$pruned_out" | solution_set)" ]; then
    echo "fig2_rounds --prune diverged from the --no-prune solution set" >&2
    exit 1
fi
echo "$pruned_out" | grep -q '"analysis":{"const_lines"' \
    || { echo "pruned run reported no analysis telemetry" >&2; exit 1; }
if echo "$pruned_out" | grep -q '"prune_checks":0,'; then
    echo "pruned run performed zero prune checks" >&2; exit 1
fi

echo "==> smoke: static pruning bench (BENCH_MODE=analysis)"
analysis_out="$(mktemp)"
BENCH_MODE=analysis BENCH_CIRCUITS=c432a BENCH_EXPERIMENTS=fig2_rounds \
    BENCH_VECTORS=256 BENCH_TIME_LIMIT=10 BENCH_OUT="$analysis_out" \
    bash scripts/bench.sh \
    >/dev/null 2>&1 || { echo "bench.sh analysis smoke failed" >&2; exit 1; }
grep -q '"results_identical":true' "$analysis_out" \
    || { echo "analysis bench did not certify pruned == unpruned results" >&2; exit 1; }
grep -q '"static_pruned"' "$analysis_out" \
    || { echo "analysis bench wrote no pruning counters" >&2; exit 1; }
rm -f "$analysis_out"

echo "==> smoke: serve daemon kill -9 recovery (BENCH_MODE=serve)"
# The daemon's headline robustness contract, end to end against real
# processes: serve_load starts a daemon, runs two jobs (plus a small
# closed-loop load), SIGKILLs a second daemon mid-job, restarts it over
# the same spool, and exits nonzero unless the interrupted job resumes
# to the *identical* solution fingerprint an uninterrupted control run
# produces — and unless the interned-artifact hit rate is nonzero.
serve_out="$(mktemp)"
BENCH_MODE=serve BENCH_SMALL=40 BENCH_GIANTS=1 BENCH_THREADS=2 \
    BENCH_WORKERS=2 BENCH_OUT="$serve_out" bash scripts/bench.sh \
    >/dev/null 2>&1 || { echo "bench.sh serve smoke failed" >&2; exit 1; }
grep -q '"identical":true' "$serve_out" \
    || { echo "serve recovery fingerprint diverged from the control run" >&2; exit 1; }
grep -q '"jobs_recovered":1' "$serve_out" \
    || { echo "serve restart recovered no job from the spool" >&2; exit 1; }
rm -f "$serve_out"

echo "==> smoke: dispatcher criterion microbench compiles"
cargo bench -p incdx-bench --bench dispatch --no-run >/dev/null 2>&1 \
    || { echo "criterion dispatch microbench failed to build" >&2; exit 1; }

echo "==> smoke: sparse kernel criterion microbench"
sparse_bench_out="$(cargo bench -p incdx-bench --bench sparse 2>/dev/null)"
echo "$sparse_bench_out" | grep -q 'masked_popcount_16k/sparse' \
    || { echo "criterion sparse microbench emitted no measurements" >&2; exit 1; }

echo "verify: OK"
