#!/usr/bin/env bash
# Full verification gate: build, tests (unit + integration + property +
# doctests), lints, and docs, all with warnings denied. CI and local
# pre-push both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release, all targets)"
cargo build --workspace --release --all-targets

echo "==> tests (workspace)"
cargo test --workspace --release -q

echo "==> clippy (all targets, -D warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> rustdoc (no deps, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --release

echo "==> smoke: JSON report emission"
out="$(cargo run -p incdx-bench --release --bin table2 -- \
    --circuits c432a --trials 1 --vectors 256 --time-limit 5 2>/dev/null)"
echo "$out" | grep -q '"report":"rectify"' \
    || { echo "table2 emitted no RectifyReport JSON" >&2; exit 1; }

echo "==> smoke: incremental resimulation bench"
bench_out="$(mktemp)"
BENCH_CIRCUITS=c432a BENCH_EXPERIMENTS=fig2_rounds BENCH_VECTORS=256 \
    BENCH_TIME_LIMIT=10 BENCH_OUT="$bench_out" bash scripts/bench.sh \
    >/dev/null 2>&1 || { echo "bench.sh smoke failed" >&2; exit 1; }
grep -q '"words_simulated"' "$bench_out" \
    || { echo "bench.sh wrote no per-circuit word counts" >&2; exit 1; }
rm -f "$bench_out"

echo "verify: OK"
