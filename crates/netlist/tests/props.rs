//! Property tests of the netlist kernel's structural invariants, driven
//! by a self-contained random circuit strategy.

use incdx_netlist::{
    expand_xor_to_nand, parse_bench, write_bench, Abstraction, DenseBitSet, GateId, GateKind,
    Netlist,
};
use proptest::prelude::*;

/// Strategy: a valid random combinational netlist description
/// (kind + fanin indices strictly below the gate's own index).
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 5usize..60).prop_flat_map(|(inputs, gates)| {
        let kinds = prop::sample::select(vec![
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ]);
        let gate = (kinds, prop::collection::vec(0usize..1000, 1..4));
        prop::collection::vec(gate, gates).prop_map(move |descs| {
            let mut b = Netlist::builder();
            let mut signals: Vec<GateId> =
                (0..inputs).map(|i| b.add_input(format!("i{i}"))).collect();
            for (kind, picks) in descs {
                let nf = match kind {
                    GateKind::Not | GateKind::Buf => 1,
                    GateKind::Xor | GateKind::Xnor => 2.max(picks.len().min(3)),
                    _ => picks.len().clamp(1, 3),
                };
                let fanins: Vec<GateId> = (0..nf)
                    .map(|k| signals[picks[k % picks.len()] % signals.len()])
                    .collect();
                signals.push(b.add_gate(kind, fanins));
            }
            let last = *signals.last().expect("at least one signal");
            b.add_output(last);
            // A second output midway adds realistic multi-output shape.
            b.add_output(signals[signals.len() / 2]);
            b.build().expect("constructed netlists are valid")
        })
    })
}

fn eval_scalar(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut vals = vec![false; n.len()];
    for (i, &pi) in n.inputs().iter().enumerate() {
        vals[pi.index()] = inputs[i];
    }
    for &id in n.topo_order() {
        let g = n.gate(id);
        if g.kind() == GateKind::Input {
            continue;
        }
        let f: Vec<bool> = g.fanins().iter().map(|&x| vals[x.index()]).collect();
        vals[id.index()] = g.kind().eval(&f);
    }
    n.outputs().iter().map(|&o| vals[o.index()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topo_order_is_a_valid_schedule(n in arb_netlist()) {
        let topo = n.topo_order();
        prop_assert_eq!(topo.len(), n.len());
        for (id, g) in n.iter() {
            for &f in g.fanins() {
                prop_assert!(n.topo_position(f) < n.topo_position(id));
            }
        }
    }

    #[test]
    fn fanouts_mirror_fanins(n in arb_netlist()) {
        for (id, g) in n.iter() {
            for &f in g.fanins() {
                prop_assert!(n.fanouts(f).contains(&id));
            }
        }
        for id in n.ids() {
            for &reader in n.fanouts(id) {
                prop_assert!(n.gate(reader).fanins().contains(&id));
            }
        }
    }

    #[test]
    fn cones_are_reachability_closures(n in arb_netlist()) {
        for id in n.ids().step_by(7) {
            let cone = n.fanout_cone(id);
            // Every member (except the stem) has a fanin inside the cone.
            for m in cone.iter() {
                let mid = GateId::from_index(m);
                if mid == id {
                    continue;
                }
                prop_assert!(
                    n.gate(mid).fanins().iter().any(|f| cone.contains(f.index())),
                    "cone member {mid} unreachable from {id}"
                );
            }
            // Nothing outside the cone reads only-cone paths: spot-check
            // closure — every fanout of a cone member is in the cone.
            for m in cone.iter() {
                for &r in n.fanouts(GateId::from_index(m)) {
                    prop_assert!(cone.contains(r.index()));
                }
            }
        }
    }

    #[test]
    fn levels_bound_fanins(n in arb_netlist()) {
        for (id, g) in n.iter() {
            for &f in g.fanins() {
                prop_assert!(n.level(f) < n.level(id));
            }
        }
        prop_assert!(n.max_level() as usize <= n.len());
    }

    #[test]
    fn bench_roundtrip_preserves_structure(n in arb_netlist()) {
        let text = write_bench(&n);
        let m = parse_bench(&text).expect("own output parses");
        prop_assert_eq!(m.len(), n.len());
        prop_assert_eq!(m.inputs().len(), n.inputs().len());
        prop_assert_eq!(m.outputs().len(), n.outputs().len());
        prop_assert_eq!(m.max_level(), n.max_level());
        // Function preserved on a few vectors.
        for pattern in [0u64, !0, 0xAAAA_AAAA_5555_5555] {
            let iv: Vec<bool> = (0..n.inputs().len()).map(|i| pattern >> (i % 64) & 1 == 1).collect();
            prop_assert_eq!(eval_scalar(&n, &iv), eval_scalar(&m, &iv));
        }
    }

    #[test]
    fn xor_expansion_is_functionally_equivalent(n in arb_netlist()) {
        let m = expand_xor_to_nand(&n).expect("expansion succeeds");
        prop_assert!(m.iter().all(|(_, g)| !matches!(g.kind(), GateKind::Xor | GateKind::Xnor)));
        for pattern in [0u64, !0, 0x1234_5678_9ABC_DEF0, 0xF0F0_F0F0_0F0F_0F0F] {
            let iv: Vec<bool> = (0..n.inputs().len()).map(|i| pattern >> (i % 64) & 1 == 1).collect();
            prop_assert_eq!(eval_scalar(&n, &iv), eval_scalar(&m, &iv));
        }
    }

    #[test]
    fn replace_gate_never_corrupts_on_error(n in arb_netlist(), target in 0usize..60, source in 0usize..60) {
        let mut m = n.clone();
        let t = GateId::from_index(target % n.len());
        let s = GateId::from_index(source % n.len());
        let kind = m.gate(t).kind();
        let mut fanins = m.gate(t).fanins().to_vec();
        fanins.push(s);
        // May succeed or fail (cycle/arity); on failure nothing changes.
        if m.replace_gate(t, kind, fanins).is_err() {
            prop_assert_eq!(m.len(), n.len());
            for id in n.ids() {
                prop_assert_eq!(m.gate(id).kind(), n.gate(id).kind());
                prop_assert_eq!(m.gate(id).fanins(), n.gate(id).fanins());
            }
        } else {
            // Success keeps the schedule valid.
            prop_assert_eq!(m.topo_order().len(), m.len());
        }
    }

    /// The abstraction equivalence contract on arbitrary circuits: the
    /// abstract netlist's value at every abstract gate equals the
    /// concrete netlist's value at that gate's stem, for every sampled
    /// input assignment, and the map always validates.
    #[test]
    fn abstraction_preserves_stem_values(n in arb_netlist(), patterns in prop::collection::vec(prop::collection::vec(prop::bool::ANY, 2..6), 1..8)) {
        let abs = Abstraction::build(&n);
        prop_assert!(abs.map().validate());
        prop_assert_eq!(abs.netlist().inputs().len(), n.inputs().len());
        prop_assert_eq!(abs.netlist().outputs().len(), n.outputs().len());
        for pattern in &patterns {
            let mut inputs = pattern.clone();
            inputs.resize(n.inputs().len(), false);
            let assign = |nl: &Netlist| -> Vec<bool> {
                let mut vals = vec![false; nl.len()];
                for (i, &pi) in nl.inputs().iter().enumerate() {
                    vals[pi.index()] = inputs[i];
                }
                for &id in nl.topo_order() {
                    let g = nl.gate(id);
                    if g.kind() == GateKind::Input {
                        continue;
                    }
                    let f: Vec<bool> = g.fanins().iter().map(|&x| vals[x.index()]).collect();
                    vals[id.index()] = g.kind().eval(&f);
                }
                vals
            };
            let cv = assign(&n);
            let av = assign(abs.netlist());
            for a in abs.netlist().ids() {
                let stem = abs.map().concrete_of(a);
                prop_assert_eq!(av[a.index()], cv[stem.index()]);
            }
        }
    }

    #[test]
    fn dense_bitset_behaves_like_hashset(ops in prop::collection::vec((0usize..200, prop::bool::ANY), 0..100)) {
        let mut set = DenseBitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for (idx, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(idx), model.insert(idx));
            } else {
                prop_assert_eq!(set.remove(idx), model.remove(&idx));
            }
        }
        prop_assert_eq!(set.len(), model.len());
        let mut got: Vec<usize> = set.iter().collect();
        let mut want: Vec<usize> = model.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
