//! Regression tests: malformed `.bench` fixtures must be rejected at
//! parse time with a located error, never parsed into a netlist the
//! simulator would mis-evaluate.

use incdx_netlist::{parse_bench, NetlistError};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn self_loop_fixture_is_rejected_with_location() {
    let err = parse_bench(&fixture("self_loop.bench")).unwrap_err();
    match err {
        NetlistError::ParseBench { line, reason } => {
            assert_eq!(line, 4, "error should point at the self-loop line");
            assert!(reason.contains("drives itself"), "{reason}");
        }
        other => panic!("expected ParseBench, got {other}"),
    }
}

#[test]
fn duplicate_definition_fixture_is_rejected_with_location() {
    let err = parse_bench(&fixture("duplicate_def.bench")).unwrap_err();
    match err {
        NetlistError::ParseBench { line, reason } => {
            assert_eq!(line, 7, "error should point at the second definition");
            assert!(reason.contains("defined twice"), "{reason}");
        }
        other => panic!("expected ParseBench, got {other}"),
    }
}

#[test]
fn multi_gate_cycle_fixture_is_rejected() {
    let err = parse_bench(&fixture("cycle.bench")).unwrap_err();
    assert!(
        matches!(err, NetlistError::CombinationalCycle { .. }),
        "expected CombinationalCycle, got {err}"
    );
}

#[test]
fn undriven_signal_fixture_is_rejected_with_location() {
    let err = parse_bench(&fixture("undriven.bench")).unwrap_err();
    match err {
        NetlistError::ParseBench { line, reason } => {
            assert_eq!(line, 4);
            assert!(reason.contains("undefined signal"), "{reason}");
        }
        other => panic!("expected ParseBench, got {other}"),
    }
}
