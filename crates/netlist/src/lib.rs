//! Gate-level netlist kernel for the `incdx` workspace.
//!
//! This crate provides the circuit representation every other `incdx` crate
//! builds on: a flat, id-indexed gate-level netlist with the gate alphabet of
//! the DATE 2002 paper (NOT, BUFFER, AND, NAND, OR, NOR, plus XOR/XNOR,
//! constants, and DFFs for full-scan sequential circuits), structural queries
//! (topological order, levelization, fanin/fanout cones), an ISCAS'89
//! `.bench` parser/writer, full-scan conversion, and the NAND-based XOR
//! expansion used to turn c499-style circuits into c1355-style ones.
//!
//! # Example
//!
//! ```
//! use incdx_netlist::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), incdx_netlist::NetlistError> {
//! let mut b = Netlist::builder();
//! let a = b.add_input("a");
//! let c = b.add_input("c");
//! let g = b.add_gate(GateKind::Nand, vec![a, c]);
//! b.add_output(g);
//! let netlist = b.build()?;
//! assert_eq!(netlist.len(), 3);
//! assert_eq!(netlist.outputs(), &[g]);
//! # Ok(())
//! # }
//! ```

mod abstraction;
mod bench_format;
mod bitset;
mod cone;
mod error;
mod gate;
mod netlist;
mod scan;
mod transform;
mod unroll;

pub use abstraction::{Abstraction, AbstractionMap, MAX_REGION_LEAVES};
pub use bench_format::{parse_bench, write_bench};
pub use bitset::DenseBitSet;
pub use cone::{ConeCache, ConeSet};
pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind};
pub use netlist::{Netlist, NetlistBuilder, NetlistStats};
pub use scan::{scan_convert, ScanInfo};
pub use transform::{expand_xor_to_nand, substitute_fanin};
pub use unroll::{unroll, UnrollInfo};
