//! Full-scan conversion.
//!
//! The paper handles "full-scan sequential digital circuits" by treating
//! every flip-flop output as a pseudo primary input and every flip-flop data
//! input as a pseudo primary output — exactly what a full scan chain gives a
//! tester. [`scan_convert`] performs that transformation, yielding the
//! combinational core the diagnosis engine operates on.

use crate::error::NetlistError;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Bookkeeping from [`scan_convert`]: which lines of the converted
/// combinational circuit came from flip-flops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanInfo {
    /// Former DFF outputs, now pseudo primary inputs (id-stable).
    pub pseudo_inputs: Vec<GateId>,
    /// Former DFF data inputs, now pseudo primary outputs (appended to the
    /// output list in DFF id order).
    pub pseudo_outputs: Vec<GateId>,
}

/// Converts a sequential netlist into its full-scan combinational core.
///
/// Every `DFF` gate becomes an `Input` gate (same id, so downstream readers
/// are untouched), and its former data input is appended to the primary
/// output list. Combinational circuits pass through unchanged with empty
/// [`ScanInfo`].
///
/// # Errors
///
/// Propagates structural errors from the underlying rewrites (none are
/// expected for a valid input netlist).
///
/// # Example
///
/// ```
/// use incdx_netlist::{parse_bench, scan_convert};
///
/// let n = parse_bench("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(x, q)\n")?;
/// let (core, info) = scan_convert(&n)?;
/// assert!(core.is_combinational());
/// assert_eq!(info.pseudo_inputs.len(), 1);
/// assert_eq!(core.outputs().len(), 2); // q (now a PI fed out) + pseudo PO d
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
pub fn scan_convert(netlist: &Netlist) -> Result<(Netlist, ScanInfo), NetlistError> {
    let mut core = netlist.clone();
    let dffs = core.dffs();
    let mut info = ScanInfo {
        pseudo_inputs: Vec::with_capacity(dffs.len()),
        pseudo_outputs: Vec::with_capacity(dffs.len()),
    };
    let mut outputs = core.outputs().to_vec();
    for &d in &dffs {
        let data_in = core.gate(d).fanins()[0];
        core.replace_gate(d, GateKind::Input, Vec::new())?;
        info.pseudo_inputs.push(d);
        info.pseudo_outputs.push(data_in);
        outputs.push(data_in);
    }
    if !outputs.is_empty() {
        core.set_outputs(outputs)?;
    }
    Ok((core, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;

    #[test]
    fn combinational_passthrough() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let (core, info) = scan_convert(&n).unwrap();
        assert_eq!(core.len(), n.len());
        assert!(info.pseudo_inputs.is_empty());
        assert!(info.pseudo_outputs.is_empty());
    }

    #[test]
    fn converts_counter_loop() {
        // 1-bit toggle counter: q = DFF(not q).
        let n = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n").unwrap();
        let (core, info) = scan_convert(&n).unwrap();
        assert!(core.is_combinational());
        assert_eq!(info.pseudo_inputs.len(), 1);
        let q = core.find_by_name("q").unwrap();
        let d = core.find_by_name("d").unwrap();
        assert_eq!(core.gate(q).kind(), GateKind::Input);
        assert_eq!(info.pseudo_outputs, vec![d]);
        assert!(core.outputs().contains(&d));
        // Ids stable: q keeps its id.
        assert_eq!(q, n.find_by_name("q").unwrap());
    }

    #[test]
    fn multiple_dffs_in_id_order() {
        let src =
            "INPUT(x)\nOUTPUT(q1)\nq0 = DFF(d0)\nq1 = DFF(d1)\nd0 = NAND(x, q1)\nd1 = NOR(q0, x)\n";
        let n = parse_bench(src).unwrap();
        let (core, info) = scan_convert(&n).unwrap();
        assert!(core.is_combinational());
        assert_eq!(info.pseudo_inputs.len(), 2);
        assert_eq!(info.pseudo_outputs.len(), 2);
        assert_eq!(core.inputs().len(), 3); // x + two pseudo PIs
        assert_eq!(core.outputs().len(), 3); // q1 + two pseudo POs
    }
}
