//! Time-frame expansion: unrolling a sequential netlist into a
//! combinational one spanning `k` clock cycles.
//!
//! The paper's conclusion names two sequential extensions: "the algorithm
//! can be adapted to the diagnosis and correction of sequential circuits
//! through time-frame expansion" and "experiment with partial-scan
//! devices". [`unroll`] provides both: DFFs in `scanned` stay
//! pseudo-PI/PO (the full-scan treatment per frame), while the remaining
//! (unscanned) DFFs are stitched frame-to-frame, so a partial-scan device
//! is diagnosed on the unrolled combinational model.

use std::collections::HashSet;

use crate::error::NetlistError;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Bookkeeping from [`unroll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrollInfo {
    /// `frame_of[f][original_id] = id in the unrolled netlist` for frame
    /// `f` (a DFF's entry is the line carrying its *output* value in that
    /// frame).
    pub frame_map: Vec<Vec<GateId>>,
    /// Initial-state pseudo inputs for the unscanned DFFs of frame 0, in
    /// DFF id order.
    pub initial_state_inputs: Vec<GateId>,
    /// Per frame, the scan pseudo inputs (scanned DFF outputs), in
    /// scanned-DFF id order.
    pub scan_inputs: Vec<Vec<GateId>>,
    /// Final-frame next-state lines of the unscanned DFFs (appended as
    /// primary outputs), in DFF id order.
    pub final_state_outputs: Vec<GateId>,
}

/// Unrolls `netlist` over `frames` clock cycles.
///
/// Per frame every combinational gate is replicated; primary inputs and
/// outputs are replicated per frame (inputs ordered frame-major, outputs
/// frame-major). A DFF in `scanned` becomes a fresh pseudo-PI every frame
/// and its data input a pseudo-PO every frame (full-scan treatment); an
/// unscanned DFF reads its previous frame's data input — frame 0 reads a
/// fresh "initial state" pseudo-PI.
///
/// # Errors
///
/// Returns an error if `scanned` names a non-DFF gate. A `frames` of 0 is
/// rejected as [`NetlistError::NoOutputs`].
///
/// # Example
///
/// ```
/// use incdx_netlist::{parse_bench, unroll};
///
/// // q = DFF(d), d = NOT(q): a toggle bit, no scan.
/// let n = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n")?;
/// let (comb, info) = unroll(&n, 3, &[])?;
/// assert!(comb.is_combinational());
/// assert_eq!(info.initial_state_inputs.len(), 1);
/// assert_eq!(comb.outputs().len(), 3 + 1); // q per frame + final state
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
pub fn unroll(
    netlist: &Netlist,
    frames: usize,
    scanned: &[GateId],
) -> Result<(Netlist, UnrollInfo), NetlistError> {
    if frames == 0 {
        return Err(NetlistError::NoOutputs);
    }
    let scanned_set: HashSet<GateId> = scanned.iter().copied().collect();
    for &s in scanned {
        if s.index() >= netlist.len() {
            return Err(NetlistError::UnknownGate { gate: s });
        }
        if netlist.gate(s).kind() != GateKind::Dff {
            return Err(NetlistError::BadArity {
                gate: s,
                kind: netlist.gate(s).kind(),
                found: netlist.gate(s).fanins().len(),
            });
        }
    }
    let dffs = netlist.dffs();
    let unscanned: Vec<GateId> = dffs
        .iter()
        .copied()
        .filter(|d| !scanned_set.contains(d))
        .collect();

    let mut b = Netlist::builder();
    let mut info = UnrollInfo {
        frame_map: Vec::with_capacity(frames),
        initial_state_inputs: Vec::new(),
        scan_inputs: Vec::with_capacity(frames),
        final_state_outputs: Vec::new(),
    };
    let mut outputs: Vec<GateId> = Vec::new();
    // Previous frame's mapping (for stitching unscanned DFFs).
    let mut prev_map: Vec<GateId> = Vec::new();
    for f in 0..frames {
        let mut map = vec![GateId(u32::MAX); netlist.len()];
        let mut scan_ins = Vec::new();
        // Topological order guarantees fanins are mapped before readers;
        // DFFs order like sources and are handled specially.
        for &id in netlist.topo_order() {
            let gate = netlist.gate(id);
            let new_id = match gate.kind() {
                GateKind::Input => {
                    let name = netlist
                        .name(id)
                        .map(|n| format!("f{f}_{n}"))
                        .unwrap_or_else(|| format!("f{f}_n{}", id.index()));
                    b.add_input(name)
                }
                GateKind::Dff => {
                    if scanned_set.contains(&id) {
                        // Full-scan treatment: fresh pseudo-PI per frame.
                        let name = netlist
                            .name(id)
                            .map(|n| format!("f{f}_scan_{n}"))
                            .unwrap_or_else(|| format!("f{f}_scan_n{}", id.index()));
                        let pi = b.add_input(name);
                        scan_ins.push(pi);
                        pi
                    } else if f == 0 {
                        let name = netlist
                            .name(id)
                            .map(|n| format!("init_{n}"))
                            .unwrap_or_else(|| format!("init_n{}", id.index()));
                        let pi = b.add_input(name);
                        info.initial_state_inputs.push(pi);
                        pi
                    } else {
                        // Previous frame's data input value.
                        let data_in = gate.fanins()[0];
                        let src = prev_map[data_in.index()];
                        b.add_gate(GateKind::Buf, vec![src])
                    }
                }
                kind => {
                    let fanins = gate
                        .fanins()
                        .iter()
                        .map(|x| map[x.index()])
                        .collect::<Vec<_>>();
                    debug_assert!(fanins.iter().all(|x| x.index() != u32::MAX as usize));
                    b.add_gate(kind, fanins)
                }
            };
            map[id.index()] = new_id;
        }
        for &o in netlist.outputs() {
            outputs.push(map[o.index()]);
        }
        // Scanned DFF data inputs are observable every frame.
        for &s in scanned {
            outputs.push(map[netlist.gate(s).fanins()[0].index()]);
        }
        info.scan_inputs.push(scan_ins);
        info.frame_map.push(map.clone());
        prev_map = map;
    }
    // The machine's final next-state is observable (it would be scanned
    // out or probed after the test).
    for &d in &unscanned {
        let data_in = netlist.gate(d).fanins()[0];
        let line = prev_map[data_in.index()];
        info.final_state_outputs.push(line);
        outputs.push(line);
    }
    for o in outputs {
        b.add_output(o);
    }
    let out = b.build()?;
    Ok((out, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;

    #[test]
    fn unrolled_counter_matches_sequential_semantics() {
        // 2-bit counter: q0 toggles, q1 toggles when q0 set.
        let n = parse_bench(
            "OUTPUT(q0)\nOUTPUT(q1)\nq0 = DFF(d0)\nq1 = DFF(d1)\nd0 = NOT(q0)\nd1 = XOR(q1, q0)\n",
        )
        .unwrap();
        let (comb, info) = unroll(&n, 4, &[]).unwrap();
        assert!(comb.is_combinational());
        assert_eq!(info.initial_state_inputs.len(), 2);
        assert_eq!(comb.inputs().len(), 2); // only the initial state
                                            // Frame outputs: 2 POs per frame × 4 frames + 2 final-state POs.
        assert_eq!(comb.outputs().len(), 10);
        // Evaluate scalar from state 00: frames show 00,01,10,11.
        let mut vals = vec![false; comb.len()];
        // initial state zero (inputs default false)
        for &id in comb.topo_order() {
            let g = comb.gate(id);
            if g.kind() == GateKind::Input {
                continue;
            }
            let f: Vec<bool> = g.fanins().iter().map(|x| vals[x.index()]).collect();
            vals[id.index()] = g.kind().eval(&f);
        }
        let po: Vec<bool> = comb.outputs().iter().map(|o| vals[o.index()]).collect();
        let states: Vec<u8> = (0..4)
            .map(|f| (po[2 * f] as u8) | (po[2 * f + 1] as u8) << 1)
            .collect();
        assert_eq!(states, vec![0, 1, 2, 3]);
        // Final next-state = 00 (wraps).
        assert!(!po[8] && !po[9]);
    }

    #[test]
    fn partial_scan_exposes_scanned_dff_per_frame() {
        let n = parse_bench(
            "INPUT(x)\nOUTPUT(z)\nq0 = DFF(d0)\nq1 = DFF(d1)\n\
             d0 = XOR(q0, x)\nd1 = AND(q0, q1)\nz = OR(q1, x)\n",
        )
        .unwrap();
        let q0 = n.find_by_name("q0").unwrap();
        let (comb, info) = unroll(&n, 3, &[q0]).unwrap();
        assert!(comb.is_combinational());
        // Inputs: x per frame (3) + scanned q0 per frame (3) + init q1 (1).
        assert_eq!(comb.inputs().len(), 7);
        assert_eq!(info.scan_inputs.iter().map(Vec::len).sum::<usize>(), 3);
        assert_eq!(info.initial_state_inputs.len(), 1);
        // Outputs: z per frame (3) + scanned d0 per frame (3) + final q1
        // next-state (1).
        assert_eq!(comb.outputs().len(), 7);
    }

    #[test]
    fn rejects_zero_frames_and_non_dff_scan() {
        let n = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(a)\n").unwrap();
        assert!(unroll(&n, 0, &[]).is_err());
        let a = n.find_by_name("a").unwrap();
        assert!(unroll(&n, 2, &[a]).is_err());
    }

    #[test]
    fn combinational_circuit_unrolls_to_replicas() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let (comb, info) = unroll(&n, 3, &[]).unwrap();
        assert_eq!(comb.len(), 3 * n.len());
        assert_eq!(comb.outputs().len(), 3);
        assert!(info.initial_state_inputs.is_empty());
        assert_eq!(comb.find_by_name("f2_a").map(|_| ()), Some(()));
    }
}
