//! Memoized fanout cones.
//!
//! The diagnosis engine asks for the same fanout cones over and over: every
//! screening pass walks the cone of every suspect line, and heuristic 1
//! re-propagates through it once per evaluation. [`ConeCache`] memoizes
//! [`Netlist::fanout_cone_sorted`]-style results per line so each cone is
//! computed once per netlist and then shared — including read-only across
//! worker threads, via [`Arc`].

use std::sync::Arc;

use crate::bitset::DenseBitSet;
use crate::gate::GateId;
use crate::netlist::Netlist;

/// A fanout cone in both of the forms the engine needs: topologically
/// sorted (for resimulation) and as a dense membership set (for O(1)
/// "is this PO inside the cone?" tests).
///
/// The stem is the first element of [`Self::sorted`] and a member of the
/// set, matching [`Netlist::fanout_cone_sorted`] / [`Netlist::fanout_cone`].
#[derive(Debug, Clone)]
pub struct ConeSet {
    sorted: Vec<GateId>,
    members: DenseBitSet,
}

impl ConeSet {
    /// Computes the fanout cone of `stem` on `netlist`.
    pub fn compute(netlist: &Netlist, stem: GateId) -> Self {
        let members = netlist.fanout_cone(stem);
        let mut sorted: Vec<GateId> = members.iter().map(GateId::from_index).collect();
        sorted.sort_by_key(|&g| netlist.topo_position(g));
        ConeSet { sorted, members }
    }

    /// The cone in topological order, stem first — the exact shape
    /// consumed by cone resimulation.
    #[inline]
    pub fn sorted(&self) -> &[GateId] {
        &self.sorted
    }

    /// Is `id` inside the cone (stem included)?
    #[inline]
    pub fn contains(&self, id: GateId) -> bool {
        self.members.contains(id.index())
    }

    /// Number of gates in the cone (stem included).
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Is the cone empty? (Never true for a valid stem.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// Per-netlist memo of fanout cones, one optional slot per gate id.
///
/// A cache is bound to the netlist whose `len()` it was created with and
/// must not be used after structural edits (`replace_gate`/`append_gate`
/// rebuild fanouts, invalidating every cone) — build a fresh cache for the
/// edited netlist instead. Entries are handed out as [`Arc<ConeSet>`] so
/// screening workers can hold them without cloning the underlying vectors.
/// Cloning is cheap — populated slots are `Arc`s, so a clone shares
/// every computed cone with the original (a warmed cache can be handed
/// to each slice of a resumable session without recomputation).
#[derive(Debug, Default, Clone)]
pub struct ConeCache {
    slots: Vec<Option<Arc<ConeSet>>>,
    hits: u64,
}

impl ConeCache {
    /// An empty cache sized for `netlist`.
    pub fn new(netlist: &Netlist) -> Self {
        ConeCache {
            slots: vec![None; netlist.len()],
            hits: 0,
        }
    }

    /// The memoized cone of `stem`, computing and storing it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the cache was built for a netlist of a different size
    /// (the telltale of using a stale cache after a structural edit).
    pub fn get(&mut self, netlist: &Netlist, stem: GateId) -> Arc<ConeSet> {
        assert_eq!(
            self.slots.len(),
            netlist.len(),
            "cone cache bound to a different netlist"
        );
        let slot = &mut self.slots[stem.index()];
        if let Some(cone) = slot {
            self.hits += 1;
            return Arc::clone(cone);
        }
        let cone = Arc::new(ConeSet::compute(netlist, stem));
        *slot = Some(Arc::clone(&cone));
        cone
    }

    /// Cache hits since construction (or the last [`Self::take_hits`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Drains the hit counter, returning its value and resetting it to zero
    /// (used to fold per-evaluation hits into run statistics).
    pub fn take_hits(&mut self) -> u64 {
        std::mem::take(&mut self.hits)
    }

    /// Number of stems whose cone has been computed and memoized.
    pub fn populated(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Capacity in stems (the gate count of the bound netlist).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn cone_set_matches_netlist_queries() {
        let n = parse_bench(C17).unwrap();
        for id in n.ids() {
            let cone = ConeSet::compute(&n, id);
            assert_eq!(cone.sorted(), n.fanout_cone_sorted(id).as_slice());
            assert_eq!(cone.sorted()[0], id, "stem comes first");
            assert!(!cone.is_empty());
            let members = n.fanout_cone(id);
            for other in n.ids() {
                assert_eq!(cone.contains(other), members.contains(other.index()));
            }
            assert_eq!(cone.len(), members.len());
        }
    }

    #[test]
    fn cache_memoizes_and_counts_hits() {
        let n = parse_bench(C17).unwrap();
        let stem = n.find_by_name("11").unwrap();
        let mut cache = ConeCache::new(&n);
        let a = cache.get(&n, stem);
        assert_eq!(cache.hits(), 0);
        let b = cache.get(&n, stem);
        assert_eq!(cache.hits(), 1);
        assert!(Arc::ptr_eq(&a, &b), "second get returns the same cone");
        assert_eq!(cache.take_hits(), 1);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    #[should_panic(expected = "different netlist")]
    fn cache_rejects_wrong_netlist_size() {
        let n = parse_bench(C17).unwrap();
        let mut cache = ConeCache::default(); // zero slots
        cache.get(&n, GateId::from_index(0));
    }
}
