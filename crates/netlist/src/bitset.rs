/// A dense, fixed-capacity bit set over `usize` indices.
///
/// Used throughout the workspace for gate-id sets (fanout cones, path-trace
/// marks, visited sets) where a `HashSet` would be needlessly slow.
///
/// # Example
///
/// ```
/// use incdx_netlist::DenseBitSet;
///
/// let mut s = DenseBitSet::new(100);
/// s.insert(3);
/// s.insert(97);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseBitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity (exclusive upper bound on storable indices).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bit index {index} out of range");
        let (w, b) = (index / 64, index % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        assert!(index < self.capacity, "bit index {index} out of range");
        let (w, b) = (index / 64, index % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        index < self.capacity && self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &DenseBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }
}

impl FromIterator<usize> for DenseBitSet {
    /// Collects indices into a set sized to the maximum element + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = DenseBitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl Extend<usize> for DenseBitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for i in iter {
            self.insert(i);
        }
    }
}

/// Iterator over the indices of a [`DenseBitSet`], produced by
/// [`DenseBitSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DenseBitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_order_and_word_boundaries() {
        let mut s = DenseBitSet::new(200);
        for i in [199, 0, 63, 64, 65, 128] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = DenseBitSet::new(70);
        let mut b = DenseBitSet::new(70);
        a.extend([1, 2, 3]);
        b.extend([3, 4, 69]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 69]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: DenseBitSet = [5usize, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(9));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = DenseBitSet::new(10);
        assert!(s.is_empty());
        s.insert(5);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = DenseBitSet::new(8);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        DenseBitSet::new(8).insert(8);
    }

    #[test]
    fn zero_capacity() {
        let s = DenseBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
