use std::fmt;

/// Identifier of a gate and, equivalently, of the *line* (net) it drives.
///
/// The paper's "lines" are the suspect locations of diagnosis; in this
/// workspace a line is identified with the gate (or primary input) driving
/// it. Ids are dense indices into [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u32);

impl GateId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index exceeds u32::MAX"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The gate alphabet of the paper (§2) plus the support kinds needed by the
/// substrates (constants for the optimizer, DFFs for full-scan circuits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// Constant logic 0 (no fanins).
    Const0,
    /// Constant logic 1 (no fanins).
    Const1,
    /// Non-inverting buffer (one fanin).
    Buf,
    /// Inverter (one fanin).
    Not,
    /// AND of one or more fanins.
    And,
    /// NAND of one or more fanins.
    Nand,
    /// OR of one or more fanins.
    Or,
    /// NOR of one or more fanins.
    Nor,
    /// XOR of two or more fanins (odd parity).
    Xor,
    /// XNOR of two or more fanins (even parity).
    Xnor,
    /// D flip-flop (one fanin); only meaningful before full-scan conversion.
    Dff,
}

impl GateKind {
    /// All kinds a *combinational logic* gate can take, i.e. the candidate
    /// set for the "gate type replacement" design error.
    pub const LOGIC_KINDS: [GateKind; 6] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Returns the valid fanin-count range `(min, max)` for this kind.
    /// `max == usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not | GateKind::Dff => (1, 1),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => (1, usize::MAX),
            GateKind::Xor | GateKind::Xnor => (2, usize::MAX),
        }
    }

    /// Is this a combinational logic gate (excludes inputs, constants, DFFs)?
    pub fn is_logic(self) -> bool {
        !matches!(
            self,
            GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff
        )
    }

    /// The *controlling value* of a fanin of this gate, per §2 of the paper:
    /// 0 for AND/NAND, 1 for OR/NOR; inverters and buffers are always
    /// controlled (`Some` of an arbitrary marker is wrong there, so they are
    /// reported as `None` and handled explicitly by path-trace).
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Does the gate invert the value of the controlled/identity function
    /// (NAND, NOR, NOT, XNOR)?
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// The kind computing the complement function with the same fanins, if
    /// it exists in the alphabet (AND↔NAND, OR↔NOR, BUF↔NOT, XOR↔XNOR).
    pub fn complement(self) -> Option<GateKind> {
        Some(match self {
            GateKind::And => GateKind::Nand,
            GateKind::Nand => GateKind::And,
            GateKind::Or => GateKind::Nor,
            GateKind::Nor => GateKind::Or,
            GateKind::Buf => GateKind::Not,
            GateKind::Not => GateKind::Buf,
            GateKind::Xor => GateKind::Xnor,
            GateKind::Xnor => GateKind::Xor,
            GateKind::Const0 => GateKind::Const1,
            GateKind::Const1 => GateKind::Const0,
            _ => return None,
        })
    }

    /// Evaluates the gate over boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the fanin count violates [`Self::arity`],
    /// or if called on [`GateKind::Input`] / [`GateKind::Dff`], which have no
    /// combinational function.
    pub fn eval(self, fanins: &[bool]) -> bool {
        debug_assert!(
            fanins.len() >= self.arity().0 && fanins.len() <= self.arity().1,
            "bad fanin count {} for {:?}",
            fanins.len(),
            self
        );
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => fanins[0],
            GateKind::Not => !fanins[0],
            GateKind::And => fanins.iter().all(|&v| v),
            GateKind::Nand => !fanins.iter().all(|&v| v),
            GateKind::Or => fanins.iter().any(|&v| v),
            GateKind::Nor => !fanins.iter().any(|&v| v),
            GateKind::Xor => fanins.iter().fold(false, |a, &v| a ^ v),
            GateKind::Xnor => !fanins.iter().fold(false, |a, &v| a ^ v),
            GateKind::Input | GateKind::Dff => {
                panic!("{self:?} has no combinational function")
            }
        }
    }

    /// The canonical lowercase token used by the `.bench` format.
    pub fn token(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Dff => "DFF",
        }
    }

    /// Parses a canonical [`GateKind::token`] back to its kind
    /// (case-insensitive). The inverse of [`GateKind::token`]; used by
    /// checkpoint deserialization.
    pub fn from_token(token: &str) -> Option<GateKind> {
        let t = token.to_ascii_uppercase();
        Some(match t.as_str() {
            "INPUT" => GateKind::Input,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            "BUF" => GateKind::Buf,
            "NOT" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "DFF" => GateKind::Dff,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One gate of a [`crate::Netlist`]: a kind plus the ids of its fanin lines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gate {
    kind: GateKind,
    fanins: Vec<GateId>,
}

impl Gate {
    /// Creates a gate. Arity is validated by [`crate::NetlistBuilder::build`],
    /// not here, so intermediate states are representable.
    pub fn new(kind: GateKind, fanins: Vec<GateId>) -> Self {
        Gate { kind, fanins }
    }

    /// The gate's kind.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's fanin line ids, in port order.
    #[inline]
    pub fn fanins(&self) -> &[GateId] {
        &self.fanins
    }

    pub(crate) fn set_kind(&mut self, kind: GateKind) {
        self.kind = kind;
    }

    pub(crate) fn fanins_mut(&mut self) -> &mut Vec<GateId> {
        &mut self.fanins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_truth_tables() {
        use GateKind::*;
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(And.eval(&[a, b]), a & b);
            assert_eq!(Nand.eval(&[a, b]), !(a & b));
            assert_eq!(Or.eval(&[a, b]), a | b);
            assert_eq!(Nor.eval(&[a, b]), !(a | b));
            assert_eq!(Xor.eval(&[a, b]), a ^ b);
            assert_eq!(Xnor.eval(&[a, b]), !(a ^ b));
        }
        assert!(!Not.eval(&[true]));
        assert!(Buf.eval(&[true]));
        assert!(!Const0.eval(&[]));
        assert!(Const1.eval(&[]));
    }

    #[test]
    fn eval_three_input_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, false]));
        assert!(!GateKind::Xnor.eval(&[true, false, false]));
    }

    #[test]
    fn complement_is_involutive() {
        for kind in GateKind::LOGIC_KINDS {
            let c = kind.complement().expect("logic kinds have complements");
            assert_eq!(c.complement(), Some(kind));
            // Complement semantics: same inputs, inverted output.
            assert_eq!(c.eval(&[true, false]), !kind.eval(&[true, false]));
        }
        assert_eq!(GateKind::Input.complement(), None);
        assert_eq!(GateKind::Dff.complement(), None);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn gate_id_display_and_index_roundtrip() {
        let id = GateId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    #[should_panic(expected = "no combinational function")]
    fn eval_input_panics() {
        GateKind::Input.eval(&[]);
    }

    #[test]
    fn token_round_trips_through_from_token() {
        let all = [
            GateKind::Input,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Dff,
        ];
        for kind in all {
            assert_eq!(GateKind::from_token(kind.token()), Some(kind));
            assert_eq!(
                GateKind::from_token(&kind.token().to_ascii_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_token("MUX"), None);
    }
}
