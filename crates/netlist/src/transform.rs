//! Structural rewrites.
//!
//! [`expand_xor_to_nand`] is the transformation that relates c499 to c1355
//! in the ISCAS'85 suite: every XOR/XNOR is decomposed into the classic
//! four-NAND structure. The paper singles these "NAND-based XOR structures"
//! out as the one case where heuristic 3 needs a looser threshold, so the
//! benchmark generators use this pass to produce that workload.

use crate::error::NetlistError;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Rewrites every XOR/XNOR gate into 2-input NAND gates (four per 2-input
/// XOR; wider gates are first decomposed into a balanced 2-input tree).
/// Ids of pre-existing gates are preserved: the original XOR gate id becomes
/// the final gate of its replacement network.
///
/// # Errors
///
/// Propagates structural errors from the underlying rewrites (none are
/// expected for a valid input netlist).
///
/// # Example
///
/// ```
/// use incdx_netlist::{expand_xor_to_nand, parse_bench, GateKind};
///
/// let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")?;
/// let m = expand_xor_to_nand(&n)?;
/// assert!(m.iter().all(|(_, g)| g.kind() != GateKind::Xor));
/// assert_eq!(m.len(), n.len() + 3); // y becomes the 4th NAND
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
pub fn expand_xor_to_nand(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    let mut out = netlist.clone();
    // Iterate over the original ids only; appended NANDs need no expansion.
    let original: Vec<GateId> = netlist.ids().collect();
    for id in original {
        let kind = out.gate(id).kind();
        if kind != GateKind::Xor && kind != GateKind::Xnor {
            continue;
        }
        let fanins = out.gate(id).fanins().to_vec();
        // Reduce to a single 2-input XOR feeding `id`: pairwise-combine the
        // fanin list until two signals remain.
        let mut sigs = fanins;
        while sigs.len() > 2 {
            let b = sigs.pop().expect("len > 2");
            let a = sigs.pop().expect("len > 1");
            let x = append_xor_nand(&mut out, a, b)?;
            sigs.push(x);
        }
        let (a, b) = (sigs[0], sigs[1]);
        // y = XOR(a,b) as NANDs: m = NAND(a,b); p = NAND(a,m); q = NAND(b,m);
        // y = NAND(p,q). XNOR additionally inverts: y = NAND of the XNOR
        // two-level form; we realize XNOR as NAND(NAND(a',?)...) simply by
        // computing XOR into a fresh gate and making `id` its inverter as a
        // single-input NAND (NAND(x) == NOT(x) in our alphabet).
        match kind {
            GateKind::Xor => {
                let m = out.append_gate(GateKind::Nand, vec![a, b])?;
                let p = out.append_gate(GateKind::Nand, vec![a, m])?;
                let q = out.append_gate(GateKind::Nand, vec![b, m])?;
                out.replace_gate(id, GateKind::Nand, vec![p, q])?;
            }
            GateKind::Xnor => {
                let x = append_xor_nand(&mut out, a, b)?;
                out.replace_gate(id, GateKind::Nand, vec![x])?;
            }
            _ => unreachable!(),
        }
    }
    Ok(out)
}

fn append_xor_nand(out: &mut Netlist, a: GateId, b: GateId) -> Result<GateId, NetlistError> {
    let m = out.append_gate(GateKind::Nand, vec![a, b])?;
    let p = out.append_gate(GateKind::Nand, vec![a, m])?;
    let q = out.append_gate(GateKind::Nand, vec![b, m])?;
    out.append_gate(GateKind::Nand, vec![p, q])
}

/// Replaces every occurrence of fanin `from` with `to` on gate `gate`.
/// Returns the number of replaced ports.
///
/// # Errors
///
/// Returns an error if the rewrite would create a combinational cycle or
/// reference an unknown gate.
pub fn substitute_fanin(
    netlist: &mut Netlist,
    gate: GateId,
    from: GateId,
    to: GateId,
) -> Result<usize, NetlistError> {
    let g = netlist.gate(gate);
    let kind = g.kind();
    let mut fanins = g.fanins().to_vec();
    let mut count = 0;
    for f in &mut fanins {
        if *f == from {
            *f = to;
            count += 1;
        }
    }
    if count > 0 {
        netlist.replace_gate(gate, kind, fanins)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;
    use crate::gate::GateKind;

    fn eval_naive(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut vals = vec![false; n.len()];
        let mut in_iter = inputs.iter();
        for &id in n.topo_order() {
            let g = n.gate(id);
            vals[id.index()] = match g.kind() {
                GateKind::Input => *in_iter.next().expect("enough inputs"),
                k => {
                    let f: Vec<bool> = g.fanins().iter().map(|&x| vals[x.index()]).collect();
                    k.eval(&f)
                }
            };
        }
        n.outputs().iter().map(|&o| vals[o.index()]).collect()
    }

    #[test]
    fn xor2_expansion_is_equivalent() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n").unwrap();
        let m = expand_xor_to_nand(&n).unwrap();
        for bits in 0..4u32 {
            let iv = vec![bits & 1 == 1, bits & 2 == 2];
            assert_eq!(eval_naive(&n, &iv), eval_naive(&m, &iv), "inputs {iv:?}");
        }
    }

    #[test]
    fn xnor3_expansion_is_equivalent() {
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XNOR(a, b, c)\n").unwrap();
        let m = expand_xor_to_nand(&n).unwrap();
        assert!(m
            .iter()
            .all(|(_, g)| !matches!(g.kind(), GateKind::Xor | GateKind::Xnor)));
        for bits in 0..8u32 {
            let iv = vec![bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            assert_eq!(eval_naive(&n, &iv), eval_naive(&m, &iv), "inputs {iv:?}");
        }
    }

    #[test]
    fn expansion_preserves_non_xor_gates_and_outputs() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nx = XOR(a, b)\ny = NAND(x, a)\nz = NOR(x, b)\n",
        )
        .unwrap();
        let m = expand_xor_to_nand(&n).unwrap();
        // Output ids unchanged (id stability).
        assert_eq!(m.outputs(), n.outputs());
        for bits in 0..4u32 {
            let iv = vec![bits & 1 == 1, bits & 2 == 2];
            assert_eq!(eval_naive(&n, &iv), eval_naive(&m, &iv));
        }
    }

    #[test]
    fn substitute_fanin_rewires() {
        let mut n =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, a)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let a = n.find_by_name("a").unwrap();
        let c = n.find_by_name("c").unwrap();
        let replaced = substitute_fanin(&mut n, y, a, c).unwrap();
        assert_eq!(replaced, 2);
        assert!(n.gate(y).fanins().iter().all(|&f| f != a));
    }

    #[test]
    fn substitute_fanin_noop_when_absent() {
        let mut n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let replaced = substitute_fanin(&mut n, y, y, y).unwrap();
        assert_eq!(replaced, 0);
    }
}
