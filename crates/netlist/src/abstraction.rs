//! Cone abstraction: collapse maximal fanout-free regions into single
//! super-gates (Siddiqi & Huang's "sequential diagnosis by abstraction"
//! applied to the combinational rectification setting).
//!
//! [`Abstraction::build`] partitions the netlist into maximal fanout-free
//! regions — a gate with exactly one reader joins its reader's region; a
//! primary input/output, a multi-fanout stem, or a state element roots its
//! own region — and replaces every region whose function matches a single
//! wide gate over its leaves with that one gate. The result is an abstract
//! [`Netlist`] (a plain netlist: the whole diagnosis stack consumes it
//! through the same generic entry points as a concrete one) plus a
//! bidirectional [`AbstractionMap`] tying every abstract gate to its
//! concrete members.
//!
//! The **equivalence contract** (property-tested in this module and relied
//! on by the hierarchical engine in `incdx-core`): the abstract netlist's
//! inputs appear in the same order as the concrete inputs, its outputs map
//! 1:1 onto the concrete outputs, and for every abstract gate `a`,
//! simulating the abstract netlist on any vector set produces exactly the
//! values the concrete netlist produces on the stem
//! [`AbstractionMap::concrete_of`]`(a)`. Abstraction changes the *node
//! count* a tree search must visit, never the observable behaviour.

use crate::bitset::DenseBitSet;
use crate::gate::{GateId, GateKind};
use crate::netlist::Netlist;

/// Regions with more than this many leaves are never truth-tabled (the
/// table has `2^leaves` rows); they are copied gate-for-gate instead.
pub const MAX_REGION_LEAVES: usize = 12;

/// The single-gate kinds a region function is matched against, most
/// specific first (so a single-leaf identity matches `Buf`, not a 1-input
/// `And`). `Buf`/`Not` only apply to single-leaf regions and `Xor`/`Xnor`
/// need at least two leaves; [`match_region`] respects the arities.
const MATCH_KINDS: [GateKind; 10] = [
    GateKind::Buf,
    GateKind::Not,
    GateKind::Const0,
    GateKind::Const1,
    GateKind::And,
    GateKind::Nand,
    GateKind::Or,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Xnor,
];

/// Bidirectional map between a concrete netlist and its abstraction.
///
/// Every concrete gate belongs to exactly one abstract gate (its region's
/// representative); every abstract gate owns a non-empty member list whose
/// first-by-id element set partitions the concrete gate ids. A *super-gate*
/// is an abstract gate with more than one member — a collapsed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractionMap {
    /// Concrete gate id → abstract gate id (region representative).
    abstract_of: Vec<GateId>,
    /// Abstract gate id → concrete region stem.
    concrete_of: Vec<GateId>,
    /// Abstract gate id → concrete region members, ascending by id.
    members: Vec<Vec<GateId>>,
    /// Number of abstract gates with more than one concrete member.
    super_gates: usize,
}

impl AbstractionMap {
    /// The abstract gate covering concrete gate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for the concrete netlist.
    #[inline]
    pub fn abstract_of(&self, c: GateId) -> GateId {
        self.abstract_of[c.index()]
    }

    /// The concrete stem an abstract gate represents (the region output).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range for the abstract netlist.
    #[inline]
    pub fn concrete_of(&self, a: GateId) -> GateId {
        self.concrete_of[a.index()]
    }

    /// The concrete members of abstract gate `a`, ascending by id. A
    /// single-member list means the gate was copied 1:1; more members mean
    /// a collapsed region.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range for the abstract netlist.
    #[inline]
    pub fn members(&self, a: GateId) -> &[GateId] {
        &self.members[a.index()]
    }

    /// Number of collapsed regions (abstract gates with > 1 member).
    #[inline]
    pub fn super_gates(&self) -> usize {
        self.super_gates
    }

    /// Number of concrete gates covered by the map.
    #[inline]
    pub fn concrete_len(&self) -> usize {
        self.abstract_of.len()
    }

    /// Number of abstract gates.
    #[inline]
    pub fn abstract_len(&self) -> usize {
        self.concrete_of.len()
    }

    /// Abstract gates / concrete gates — below 1.0 when anything
    /// collapsed, 1.0 for a degenerate (no collapsible cones) abstraction.
    pub fn collapse_ratio(&self) -> f64 {
        if self.abstract_of.is_empty() {
            return 1.0;
        }
        self.concrete_of.len() as f64 / self.abstract_of.len() as f64
    }

    /// Structural self-check: both directions agree, member lists are
    /// non-empty, contain their stem, and partition the concrete ids.
    /// `true` on every map [`Abstraction::build`] produces; `false` after
    /// any corruption (the hierarchical engine's chaos site relies on
    /// this to detect an injected fault and rebuild).
    pub fn validate(&self) -> bool {
        let n_c = self.abstract_of.len();
        let n_a = self.concrete_of.len();
        if self.members.len() != n_a || n_a == 0 || n_a > n_c {
            return false;
        }
        let mut covered = vec![false; n_c];
        let mut supers = 0usize;
        for (a_idx, members) in self.members.iter().enumerate() {
            let a = GateId::from_index(a_idx);
            let stem = self.concrete_of[a_idx];
            if members.is_empty() || stem.index() >= n_c {
                return false;
            }
            if !members.contains(&stem) {
                return false;
            }
            if members.len() > 1 {
                supers += 1;
            }
            for &m in members {
                if m.index() >= n_c || covered[m.index()] || self.abstract_of[m.index()] != a {
                    return false;
                }
                covered[m.index()] = true;
            }
        }
        covered.into_iter().all(|c| c) && supers == self.super_gates
    }

    /// Deliberately corrupts one mapping entry (the first concrete gate is
    /// remapped to a different abstract id, or the stem back-pointer is
    /// bumped when there is only one abstract gate). A fault-injection
    /// hook for chaos testing — after this call [`Self::validate`] returns
    /// `false` on any map with at least one gate.
    pub fn corrupt_for_chaos(&mut self) {
        if self.concrete_of.len() > 1 {
            let cur = self.abstract_of[0];
            let next = if cur.index() == 0 { 1 } else { 0 };
            self.abstract_of[0] = GateId::from_index(next);
        } else if let Some(stem) = self.concrete_of.first_mut() {
            *stem = GateId::from_index(stem.index() + 1);
        }
    }
}

/// A built abstraction: the abstract netlist and its concrete map.
#[derive(Debug, Clone)]
pub struct Abstraction {
    netlist: Netlist,
    map: AbstractionMap,
}

impl Abstraction {
    /// The abstract netlist. A plain [`Netlist`] — simulate, lint, and
    /// diagnose it through the same entry points as any concrete one.
    #[inline]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The bidirectional super-gate ↔ concrete-members map.
    #[inline]
    pub fn map(&self) -> &AbstractionMap {
        &self.map
    }

    /// Mutable access to the map — exists for the chaos fault-injection
    /// site ([`AbstractionMap::corrupt_for_chaos`]).
    #[inline]
    pub fn map_mut(&mut self) -> &mut AbstractionMap {
        &mut self.map
    }

    /// Is the abstraction degenerate — no region collapsed, so the
    /// abstract netlist is gate-for-gate the concrete one?
    pub fn is_degenerate(&self) -> bool {
        self.map.super_gates() == 0
    }

    /// Builds the fanout-free-region abstraction of `netlist`.
    ///
    /// Region formation: a gate with exactly one reader that is neither a
    /// primary output, a primary input, nor a DFF joins its reader's
    /// region; every other gate roots its own. A multi-gate region of
    /// logic gates with at most [`MAX_REGION_LEAVES`] leaves is
    /// exhaustively truth-tabled over its leaves and — when the function
    /// matches one of the ten single-gate kinds — replaced by that one
    /// super-gate; unmatched or oversized regions are copied 1:1, so the
    /// equivalence contract holds unconditionally.
    pub fn build(netlist: &Netlist) -> Abstraction {
        let n = netlist.len();
        let mut is_po = DenseBitSet::new(n);
        for &po in netlist.outputs() {
            is_po.insert(po.index());
        }
        // Region representative (stem) per gate, resolved in reverse
        // topological order so a single-fanout gate can chase its reader's
        // already-final stem.
        let mut stem: Vec<GateId> = netlist.ids().collect();
        for &g in netlist.topo_order().iter().rev() {
            let gate = netlist.gate(g);
            let own_stem = matches!(gate.kind(), GateKind::Input | GateKind::Dff)
                || is_po.contains(g.index())
                || netlist.fanouts(g).len() != 1
                || netlist.gate(netlist.fanouts(g)[0]).kind() == GateKind::Dff;
            if !own_stem {
                stem[g.index()] = stem[netlist.fanouts(g)[0].index()];
            }
        }
        // Members per stem, ascending by id (ids() is ascending).
        let mut region: Vec<Vec<GateId>> = vec![Vec::new(); n];
        for g in netlist.ids() {
            region[stem[g.index()].index()].push(g);
        }
        // Decide each region's abstract form: `Some((kind, leaves))` for a
        // collapsed super-gate, `None` for a 1:1 copy of its members. A
        // region that cannot collapse wholly (too many leaves, or its
        // function matches no single kind) is refined: connected same-kind
        // subtrees of the associative kinds are salvaged as their own
        // super-gates, which repartitions the stems.
        let mut collapsed: Vec<Option<(GateKind, Vec<GateId>)>> = vec![None; n];
        let mut refined = false;
        for g in netlist.ids() {
            let members = region[g.index()].clone();
            if members.len() < 2 || !netlist.gate(g).kind().is_logic() {
                continue;
            }
            if members
                .iter()
                .any(|&m| matches!(netlist.gate(m).kind(), GateKind::Input | GateKind::Dff))
            {
                continue;
            }
            let leaves = region_leaves(netlist, &members);
            if !leaves.is_empty() && leaves.len() <= MAX_REGION_LEAVES {
                if let Some(kind) = match_region(netlist, g, &members, &leaves) {
                    collapsed[g.index()] = Some((kind, leaves));
                    continue;
                }
            }
            refine_region(netlist, &members, &mut stem, &mut collapsed);
            refined = true;
        }
        if refined {
            // Refinement reassigned stems; re-derive the member lists.
            for r in region.iter_mut() {
                r.clear();
            }
            for g in netlist.ids() {
                region[stem[g.index()].index()].push(g);
            }
        }
        // Emit the abstract netlist: inputs first in concrete input order
        // (the equivalence contract's vector-matrix compatibility), then
        // every surviving gate in concrete topological order.
        let mut b = Netlist::builder();
        let mut abstract_of: Vec<GateId> = vec![GateId::from_index(0); n];
        let mut concrete_of: Vec<GateId> = Vec::new();
        let mut members_out: Vec<Vec<GateId>> = Vec::new();
        let mut super_gates = 0usize;
        let mut emitted = DenseBitSet::new(n);
        for &pi in netlist.inputs() {
            let name = netlist.name(pi).unwrap_or("").to_string();
            let a = if name.is_empty() {
                // Anonymous inputs are rare (programmatic netlists); keep a
                // synthesized stable name so `.bench` round-trips.
                b.add_input(format!("pi{}", pi.index()))
            } else {
                b.add_input(name)
            };
            abstract_of[pi.index()] = a;
            concrete_of.push(pi);
            members_out.push(vec![pi]);
            emitted.insert(pi.index());
        }
        for &g in netlist.topo_order() {
            if emitted.contains(g.index()) {
                continue;
            }
            let s = stem[g.index()];
            if let Some((kind, leaves)) = &collapsed[s.index()] {
                // The whole region becomes one super-gate, emitted when its
                // stem comes up in topo order (all leaves are earlier).
                if g != s {
                    continue;
                }
                let fanins: Vec<GateId> = leaves.iter().map(|&l| abstract_of[l.index()]).collect();
                let a = match netlist.name(s) {
                    Some(name) => b.add_named_gate(*kind, fanins, name),
                    None => b.add_gate(*kind, fanins),
                };
                for &m in &region[s.index()] {
                    abstract_of[m.index()] = a;
                    emitted.insert(m.index());
                }
                concrete_of.push(s);
                members_out.push(region[s.index()].clone());
                super_gates += 1;
            } else {
                // 1:1 copy. Fanins of a copied gate are either stems of
                // other regions or earlier members of this same (uncopied)
                // region — both already emitted in topo order.
                let gate = netlist.gate(g);
                let fanins: Vec<GateId> = gate
                    .fanins()
                    .iter()
                    .map(|&f| abstract_of[f.index()])
                    .collect();
                let a = match netlist.name(g) {
                    Some(name) => b.add_named_gate(gate.kind(), fanins, name),
                    None => b.add_gate(gate.kind(), fanins),
                };
                abstract_of[g.index()] = a;
                concrete_of.push(g);
                members_out.push(vec![g]);
                emitted.insert(g.index());
            }
        }
        for &po in netlist.outputs() {
            b.add_output(abstract_of[po.index()]);
        }
        let abstract_netlist = b
            .build()
            .expect("abstraction emits topologically ordered, arity-valid gates");
        Abstraction {
            netlist: abstract_netlist,
            map: AbstractionMap {
                abstract_of,
                concrete_of,
                members: members_out,
                super_gates,
            },
        }
    }
}

/// The leaves of a region: fanins of members that are not themselves
/// members, deduplicated, ascending by concrete id. Every leaf is another
/// region's stem (a single-fanout gate feeding into the region would have
/// joined it).
fn region_leaves(netlist: &Netlist, members: &[GateId]) -> Vec<GateId> {
    let mut in_region = DenseBitSet::new(netlist.len());
    for &m in members {
        in_region.insert(m.index());
    }
    let mut leaves: Vec<GateId> = Vec::new();
    for &m in members {
        for &f in netlist.gate(m).fanins() {
            if !in_region.contains(f.index()) && !leaves.contains(&f) {
                leaves.push(f);
            }
        }
    }
    leaves.sort();
    leaves
}

/// Re-partitions a region that cannot collapse wholly into connected
/// same-kind subtrees of the associative kinds (`And`/`Or`/`Xor`), each
/// capped at [`MAX_REGION_LEAVES`] leaves — an XOR ladder becomes a run
/// of wide-XOR super-gates, an AND tree a run of wide ANDs. Every
/// member's stem is reassigned (salvaged chunk members to their chunk
/// root, everything else to itself) and each surviving multi-gate chunk
/// is still verified through [`match_region`], so the equivalence
/// contract is unconditional here too.
fn refine_region(
    netlist: &Netlist,
    members: &[GateId],
    stem: &mut [GateId],
    collapsed: &mut [Option<(GateKind, Vec<GateId>)>],
) {
    struct Chunk {
        root: GateId,
        members: Vec<GateId>,
        leaves: Vec<GateId>,
        consumed: bool,
    }
    let mut in_region = DenseBitSet::new(netlist.len());
    for &m in members {
        in_region.insert(m.index());
    }
    let mut ordered: Vec<GateId> = members.to_vec();
    ordered.sort_by_key(|&m| netlist.topo_position(m));
    // Chunk index per processed member; fanins inside the region are
    // always processed first (topological order), so lookups never miss.
    let mut chunk_of: std::collections::HashMap<GateId, usize> =
        std::collections::HashMap::with_capacity(members.len());
    let mut chunks: Vec<Chunk> = Vec::with_capacity(members.len());
    for &g in &ordered {
        let kind = netlist.gate(g).kind();
        let grows = matches!(kind, GateKind::And | GateKind::Or | GateKind::Xor);
        let mut cm = vec![g];
        let mut cl: Vec<GateId> = Vec::new();
        let fanins = netlist.gate(g).fanins();
        for (idx, &f) in fanins.iter().enumerate() {
            // Reserve one leaf slot per unprocessed fanin, so a merge
            // never pushes the finished chunk past the leaf cap.
            let reserve = fanins.len() - idx - 1;
            if grows && in_region.contains(f.index()) && netlist.gate(f).kind() == kind {
                let ci = chunk_of[&f];
                if !chunks[ci].consumed {
                    let extra = chunks[ci].leaves.iter().filter(|l| !cl.contains(l)).count();
                    if cl.len() + extra + reserve <= MAX_REGION_LEAVES {
                        cm.append(&mut chunks[ci].members);
                        for &l in &chunks[ci].leaves {
                            if !cl.contains(&l) {
                                cl.push(l);
                            }
                        }
                        chunks[ci].consumed = true;
                        continue;
                    }
                }
            }
            // A duplicate fanin whose chunk was just absorbed is an
            // internal member now, not a leaf.
            if !cl.contains(&f) && !cm.contains(&f) {
                cl.push(f);
            }
        }
        chunk_of.insert(g, chunks.len());
        chunks.push(Chunk {
            root: g,
            members: cm,
            leaves: cl,
            consumed: false,
        });
    }
    for &m in members {
        stem[m.index()] = m;
    }
    for chunk in &mut chunks {
        if chunk.consumed || chunk.members.len() < 2 {
            continue;
        }
        chunk.leaves.sort();
        if chunk.leaves.is_empty() || chunk.leaves.len() > MAX_REGION_LEAVES {
            continue;
        }
        if let Some(kind) = match_region(netlist, chunk.root, &chunk.members, &chunk.leaves) {
            for &m in &chunk.members {
                stem[m.index()] = chunk.root;
            }
            collapsed[chunk.root.index()] = Some((kind, chunk.leaves.clone()));
        }
    }
}

/// Exhaustively evaluates the region over all `2^leaves` leaf patterns
/// and returns the single gate kind (over the leaves, in order) whose
/// truth table matches the stem's — or `None` when no kind matches.
fn match_region(
    netlist: &Netlist,
    stem: GateId,
    members: &[GateId],
    leaves: &[GateId],
) -> Option<GateKind> {
    let k = leaves.len();
    let rows = 1usize << k;
    let words = rows.div_ceil(64);
    let tail = if rows.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (rows % 64)) - 1
    };
    // Leaf i's column of the exhaustive pattern matrix: bit r of the table
    // is pattern r, whose i-th coordinate is `r >> i & 1`.
    let mut table: std::collections::HashMap<GateId, Vec<u64>> =
        std::collections::HashMap::with_capacity(members.len() + k);
    for (i, &l) in leaves.iter().enumerate() {
        let mut row = vec![0u64; words];
        for (w, word) in row.iter_mut().enumerate() {
            for bit in 0..64 {
                let r = w * 64 + bit;
                if r < rows && (r >> i) & 1 == 1 {
                    *word |= 1u64 << bit;
                }
            }
        }
        table.insert(l, row);
    }
    // Members in topological order (region members of a valid netlist are
    // already acyclic; sort by global topo position).
    let mut ordered: Vec<GateId> = members.to_vec();
    ordered.sort_by_key(|&m| netlist.topo_position(m));
    for &m in &ordered {
        let gate = netlist.gate(m);
        let row = eval_kind_words(
            gate.kind(),
            &gate
                .fanins()
                .iter()
                .map(|f| table.get(f).map(|r| r.as_slice()))
                .collect::<Option<Vec<&[u64]>>>()?,
            words,
        )?;
        table.insert(m, row);
    }
    let got = table.get(&stem)?;
    for kind in MATCH_KINDS {
        let (lo, hi) = kind.arity();
        if k < lo || k > hi {
            continue;
        }
        let leaf_rows: Vec<&[u64]> = leaves.iter().map(|l| table[l].as_slice()).collect();
        if let Some(want) = eval_kind_words(kind, &leaf_rows, words) {
            let matches = got.iter().zip(&want).enumerate().all(|(w, (&g, &e))| {
                let mask = if w == words - 1 { tail } else { !0u64 };
                g & mask == e & mask
            });
            if matches {
                return Some(kind);
            }
        }
    }
    None
}

/// Word-parallel [`GateKind::eval`] over packed truth-table rows. `None`
/// for kinds without a combinational function (inputs, DFFs) — callers
/// exclude those from collapsible regions up front.
fn eval_kind_words(kind: GateKind, fanins: &[&[u64]], words: usize) -> Option<Vec<u64>> {
    let mut out = vec![0u64; words];
    match kind {
        GateKind::Const0 => {}
        GateKind::Const1 => out.iter_mut().for_each(|w| *w = !0u64),
        GateKind::Buf => out.copy_from_slice(fanins.first()?),
        GateKind::Not => {
            for (w, &f) in out.iter_mut().zip(fanins.first()?.iter()) {
                *w = !f;
            }
        }
        GateKind::And | GateKind::Nand => {
            out.iter_mut().for_each(|w| *w = !0u64);
            for row in fanins {
                for (w, &f) in out.iter_mut().zip(row.iter()) {
                    *w &= f;
                }
            }
            if kind == GateKind::Nand {
                out.iter_mut().for_each(|w| *w = !*w);
            }
        }
        GateKind::Or | GateKind::Nor => {
            for row in fanins {
                for (w, &f) in out.iter_mut().zip(row.iter()) {
                    *w |= f;
                }
            }
            if kind == GateKind::Nor {
                out.iter_mut().for_each(|w| *w = !*w);
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            for row in fanins {
                for (w, &f) in out.iter_mut().zip(row.iter()) {
                    *w ^= f;
                }
            }
            if kind == GateKind::Xnor {
                out.iter_mut().for_each(|w| *w = !*w);
            }
        }
        GateKind::Input | GateKind::Dff => return None,
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse_bench;

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    /// An AND-chain `y = a & b & c & d` written as 2-input gates with no
    /// internal fanout: the whole chain is one fanout-free region whose
    /// function is a wide AND over the inputs.
    const AND_CHAIN: &str = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
t1 = AND(a, b)\nt2 = AND(t1, c)\ny = AND(t2, d)\n";

    #[test]
    fn and_chain_collapses_to_one_super_gate() {
        let n = parse_bench(AND_CHAIN).unwrap();
        let abs = Abstraction::build(&n);
        assert!(!abs.is_degenerate());
        assert_eq!(abs.map().super_gates(), 1);
        // 4 inputs + 1 super-gate.
        assert_eq!(abs.netlist().len(), 5);
        let y = abs.netlist().find_by_name("y").unwrap();
        assert_eq!(abs.netlist().gate(y).kind(), GateKind::And);
        assert_eq!(abs.netlist().gate(y).fanins().len(), 4);
        // The super-gate's members are the three chain gates.
        assert_eq!(abs.map().members(y).len(), 3);
        assert!(abs.map().validate());
        assert!(abs.map().collapse_ratio() < 1.0);
    }

    #[test]
    fn inputs_keep_concrete_order_and_outputs_map_one_to_one() {
        for src in [C17, AND_CHAIN] {
            let n = parse_bench(src).unwrap();
            let abs = Abstraction::build(&n);
            assert_eq!(abs.netlist().inputs().len(), n.inputs().len());
            for (i, (&ci, &ai)) in n.inputs().iter().zip(abs.netlist().inputs()).enumerate() {
                assert_eq!(abs.map().abstract_of(ci), ai, "input {i} order preserved");
                assert_eq!(abs.netlist().name(ai), n.name(ci));
            }
            assert_eq!(abs.netlist().outputs().len(), n.outputs().len());
            for (&co, &ao) in n.outputs().iter().zip(abs.netlist().outputs()) {
                assert_eq!(abs.map().abstract_of(co), ao);
            }
        }
    }

    #[test]
    fn validate_catches_corruption() {
        let n = parse_bench(AND_CHAIN).unwrap();
        let mut abs = Abstraction::build(&n);
        assert!(abs.map().validate());
        abs.map_mut().corrupt_for_chaos();
        assert!(!abs.map().validate());
    }

    #[test]
    fn xor_tree_collapses_to_wide_xor() {
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = XOR(a, b)\ny = XOR(t, c)\n")
                .unwrap();
        let abs = Abstraction::build(&n);
        assert_eq!(abs.map().super_gates(), 1);
        let y = abs.netlist().find_by_name("y").unwrap();
        assert_eq!(abs.netlist().gate(y).kind(), GateKind::Xor);
        assert_eq!(abs.netlist().gate(y).fanins().len(), 3);
    }

    #[test]
    fn aoi_region_with_no_single_gate_function_is_copied() {
        // y = (a & b) | c has no single-gate equivalent over {a, b, c};
        // the region must be copied 1:1 and the abstraction is degenerate.
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = OR(t, c)\n")
                .unwrap();
        let abs = Abstraction::build(&n);
        assert!(abs.is_degenerate());
        assert_eq!(abs.netlist().len(), n.len());
        assert!(abs.map().validate());
        assert!((abs.map().collapse_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_fanout_stems_stay_separate() {
        // `11` fans out twice in c17, so nothing below it can be absorbed
        // across that boundary.
        let n = parse_bench(C17).unwrap();
        let abs = Abstraction::build(&n);
        assert!(abs.map().validate());
        let eleven = n.find_by_name("11").unwrap();
        let a = abs.map().abstract_of(eleven);
        assert_eq!(abs.map().members(a), &[eleven]);
    }

    #[test]
    fn not_chain_collapses_to_buf_or_not() {
        // Double inverter == BUF of the input.
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\nt = NOT(a)\ny = NOT(t)\n").unwrap();
        let abs = Abstraction::build(&n);
        assert_eq!(abs.map().super_gates(), 1);
        let y = abs.netlist().find_by_name("y").unwrap();
        assert_eq!(abs.netlist().gate(y).kind(), GateKind::Buf);
    }

    /// A fanout-free XOR ladder wider than [`MAX_REGION_LEAVES`] cannot
    /// collapse wholly; refinement must chunk it into several wide-XOR
    /// super-gates that together still cover most of the ladder.
    #[test]
    fn oversized_xor_ladder_is_chunked_into_wide_xors() {
        let width = 3 * MAX_REGION_LEAVES; // 36 leaves, 35 chain gates
        let mut src = String::new();
        for i in 0..width {
            src.push_str(&format!("INPUT(d{i})\n"));
        }
        src.push_str("OUTPUT(y)\nt1 = XOR(d0, d1)\n");
        for i in 2..width {
            let out = if i + 1 == width {
                "y".to_string()
            } else {
                format!("t{i}")
            };
            src.push_str(&format!("{out} = XOR(t{}, d{i})\n", i - 1));
        }
        let n = parse_bench(&src).unwrap();
        let abs = Abstraction::build(&n);
        assert!(abs.map().validate());
        assert!(
            abs.map().super_gates() >= 3,
            "ladder chunks into >= 3 supers"
        );
        for a in abs.netlist().ids() {
            if abs.map().members(a).len() > 1 {
                assert_eq!(abs.netlist().gate(a).kind(), GateKind::Xor);
                assert!(abs.netlist().gate(a).fanins().len() <= MAX_REGION_LEAVES);
            }
        }
        // The chain shrinks by at least 2x at the gate level.
        let concrete_gates = n.len() - n.inputs().len();
        let abstract_gates = abs.netlist().len() - n.inputs().len();
        assert!(
            abstract_gates * 2 <= concrete_gates,
            "{abstract_gates} vs {concrete_gates}"
        );
    }

    /// A mixed region (an AND tree feeding an OR tree, single fanout
    /// throughout) has no single-kind function, but refinement salvages
    /// the homogeneous subtrees.
    #[test]
    fn mixed_kind_region_salvages_same_kind_subtrees() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
             a1 = AND(a, b)\na2 = AND(a1, c)\n\
             o1 = OR(d, e)\no2 = OR(o1, f)\n\
             y = XOR(a2, o2)\n",
        )
        .unwrap();
        let abs = Abstraction::build(&n);
        assert!(abs.map().validate());
        assert_eq!(abs.map().super_gates(), 2, "AND tree + OR tree");
        let y = abs.netlist().find_by_name("y").unwrap();
        assert_eq!(abs.netlist().gate(y).kind(), GateKind::Xor);
        let kinds: Vec<GateKind> = abs
            .netlist()
            .gate(y)
            .fanins()
            .iter()
            .map(|&f| abs.netlist().gate(f).kind())
            .collect();
        assert!(kinds.contains(&GateKind::And));
        assert!(kinds.contains(&GateKind::Or));
    }

    /// The equivalence contract, exhaustively: for every abstract gate,
    /// its simulated row equals the concrete stem's row on every input
    /// pattern.
    #[test]
    fn abstract_values_equal_concrete_stem_values_exhaustively() {
        for src in [C17, AND_CHAIN] {
            let n = parse_bench(src).unwrap();
            let abs = Abstraction::build(&n);
            assert!(abs.map().validate());
            let k = n.inputs().len();
            for pattern in 0u32..(1u32 << k) {
                let assign = |nl: &Netlist| -> Vec<bool> {
                    let mut vals = vec![false; nl.len()];
                    for (i, &pi) in nl.inputs().iter().enumerate() {
                        vals[pi.index()] = (pattern >> i) & 1 == 1;
                    }
                    for &g in nl.topo_order() {
                        let gate = nl.gate(g);
                        if gate.kind() == GateKind::Input {
                            continue;
                        }
                        let fanins: Vec<bool> =
                            gate.fanins().iter().map(|f| vals[f.index()]).collect();
                        vals[g.index()] = gate.kind().eval(&fanins);
                    }
                    vals
                };
                let cv = assign(&n);
                let av = assign(abs.netlist());
                for a in abs.netlist().ids() {
                    let stem = abs.map().concrete_of(a);
                    assert_eq!(
                        av[a.index()],
                        cv[stem.index()],
                        "pattern {pattern:#b}: abstract {a:?} vs concrete {stem:?} in {src:?}"
                    );
                }
            }
        }
    }
}
