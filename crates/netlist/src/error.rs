use std::error::Error;
use std::fmt;

use crate::gate::{GateId, GateKind};

/// Errors produced while building, mutating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate references a fanin id that does not exist.
    DanglingFanin {
        /// The referencing gate.
        gate: GateId,
        /// The missing fanin id.
        fanin: GateId,
    },
    /// A gate's fanin count violates its kind's arity.
    BadArity {
        /// The offending gate.
        gate: GateId,
        /// Its kind.
        kind: GateKind,
        /// The fanin count found.
        found: usize,
    },
    /// The combinational part of the netlist contains a cycle through the
    /// given gate.
    CombinationalCycle {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// An output refers to a gate id that does not exist.
    DanglingOutput {
        /// The missing id.
        gate: GateId,
    },
    /// The netlist has no primary outputs.
    NoOutputs,
    /// A `.bench` file could not be parsed.
    ParseBench {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// An operation targeted a gate id outside the netlist.
    UnknownGate {
        /// The missing id.
        gate: GateId,
    },
    /// An operation that requires a purely combinational netlist was given
    /// one containing DFFs (see [`crate::Netlist::ensure_combinational`]).
    Sequential {
        /// Number of DFF gates found.
        dffs: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingFanin { gate, fanin } => {
                write!(f, "gate {gate} references nonexistent fanin {fanin}")
            }
            NetlistError::BadArity { gate, kind, found } => {
                write!(
                    f,
                    "gate {gate} of kind {kind} has invalid fanin count {found}"
                )
            }
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through gate {gate}")
            }
            NetlistError::DanglingOutput { gate } => {
                write!(f, "primary output references nonexistent gate {gate}")
            }
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::ParseBench { line, reason } => {
                write!(f, "bench parse error at line {line}: {reason}")
            }
            NetlistError::UnknownGate { gate } => {
                write!(f, "unknown gate {gate}")
            }
            NetlistError::Sequential { dffs } => {
                write!(
                    f,
                    "netlist is sequential ({dffs} DFFs); unroll or scan-extract it first"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NetlistError::BadArity {
            gate: GateId(3),
            kind: GateKind::Not,
            found: 2,
        };
        assert_eq!(
            e.to_string(),
            "gate n3 of kind NOT has invalid fanin count 2"
        );
        let e = NetlistError::ParseBench {
            line: 7,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<NetlistError>();
    }
}
