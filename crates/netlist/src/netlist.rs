use std::collections::HashMap;

use crate::bitset::DenseBitSet;
use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};

/// A flat, id-indexed gate-level netlist.
///
/// Gates are stored densely; [`GateId`] `i` names both the gate and the line
/// it drives. Structural caches (fanouts, topological order, levels) are
/// maintained automatically across mutations, so queries are always
/// consistent with the current structure.
///
/// Construct via [`Netlist::builder`]; mutate via [`Netlist::replace_gate`]
/// and [`Netlist::append_gate`], which preserve the ids of existing gates
/// (the property the incremental rectification engine relies on).
///
/// # Example
///
/// ```
/// use incdx_netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), incdx_netlist::NetlistError> {
/// let mut b = Netlist::builder();
/// let a = b.add_input("a");
/// let bb = b.add_input("b");
/// let g = b.add_gate(GateKind::And, vec![a, bb]);
/// let h = b.add_gate(GateKind::Not, vec![g]);
/// b.add_output(h);
/// let mut n = b.build()?;
/// assert_eq!(n.level(h), 2);
/// // Rewriting `g` to OR keeps every id stable.
/// n.replace_gate(g, GateKind::Or, vec![a, bb])?;
/// assert_eq!(n.gate(g).kind(), GateKind::Or);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    gates: Vec<Gate>,
    names: Vec<Option<String>>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    // Caches, rebuilt by `rebuild`.
    fanouts: Vec<Vec<GateId>>,
    topo: Vec<GateId>,
    topo_pos: Vec<u32>,
    levels: Vec<u32>,
    acyclic: bool,
}

impl Netlist {
    /// Starts building a new netlist.
    pub fn builder() -> NetlistBuilder {
        NetlistBuilder::new()
    }

    /// Number of gates (primary inputs included).
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Is the netlist empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::from_index(i), g))
    }

    /// All gate ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + use<> {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Primary inputs, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order. The same line may be listed
    /// more than once (some benchmarks do this).
    #[inline]
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// The gates reading line `id` directly.
    #[inline]
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.index()]
    }

    /// A topological order of the gates over combinational edges. DFF
    /// outputs order like primary inputs (their fanin edge is sequential).
    #[inline]
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The position of `id` in [`Self::topo_order`].
    #[inline]
    pub fn topo_position(&self, id: GateId) -> usize {
        self.topo_pos[id.index()] as usize
    }

    /// Combinational level of a line: 0 for PIs/constants/DFF outputs,
    /// `1 + max(fanin levels)` otherwise.
    #[inline]
    pub fn level(&self, id: GateId) -> u32 {
        self.levels[id.index()]
    }

    /// The largest level in the netlist (0 for an all-input netlist).
    pub fn max_level(&self) -> u32 {
        self.levels.iter().copied().max().unwrap_or(0)
    }

    /// The declared name of a line, if any.
    pub fn name(&self, id: GateId) -> Option<&str> {
        self.names[id.index()].as_deref()
    }

    /// Finds a line by declared name (linear scan; intended for tests and
    /// tools, not hot paths).
    pub fn find_by_name(&self, name: &str) -> Option<GateId> {
        self.names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(GateId::from_index)
    }

    /// Ids of all DFF gates.
    pub fn dffs(&self) -> Vec<GateId> {
        self.iter()
            .filter(|(_, g)| g.kind() == GateKind::Dff)
            .map(|(id, _)| id)
            .collect()
    }

    /// Does the netlist contain no DFFs?
    pub fn is_combinational(&self) -> bool {
        self.gates.iter().all(|g| g.kind() != GateKind::Dff)
    }

    /// Is the combinational part acyclic?
    ///
    /// Always `true` for netlists built through the validating paths
    /// ([`NetlistBuilder::build`], [`Netlist::replace_gate`], …). Can be
    /// `false` only for structures admitted via
    /// [`Netlist::from_parts_unchecked`], which exists so static-analysis
    /// tooling can represent — and diagnose — hazardous circuits. For a
    /// cyclic netlist [`Netlist::topo_order`] is only a partial order (the
    /// gates on cycles are appended in id order), so simulation results
    /// are undefined until the cycle is repaired.
    #[inline]
    pub fn is_acyclic(&self) -> bool {
        self.acyclic
    }

    /// Errors with [`NetlistError::Sequential`] unless the netlist is
    /// purely combinational — the precondition checked by consumers (such
    /// as the rectification engine) that have no time-frame model.
    pub fn ensure_combinational(&self) -> Result<(), NetlistError> {
        let dffs = self
            .gates
            .iter()
            .filter(|g| g.kind() == GateKind::Dff)
            .count();
        if dffs == 0 {
            Ok(())
        } else {
            Err(NetlistError::Sequential { dffs })
        }
    }

    /// The transitive fanout cone of `id` (including `id`), as a bit set.
    /// The cone does not propagate through DFFs: a DFF output does not
    /// change combinationally when its data input does.
    pub fn fanout_cone(&self, id: GateId) -> DenseBitSet {
        let mut cone = DenseBitSet::new(self.len());
        let mut stack = vec![id];
        cone.insert(id.index());
        while let Some(g) = stack.pop() {
            for &f in self.fanouts(g) {
                if self.gate(f).kind() != GateKind::Dff && cone.insert(f.index()) {
                    stack.push(f);
                }
            }
        }
        cone
    }

    /// The gates of the fanout cone of `id` (including `id`), sorted in
    /// topological order — the order event-driven resimulation must use.
    pub fn fanout_cone_sorted(&self, id: GateId) -> Vec<GateId> {
        let cone = self.fanout_cone(id);
        let mut v: Vec<GateId> = cone.iter().map(GateId::from_index).collect();
        v.sort_by_key(|&g| self.topo_pos[g.index()]);
        v
    }

    /// The transitive fanin cone of `id` (including `id`), not crossing DFF
    /// boundaries.
    pub fn fanin_cone(&self, id: GateId) -> DenseBitSet {
        let mut cone = DenseBitSet::new(self.len());
        let mut stack = vec![id];
        cone.insert(id.index());
        while let Some(g) = stack.pop() {
            if self.gate(g).kind() == GateKind::Dff {
                continue;
            }
            for &f in self.gate(g).fanins() {
                if cone.insert(f.index()) {
                    stack.push(f);
                }
            }
        }
        cone
    }

    /// Rewrites gate `id` in place to `(kind, fanins)`, keeping every id
    /// stable. This is how corrections and fault models are applied.
    ///
    /// # Errors
    ///
    /// Returns an error — and leaves the netlist unchanged — if a fanin id
    /// is out of range, the arity is invalid, or a fanin lies in the fanout
    /// cone of `id` (which would create a combinational cycle).
    pub fn replace_gate(
        &mut self,
        id: GateId,
        kind: GateKind,
        fanins: Vec<GateId>,
    ) -> Result<(), NetlistError> {
        if id.index() >= self.len() {
            return Err(NetlistError::UnknownGate { gate: id });
        }
        let (lo, hi) = kind.arity();
        if fanins.len() < lo || fanins.len() > hi {
            return Err(NetlistError::BadArity {
                gate: id,
                kind,
                found: fanins.len(),
            });
        }
        for &f in &fanins {
            if f.index() >= self.len() {
                return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
            }
        }
        if kind != GateKind::Dff {
            let cone = self.fanout_cone(id);
            for &f in &fanins {
                if cone.contains(f.index()) {
                    return Err(NetlistError::CombinationalCycle { gate: id });
                }
            }
        }
        let g = &mut self.gates[id.index()];
        g.set_kind(kind);
        *g.fanins_mut() = fanins;
        self.rebuild();
        Ok(())
    }

    /// Appends a new gate, returning its id. Existing ids are unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if a fanin is out of range or the arity is invalid.
    pub fn append_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<GateId>,
    ) -> Result<GateId, NetlistError> {
        let id = GateId::from_index(self.len());
        let (lo, hi) = kind.arity();
        if fanins.len() < lo || fanins.len() > hi {
            return Err(NetlistError::BadArity {
                gate: id,
                kind,
                found: fanins.len(),
            });
        }
        for &f in &fanins {
            if f.index() >= self.len() {
                return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
            }
        }
        self.gates.push(Gate::new(kind, fanins));
        self.names.push(None);
        if kind == GateKind::Input {
            self.inputs.push(id);
        }
        self.rebuild();
        Ok(id)
    }

    /// Replaces the primary output list.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or references unknown gates.
    pub fn set_outputs(&mut self, outputs: Vec<GateId>) -> Result<(), NetlistError> {
        if outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        if let Some(&bad) = outputs.iter().find(|o| o.index() >= self.len()) {
            return Err(NetlistError::DanglingOutput { gate: bad });
        }
        self.outputs = outputs;
        Ok(())
    }

    /// Summary statistics (gate counts per kind, line counts, depth).
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind = HashMap::new();
        for g in &self.gates {
            *by_kind.entry(g.kind()).or_insert(0usize) += 1;
        }
        // The classic "circuit lines" count: one line per driven stem plus
        // one per additional fanout branch (a stem with k>1 readers has k
        // branch lines).
        let branch_lines: usize = self
            .fanouts
            .iter()
            .map(|f| if f.len() > 1 { f.len() } else { 0 })
            .sum();
        NetlistStats {
            gates: self.gates.len(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            dffs: by_kind.get(&GateKind::Dff).copied().unwrap_or(0),
            lines: self.gates.len() + branch_lines,
            depth: self.max_level(),
            by_kind,
        }
    }

    /// Sets or clears the declared name of a line.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_name(&mut self, id: GateId, name: Option<String>) {
        self.names[id.index()] = name;
    }

    /// Rebuilds fanouts, topological order and levels.
    ///
    /// The validating construction paths (builder validation /
    /// `replace_gate` cone check) guarantee an acyclic combinational part,
    /// so the Kahn pass consumes every gate and `acyclic` stays `true`.
    /// Structures admitted via [`Netlist::from_parts_unchecked`] may be
    /// cyclic or reference out-of-range fanins; the pass is tolerant of
    /// both (out-of-range edges are ignored, cyclic gates are appended to
    /// the topological order in id order) so the lint layer can inspect
    /// the structure instead of the constructor crashing.
    fn rebuild(&mut self) {
        let n = self.gates.len();
        self.inputs = self
            .gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind() == GateKind::Input)
            .map(|(i, _)| GateId::from_index(i))
            .collect();
        self.fanouts = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            for &f in g.fanins() {
                if f.index() < n {
                    self.fanouts[f.index()].push(GateId::from_index(i));
                }
            }
        }
        // Kahn over combinational edges: a DFF ignores its fanin edge.
        let mut indeg: Vec<u32> = self
            .gates
            .iter()
            .map(|g| {
                if g.kind() == GateKind::Dff {
                    0
                } else {
                    g.fanins().iter().filter(|f| f.index() < n).count() as u32
                }
            })
            .collect();
        let mut queue: Vec<GateId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(GateId::from_index)
            .collect();
        self.topo = Vec::with_capacity(n);
        self.levels = vec![0; n];
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            self.topo.push(g);
            for &f in &self.fanouts[g.index()] {
                if self.gates[f.index()].kind() == GateKind::Dff {
                    continue;
                }
                let lvl = self.levels[g.index()] + 1;
                if lvl > self.levels[f.index()] {
                    self.levels[f.index()] = lvl;
                }
                indeg[f.index()] -= 1;
                if indeg[f.index()] == 0 {
                    queue.push(f);
                }
            }
        }
        self.acyclic = self.topo.len() == n;
        if !self.acyclic {
            // Cyclic leftovers: append in id order so every gate has a
            // topo position (required by the structural queries the lint
            // analyses run); the order is only partial on the cycles.
            for (i, &d) in indeg.iter().enumerate() {
                if d > 0 {
                    self.topo.push(GateId::from_index(i));
                }
            }
        }
        self.topo_pos = vec![0; n];
        for (pos, &g) in self.topo.iter().enumerate() {
            self.topo_pos[g.index()] = pos as u32;
        }
    }

    pub(crate) fn from_parts(
        gates: Vec<Gate>,
        names: Vec<Option<String>>,
        outputs: Vec<GateId>,
    ) -> Result<Self, NetlistError> {
        let n = gates.len();
        for (i, g) in gates.iter().enumerate() {
            let id = GateId::from_index(i);
            let (lo, hi) = g.kind().arity();
            if g.fanins().len() < lo || g.fanins().len() > hi {
                return Err(NetlistError::BadArity {
                    gate: id,
                    kind: g.kind(),
                    found: g.fanins().len(),
                });
            }
            for &f in g.fanins() {
                if f.index() >= n {
                    return Err(NetlistError::DanglingFanin { gate: id, fanin: f });
                }
            }
        }
        if outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        if let Some(&bad) = outputs.iter().find(|o| o.index() >= n) {
            return Err(NetlistError::DanglingOutput { gate: bad });
        }
        let inputs = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind() == GateKind::Input)
            .map(|(i, _)| GateId::from_index(i))
            .collect();
        let mut nl = Netlist {
            gates,
            names,
            inputs,
            outputs,
            fanouts: Vec::new(),
            topo: Vec::new(),
            topo_pos: Vec::new(),
            levels: Vec::new(),
            acyclic: true,
        };
        // Cycle check first so callers get a located error; `rebuild`
        // would otherwise silently mark the netlist cyclic.
        nl.check_acyclic()?;
        nl.rebuild();
        Ok(nl)
    }

    /// Builds a netlist from raw parts with **no structural validation**.
    ///
    /// This is the escape hatch for static-analysis tooling: it admits
    /// combinational cycles, out-of-range fanins and outputs, arity
    /// violations, and an empty output list — exactly the hazards
    /// `incdx-lint` exists to report. Out-of-range fanin references are
    /// ignored by the structural queries (`fanouts`, `topo_order`,
    /// `level`), and for a cyclic netlist the topological order is only
    /// partial (see [`Netlist::is_acyclic`]), so **simulation results are
    /// undefined** until the netlist lints clean. Every validating
    /// constructor ([`crate::NetlistBuilder::build`], the `.bench`
    /// parser) should be preferred when the structure is meant to be
    /// sound.
    pub fn from_parts_unchecked(
        gates: Vec<Gate>,
        mut names: Vec<Option<String>>,
        outputs: Vec<GateId>,
    ) -> Self {
        names.resize(gates.len(), None);
        let mut nl = Netlist {
            gates,
            names,
            inputs: Vec::new(),
            outputs,
            fanouts: Vec::new(),
            topo: Vec::new(),
            topo_pos: Vec::new(),
            levels: Vec::new(),
            acyclic: true,
        };
        nl.rebuild();
        nl
    }

    fn check_acyclic(&self) -> Result<(), NetlistError> {
        let n = self.gates.len();
        let mut indeg: Vec<u32> = self
            .gates
            .iter()
            .map(|g| {
                if g.kind() == GateKind::Dff {
                    0
                } else {
                    g.fanins().len() as u32
                }
            })
            .collect();
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind() == GateKind::Dff {
                continue;
            }
            for &f in g.fanins() {
                fanouts[f.index()].push(i as u32);
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
        let mut seen = 0usize;
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head] as usize;
            head += 1;
            seen += 1;
            for &f in &fanouts[g] {
                indeg[f as usize] -= 1;
                if indeg[f as usize] == 0 {
                    queue.push(f);
                }
            }
        }
        if seen != n {
            let cyclic = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(NetlistError::CombinationalCycle {
                gate: GateId::from_index(cyclic),
            });
        }
        Ok(())
    }
}

/// Summary statistics of a [`Netlist`], from [`Netlist::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total gate count, primary inputs included.
    pub gates: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// DFF count (0 for combinational circuits).
    pub dffs: usize,
    /// Classic "circuit lines" count: stems plus fanout branches.
    pub lines: usize,
    /// Maximum combinational level.
    pub depth: u32,
    /// Gate count per kind.
    pub by_kind: HashMap<GateKind, usize>,
}

/// Incremental builder for [`Netlist`], created by [`Netlist::builder`].
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    gates: Vec<Gate>,
    names: Vec<Option<String>>,
    outputs: Vec<GateId>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named primary input, returning its line id.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = GateId::from_index(self.gates.len());
        self.gates.push(Gate::new(GateKind::Input, Vec::new()));
        self.names.push(Some(name.into()));
        id
    }

    /// Adds an anonymous gate, returning its line id.
    pub fn add_gate(&mut self, kind: GateKind, fanins: Vec<GateId>) -> GateId {
        let id = GateId::from_index(self.gates.len());
        self.gates.push(Gate::new(kind, fanins));
        self.names.push(None);
        id
    }

    /// Adds a named gate, returning its line id.
    pub fn add_named_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<GateId>,
        name: impl Into<String>,
    ) -> GateId {
        let id = self.add_gate(kind, fanins);
        self.names[id.index()] = Some(name.into());
        id
    }

    /// Declares `id` a primary output.
    pub fn add_output(&mut self, id: GateId) -> &mut Self {
        self.outputs.push(id);
        self
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Has nothing been added yet?
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Validates and finalizes the netlist.
    ///
    /// # Errors
    ///
    /// Returns an error on dangling fanins, invalid arities, combinational
    /// cycles, or a missing output list.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        Netlist::from_parts(self.gates, self.names, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        // c17-like: two-level NAND structure.
        let mut b = Netlist::builder();
        let i1 = b.add_input("i1");
        let i2 = b.add_input("i2");
        let i3 = b.add_input("i3");
        let g1 = b.add_gate(GateKind::Nand, vec![i1, i2]);
        let g2 = b.add_gate(GateKind::Nand, vec![i2, i3]);
        let g3 = b.add_gate(GateKind::Nand, vec![g1, g2]);
        b.add_output(g3);
        b.build().expect("valid netlist")
    }

    #[test]
    fn build_and_query() {
        let n = tiny();
        assert_eq!(n.len(), 6);
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.level(GateId(5)), 2);
        assert_eq!(n.level(GateId(0)), 0);
        assert_eq!(n.max_level(), 2);
        assert!(n.is_combinational());
        assert_eq!(n.find_by_name("i2"), Some(GateId(1)));
        assert_eq!(n.name(GateId(3)), None);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let n = tiny();
        let topo = n.topo_order();
        assert_eq!(topo.len(), n.len());
        for (id, g) in n.iter() {
            for &f in g.fanins() {
                assert!(
                    n.topo_position(f) < n.topo_position(id),
                    "fanin {f} must precede {id}"
                );
            }
        }
    }

    #[test]
    fn fanouts_are_consistent_with_fanins() {
        let n = tiny();
        // i2 feeds g1 (id 3) and g2 (id 4).
        assert_eq!(n.fanouts(GateId(1)), &[GateId(3), GateId(4)]);
        assert!(n.fanouts(GateId(5)).is_empty());
    }

    #[test]
    fn fanout_cone_and_fanin_cone() {
        let n = tiny();
        let cone = n.fanout_cone(GateId(1));
        assert_eq!(cone.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let sorted = n.fanout_cone_sorted(GateId(1));
        assert_eq!(*sorted.last().unwrap(), GateId(5));
        let fic = n.fanin_cone(GateId(3));
        assert_eq!(fic.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn replace_gate_keeps_ids_and_rebuilds() {
        let mut n = tiny();
        n.replace_gate(GateId(3), GateKind::Or, vec![GateId(0), GateId(1)])
            .unwrap();
        assert_eq!(n.gate(GateId(3)).kind(), GateKind::Or);
        assert_eq!(n.len(), 6);
        // Level structure unchanged here.
        assert_eq!(n.level(GateId(5)), 2);
    }

    #[test]
    fn replace_gate_rejects_cycle() {
        let mut n = tiny();
        // Feeding g3 (the PO, in g1's fanout cone) back into g1 is a cycle.
        let err = n
            .replace_gate(GateId(3), GateKind::And, vec![GateId(0), GateId(5)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
        // Netlist is unchanged.
        assert_eq!(n.gate(GateId(3)).kind(), GateKind::Nand);
    }

    #[test]
    fn replace_gate_rejects_bad_arity() {
        let mut n = tiny();
        let err = n
            .replace_gate(GateId(3), GateKind::Not, vec![GateId(0), GateId(1)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn append_gate_extends_without_disturbing() {
        let mut n = tiny();
        let inv = n.append_gate(GateKind::Not, vec![GateId(5)]).unwrap();
        assert_eq!(inv, GateId(6));
        assert_eq!(n.level(inv), 3);
        n.set_outputs(vec![inv]).unwrap();
        assert_eq!(n.outputs(), &[inv]);
    }

    #[test]
    fn builder_rejects_cycle() {
        let mut b = Netlist::builder();
        let a = b.add_input("a");
        // Forward reference forming a 2-cycle.
        let g1 = b.add_gate(GateKind::And, vec![a, GateId(2)]);
        let g2 = b.add_gate(GateKind::Or, vec![g1, a]);
        b.add_output(g2);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn builder_rejects_dangling_fanin() {
        let mut b = Netlist::builder();
        let a = b.add_input("a");
        let g = b.add_gate(GateKind::Not, vec![GateId(99)]);
        b.add_output(g);
        let _ = a;
        assert!(matches!(
            b.build().unwrap_err(),
            NetlistError::DanglingFanin { .. }
        ));
    }

    #[test]
    fn builder_rejects_missing_outputs() {
        let mut b = Netlist::builder();
        b.add_input("a");
        assert!(matches!(b.build().unwrap_err(), NetlistError::NoOutputs));
    }

    #[test]
    fn dff_breaks_cycles_and_levels() {
        // A DFF feedback loop (counter bit): valid sequential structure.
        let mut b = Netlist::builder();
        let q = b.add_gate(GateKind::Dff, vec![GateId(1)]);
        let d = b.add_gate(GateKind::Not, vec![q]);
        b.add_output(d);
        let n = b.build().expect("dff cycle is legal");
        assert_eq!(n.level(q), 0);
        assert_eq!(n.level(d), 1);
        assert!(!n.is_combinational());
        assert_eq!(n.dffs(), vec![q]);
        // Fanout cone stops at the DFF.
        assert_eq!(n.fanout_cone(d).len(), 1);
    }

    #[test]
    fn ensure_combinational_reports_dff_count() {
        assert_eq!(tiny().ensure_combinational(), Ok(()));
        let mut b = Netlist::builder();
        let a = b.add_input("a");
        let q1 = b.add_gate(GateKind::Dff, vec![a]);
        let q2 = b.add_gate(GateKind::Dff, vec![q1]);
        b.add_output(q2);
        let n = b.build().expect("valid sequential netlist");
        assert_eq!(
            n.ensure_combinational(),
            Err(NetlistError::Sequential { dffs: 2 })
        );
    }

    #[test]
    fn stats_count_lines_with_branches() {
        let n = tiny();
        let s = n.stats();
        assert_eq!(s.gates, 6);
        assert_eq!(s.inputs, 3);
        // i2 has two fanout branches; every other line is stem-only:
        // 6 stems + 2 branches.
        assert_eq!(s.lines, 8);
        assert_eq!(s.by_kind[&GateKind::Nand], 3);
        assert_eq!(s.depth, 2);
    }
}
