//! The daemon's job model: deterministic workload specs, job states,
//! and solution-set fingerprints.
//!
//! A job is described entirely by its [`JobSpec`] — circuit source,
//! fault model, injection seed, vector count, optional budgets. The
//! daemon never spools netlists or matrices: the spec (plus the
//! engine's own checkpoint) is enough to regenerate the workload
//! bit-identically after a crash, and the regenerated base netlist's
//! [`netlist_fingerprint`] is checked
//! against the one recorded at admission, so a torn or mixed-up spool
//! record is detected instead of silently diagnosing the wrong circuit.

use incdx_core::json::Json;
use incdx_core::{escape_json, netlist_fingerprint, RectifyConfig, Solution};
use incdx_fault::{
    inject_design_errors, inject_stuck_at_faults, CorrectionAction, InjectionConfig,
};
use incdx_netlist::{parse_bench, scan_convert, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where the golden circuit comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A named suite circuit (`c432a`, `s641a`, …), generated on the
    /// daemon side.
    Suite(String),
    /// An explicit netlist in `.bench` text, carried in the submit
    /// request (scan-converted server-side if sequential).
    Bench(String),
}

/// The fault model a job diagnoses under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Design-error diagnosis and correction: the corrupted design is
    /// rectified against the golden responses; the search stops at the
    /// first verified correction tuple.
    Dedc,
    /// Stuck-at diagnosis: all minimal equivalent fault tuples are
    /// enumerated (exhaustive search).
    StuckAt,
}

impl Model {
    /// Stable lowercase tag used on the wire and in the spool.
    pub fn tag(&self) -> &'static str {
        match self {
            Model::Dedc => "dedc",
            Model::StuckAt => "stuck-at",
        }
    }
}

/// A deterministic workload description: everything needed to rebuild
/// the diagnosis session from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Golden circuit source.
    pub source: Source,
    /// Fault model.
    pub model: Model,
    /// Number of faults/errors to inject.
    pub k: usize,
    /// Test-vector count.
    pub vectors: usize,
    /// Injection + vector seed (same seed → same workload).
    pub seed: u64,
    /// Optional job-wide node budget; exhausting it ends the job with
    /// a `budget-exhausted` verdict rather than requeueing it.
    pub max_nodes: Option<u64>,
    /// Optional job-wide wall-clock deadline, measured from admission.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// Parses the `"job"` object of a submit request (or a spool
    /// record).
    ///
    /// # Errors
    ///
    /// A description of the first missing or out-of-domain field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let source = match (v.get_opt("circuit"), v.get_opt("netlist")) {
            (Some(c), None) => Source::Suite(c.as_str()?.to_string()),
            (None, Some(n)) => Source::Bench(n.as_str()?.to_string()),
            (Some(_), Some(_)) => {
                return Err("give either `circuit` or `netlist`, not both".to_string())
            }
            (None, None) => return Err("missing field `circuit` (or `netlist`)".to_string()),
        };
        let model = match v.get("model")?.as_str()? {
            "dedc" => Model::Dedc,
            "stuck-at" => Model::StuckAt,
            other => return Err(format!("unknown model `{other}`")),
        };
        let k = v.get("k")?.as_usize()?;
        if k == 0 || k > 8 {
            return Err(format!("k = {k} out of range (1..=8)"));
        }
        let vectors = v.get("vectors")?.as_usize()?;
        if vectors == 0 || vectors > 1 << 16 {
            return Err(format!("vectors = {vectors} out of range (1..=65536)"));
        }
        let seed = v.get("seed")?.as_u64()?;
        let (max_nodes, deadline_ms) = match v.get_opt("limits") {
            Some(l) => (
                l.get_opt("max_nodes").map(Json::as_u64).transpose()?,
                l.get_opt("deadline_ms").map(Json::as_u64).transpose()?,
            ),
            None => (None, None),
        };
        Ok(JobSpec {
            source,
            model,
            k,
            vectors,
            seed,
            max_nodes,
            deadline_ms,
        })
    }

    /// Renders the spec back to its wire/spool JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match &self.source {
            Source::Suite(name) => {
                out.push_str(&format!("\"circuit\":\"{}\"", escape_json(name)));
            }
            Source::Bench(text) => {
                out.push_str(&format!("\"netlist\":\"{}\"", escape_json(text)));
            }
        }
        out.push_str(&format!(
            ",\"model\":\"{}\",\"k\":{},\"vectors\":{},\"seed\":{}",
            self.model.tag(),
            self.k,
            self.vectors,
            self.seed
        ));
        if self.max_nodes.is_some() || self.deadline_ms.is_some() {
            out.push_str(",\"limits\":{");
            let mut first = true;
            if let Some(n) = self.max_nodes {
                out.push_str(&format!("\"max_nodes\":{n}"));
                first = false;
            }
            if let Some(ms) = self.deadline_ms {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("\"deadline_ms\":{ms}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Key under which the interned-artifact layer shares this
    /// workload. Same key → bit-identical base netlist, vectors, and
    /// reference response.
    pub fn intern_key(&self) -> String {
        let src = match &self.source {
            Source::Suite(name) => format!("suite:{name}"),
            Source::Bench(text) => format!("bench:{:016x}", fnv64(text.as_bytes())),
        };
        format!(
            "{src}/{}/k{}/v{}/s{}",
            self.model.tag(),
            self.k,
            self.vectors,
            self.seed
        )
    }

    /// The engine configuration for this spec, before the scheduler
    /// overlays its per-slice limits.
    pub fn rectify_config(&self) -> RectifyConfig {
        match self.model {
            Model::Dedc => RectifyConfig::dedc(self.k),
            Model::StuckAt => RectifyConfig::stuck_at_exhaustive(self.k),
        }
    }
}

/// A fully constructed diagnosis workload: what `Rectifier::new` needs,
/// interned once per [`JobSpec::intern_key`] and shared read-only
/// across jobs and time slices.
#[derive(Debug)]
pub struct Workload {
    /// The netlist the engine diagnoses (the corrupted design for DEDC,
    /// the golden circuit for stuck-at).
    pub base: Netlist,
    /// Primary-input vectors.
    pub pi: PackedMatrix,
    /// Reference response (golden spec for DEDC, faulty device
    /// responses for stuck-at).
    pub resp: Response,
    /// Structural fingerprint of `base` — the spool-recovery guard.
    pub fingerprint: u64,
}

/// Outcome of [`build_workload`].
#[derive(Debug)]
pub enum BuiltWorkload {
    /// The workload is ready to diagnose (boxed: a `Workload` is large
    /// relative to the empty variant).
    Ready(Box<Workload>),
    /// Injection could not produce failing behaviour on this
    /// (circuit, seed, vectors) triple — a legitimate terminal outcome,
    /// reported as a zero-solution `exact` verdict, not an error.
    NoFailingBehaviour,
}

/// Builds the diagnosis workload for `spec` from scratch: generate or
/// parse the golden circuit, inject `k` faults/errors with the spec's
/// seed, simulate the reference responses. Deterministic — a crash and
/// rebuild yields a bit-identical workload, which is what makes the
/// spool's spec-plus-checkpoint persistence sufficient.
///
/// # Errors
///
/// A description of why the spec cannot be materialized (unknown
/// circuit, unparsable netlist, engine-rejected shapes).
pub fn build_workload(spec: &JobSpec) -> Result<BuiltWorkload, String> {
    let golden = match &spec.source {
        Source::Suite(name) => incdx_gen::generate(name).map_err(|e| e.to_string())?,
        Source::Bench(text) => parse_bench(text).map_err(|e| e.to_string())?,
    };
    let golden = if golden.is_combinational() {
        golden
    } else {
        scan_convert(&golden).map_err(|e| e.to_string())?.0
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut sim = Simulator::new();
    match spec.model {
        Model::Dedc => {
            let injection = match inject_design_errors(
                &golden,
                &InjectionConfig {
                    count: spec.k,
                    require_individually_observable: true,
                    check_vectors: spec.vectors,
                    max_attempts: 300,
                },
                &mut rng,
            ) {
                Ok(injection) => injection,
                Err(_) => return Ok(BuiltWorkload::NoFailingBehaviour),
            };
            let mut vec_rng = StdRng::seed_from_u64(spec.seed ^ 0x0DED_C000);
            let pi = PackedMatrix::random(golden.inputs().len(), spec.vectors, &mut vec_rng);
            let resp = Response::capture(&golden, &sim.run(&golden, &pi));
            let fingerprint = netlist_fingerprint(&injection.corrupted);
            Ok(BuiltWorkload::Ready(Box::new(Workload {
                base: injection.corrupted,
                pi,
                resp,
                fingerprint,
            })))
        }
        Model::StuckAt => {
            let injection = match inject_stuck_at_faults(
                &golden,
                &InjectionConfig {
                    count: spec.k,
                    require_individually_observable: false,
                    check_vectors: spec.vectors,
                    max_attempts: 100,
                },
                &mut rng,
            ) {
                Ok(injection) => injection,
                Err(_) => return Ok(BuiltWorkload::NoFailingBehaviour),
            };
            let mut vec_rng = StdRng::seed_from_u64(spec.seed ^ 0x00D1_A600);
            let pi = PackedMatrix::random(golden.inputs().len(), spec.vectors, &mut vec_rng);
            let device = Response::capture(
                &injection.corrupted,
                &sim.run_for_inputs(&injection.corrupted, golden.inputs(), &pi),
            );
            if device.po_values().rows() != golden.outputs().len() {
                return Ok(BuiltWorkload::NoFailingBehaviour);
            }
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(BuiltWorkload::NoFailingBehaviour);
            }
            let fingerprint = netlist_fingerprint(&golden);
            Ok(BuiltWorkload::Ready(Box::new(Workload {
                base: golden,
                pi,
                resp: device,
                fingerprint,
            })))
        }
    }
}

/// Order-independent fingerprint of a solution set, used to assert that
/// a crash-interrupted, resumed job reached exactly the solutions an
/// uninterrupted run finds. Each solution's corrections are serialized
/// canonically (sorted), the solution strings are sorted, and the whole
/// list is FNV-hashed.
pub fn solution_fingerprint(solutions: &[Solution]) -> u64 {
    let mut keys: Vec<String> = solutions
        .iter()
        .map(|s| {
            let mut parts: Vec<String> = s.corrections.iter().map(correction_key).collect();
            parts.sort();
            parts.join("+")
        })
        .collect();
    keys.sort();
    fnv64(keys.join("|").as_bytes())
}

fn correction_key(c: &incdx_fault::Correction) -> String {
    let line = c.line().index();
    match c.action() {
        CorrectionAction::SetConst(v) => format!("{line}:const:{v}"),
        CorrectionAction::ChangeKind(kind) => format!("{line}:kind:{}", kind.token()),
        CorrectionAction::InvertInput { port } => format!("{line}:inv:{port}"),
        CorrectionAction::RemoveInput { port } => format!("{line}:rm:{port}"),
        CorrectionAction::AddInput { source } => format!("{line}:add:{}", source.index()),
        CorrectionAction::ReplaceInput { port, source } => {
            format!("{line}:rep:{port}:{}", source.index())
        }
        CorrectionAction::WireThrough { port } => format!("{line}:wire:{port}"),
        CorrectionAction::InsertGate { kind, other } => {
            format!("{line}:ins:{}:{}", kind.token(), other.index())
        }
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Terminal summary of a finished job: enough for `status` responses,
/// the verdict event, and the crash-recovery determinism assertion —
/// without spooling whole correction tuples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobOutcome {
    /// Stable verdict tag (`exact`, `partial`, `budget-exhausted`,
    /// `deadline-exceeded`, `cancelled`, `degraded`, or the serve-only
    /// `no-failing` / `error`).
    pub verdict: String,
    /// Solutions reported.
    pub solutions: usize,
    /// Distinct corrected/diagnosed lines over all solutions.
    pub sites: usize,
    /// Order-independent [`solution_fingerprint`] of the solution set.
    pub solutions_fp: u64,
    /// Human-readable context (error text for failed jobs).
    pub detail: String,
}

/// Lifecycle states of a daemon job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for its first slice.
    Queued,
    /// A worker is running a slice right now.
    Running,
    /// Between slices, back in the fair-share ring.
    Waiting,
    /// Recovered from the spool after a daemon crash; waiting to be
    /// requeued (immediately under auto-resume, or on a `resume`
    /// request).
    Interrupted,
    /// Terminal: the search finished (see the job's verdict for how).
    Done,
    /// Terminal: cancelled by a client.
    Cancelled,
    /// Terminal: the job's slice panicked or its workload could not be
    /// built; the daemon isolated the failure and kept serving.
    Failed,
}

impl JobState {
    /// Stable lowercase tag used on the wire and in the spool.
    pub fn tag(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Waiting => "waiting",
            JobState::Interrupted => "interrupted",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parses a spool-record state tag.
    ///
    /// # Errors
    ///
    /// On an unknown tag.
    pub fn from_tag(tag: &str) -> Result<JobState, String> {
        Ok(match tag {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "waiting" => JobState::Waiting,
            "interrupted" => JobState::Interrupted,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            other => return Err(format!("unknown job state `{other}`")),
        })
    }

    /// Is this a terminal state (no further scheduling)?
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_core::json;

    fn spec() -> JobSpec {
        JobSpec {
            source: Source::Suite("c432a".to_string()),
            model: Model::Dedc,
            k: 1,
            vectors: 64,
            seed: 5,
            max_nodes: Some(10_000),
            deadline_ms: None,
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let s = spec();
        let back = JobSpec::from_json(&json::parse(&s.to_json()).unwrap()).unwrap();
        assert_eq!(back, s);
        let bench = JobSpec {
            source: Source::Bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".to_string()),
            model: Model::StuckAt,
            max_nodes: None,
            deadline_ms: Some(2_000),
            ..spec()
        };
        let back = JobSpec::from_json(&json::parse(&bench.to_json()).unwrap()).unwrap();
        assert_eq!(back, bench);
    }

    #[test]
    fn spec_rejects_bad_fields() {
        for bad in [
            "{\"model\":\"dedc\",\"k\":1,\"vectors\":64,\"seed\":1}",
            "{\"circuit\":\"c432a\",\"netlist\":\"x\",\"model\":\"dedc\",\"k\":1,\"vectors\":64,\"seed\":1}",
            "{\"circuit\":\"c432a\",\"model\":\"nope\",\"k\":1,\"vectors\":64,\"seed\":1}",
            "{\"circuit\":\"c432a\",\"model\":\"dedc\",\"k\":0,\"vectors\":64,\"seed\":1}",
            "{\"circuit\":\"c432a\",\"model\":\"dedc\",\"k\":1,\"vectors\":0,\"seed\":1}",
            "{\"circuit\":\"c432a\",\"model\":\"dedc\",\"k\":1,\"vectors\":64}",
        ] {
            let v = json::parse(bad).unwrap();
            assert!(JobSpec::from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn workload_construction_is_deterministic() {
        let s = spec();
        let a = match build_workload(&s).unwrap() {
            BuiltWorkload::Ready(w) => w,
            BuiltWorkload::NoFailingBehaviour => panic!("c432a/k1 must inject"),
        };
        let b = match build_workload(&s).unwrap() {
            BuiltWorkload::Ready(w) => w,
            BuiltWorkload::NoFailingBehaviour => panic!("c432a/k1 must inject"),
        };
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.base.len(), b.base.len());
        // A different seed yields a different corrupted design (with
        // overwhelming probability).
        let mut other = s.clone();
        other.seed = 6;
        assert_ne!(s.intern_key(), other.intern_key());
        if let BuiltWorkload::Ready(c) = build_workload(&other).unwrap() {
            assert_ne!(a.fingerprint, c.fingerprint);
        }
    }

    #[test]
    fn unknown_circuit_is_an_error_not_a_panic() {
        let mut s = spec();
        s.source = Source::Suite("c9999z".to_string());
        assert!(build_workload(&s).is_err());
        s.source = Source::Bench("y = AND(".to_string());
        assert!(build_workload(&s).is_err());
    }

    #[test]
    fn solution_fingerprint_is_order_independent() {
        use incdx_fault::Correction;
        use incdx_netlist::GateId;
        let c1 = Correction::new(GateId(3), CorrectionAction::SetConst(true));
        let c2 = Correction::new(GateId(7), CorrectionAction::InvertInput { port: 1 });
        let a = vec![
            Solution {
                corrections: vec![c1, c2],
            },
            Solution {
                corrections: vec![c2],
            },
        ];
        let b = vec![
            Solution {
                corrections: vec![c2],
            },
            Solution {
                corrections: vec![c2, c1],
            },
        ];
        assert_eq!(solution_fingerprint(&a), solution_fingerprint(&b));
        let c = vec![Solution {
            corrections: vec![c1],
        }];
        assert_ne!(solution_fingerprint(&a), solution_fingerprint(&c));
    }

    #[test]
    fn state_tags_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Waiting,
            JobState::Interrupted,
            JobState::Done,
            JobState::Cancelled,
            JobState::Failed,
        ] {
            assert_eq!(JobState::from_tag(s.tag()).unwrap(), s);
        }
        assert!(JobState::from_tag("nope").is_err());
        assert!(JobState::Done.terminal());
        assert!(!JobState::Interrupted.terminal());
    }
}
