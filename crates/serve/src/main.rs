//! The `incdx-serve` binary: flag parsing and the daemon ready line.
//!
//! ```text
//! incdx-serve [--addr HOST:PORT] [--spool DIR] [--workers N]
//!             [--quantum NODES] [--max-queue N] [--chaos SEED,RATE]
//!             [--no-auto-resume]
//! ```
//!
//! On successful startup the daemon prints exactly one ready line to
//! stdout — `{"serve":"ready","addr":"127.0.0.1:PORT","recovered":N,
//! "quarantined":N}` — and then serves until a `shutdown` request.
//! Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use incdx_core::ChaosConfig;
use incdx_serve::{ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("incdx-serve: {msg}");
            eprintln!(
                "usage: incdx-serve [--addr HOST:PORT] [--spool DIR] [--workers N] \
                 [--quantum NODES] [--max-queue N] [--chaos SEED,RATE] [--no-auto-resume]"
            );
            return ExitCode::from(2);
        }
    };
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(msg) => {
            eprintln!("incdx-serve: {msg}");
            return ExitCode::from(1);
        }
    };
    println!(
        "{{\"serve\":\"ready\",\"addr\":\"127.0.0.1:{}\",\"recovered\":{},\"quarantined\":{}}}",
        server.port(),
        server.recovered(),
        server.quarantined()
    );
    let _ = std::io::stdout().flush();
    server.join();
    ExitCode::SUCCESS
}

fn parse_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--spool" => cfg.spool_dir = PathBuf::from(value("--spool")?),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--quantum" => {
                cfg.quantum = value("--quantum")?
                    .parse()
                    .map_err(|e| format!("--quantum: {e}"))?;
            }
            "--max-queue" => {
                cfg.max_queue = value("--max-queue")?
                    .parse()
                    .map_err(|e| format!("--max-queue: {e}"))?;
            }
            "--chaos" => {
                cfg.chaos =
                    Some(ChaosConfig::parse(&value("--chaos")?).map_err(|e| e.to_string())?);
            }
            "--no-auto-resume" => cfg.auto_resume = false,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cfg)
}
