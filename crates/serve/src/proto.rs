//! The serve wire protocol: newline-delimited JSON over a TCP socket.
//!
//! Every client line is one request object tagged by its `"req"` field;
//! every request gets exactly one response line, except `subscribe`,
//! which follows its acknowledgement with a stream of event lines
//! ending in the job's terminal `verdict` event. Requests are parsed
//! with the workspace's shared minimal JSON reader
//! ([`incdx_core::json`]): malformed bytes from a client surface as a
//! typed `bad-request` rejection, never a daemon panic. The schemas are
//! documented in `EXPERIMENTS.md`.

use incdx_core::escape_json;
use incdx_core::json::{self, Json};

use crate::job::JobSpec;

/// Stable rejection codes carried in `{"ok":false,"code":...}`
/// responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The request line was not valid protocol JSON, or a field was
    /// missing or out of domain.
    BadRequest,
    /// Admission control refused the job: the work queue is at
    /// capacity. The response carries `retry_after_ms` — backpressure
    /// is typed, never a silent drop.
    QueueFull,
    /// The referenced job id is unknown to this daemon.
    UnknownJob,
    /// The requested transition is illegal in the job's current state
    /// (e.g. `resume` on a job that is not interrupted).
    BadState,
}

impl RejectCode {
    /// Stable lowercase tag used on the wire.
    pub fn tag(&self) -> &'static str {
        match self {
            RejectCode::BadRequest => "bad-request",
            RejectCode::QueueFull => "queue-full",
            RejectCode::UnknownJob => "unknown-job",
            RejectCode::BadState => "bad-state",
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new diagnosis job.
    Submit {
        /// Client-chosen tenant label (fair-share is per *job*; the
        /// tenant string is carried through to status and events).
        tenant: String,
        /// The deterministic workload description.
        spec: JobSpec,
    },
    /// Report a job's state, progress, and outcome.
    Status {
        /// Job id from the submit response.
        job: u64,
    },
    /// Cooperatively cancel a queued or running job.
    Cancel {
        /// Job id from the submit response.
        job: u64,
    },
    /// Requeue a job recovered from the spool in the interrupted state
    /// (only needed when the daemon runs with auto-resume disabled).
    Resume {
        /// Job id from the submit response.
        job: u64,
    },
    /// Stream progress/degradation/verdict events for a job until it
    /// reaches a terminal state.
    Subscribe {
        /// Job id from the submit response.
        job: u64,
    },
    /// Daemon-wide counters: queue depth, intern hit rate, recovery and
    /// quarantine tallies.
    Stats,
    /// Gracefully stop the daemon (in-flight slices finish and spool
    /// their checkpoints first).
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem, suitable for
    /// the `detail` field of a `bad-request` rejection.
    pub fn parse(line: &str) -> Result<Request, String> {
        let root = json::parse(line)?;
        let req = root.get("req")?.as_str()?.to_string();
        let job_id = |root: &Json| root.get("job")?.as_u64();
        match req.as_str() {
            "submit" => {
                let tenant = match root.get_opt("tenant") {
                    Some(t) => t.as_str()?.to_string(),
                    None => "default".to_string(),
                };
                let spec = JobSpec::from_json(root.get("job")?)?;
                Ok(Request::Submit { tenant, spec })
            }
            "status" => Ok(Request::Status {
                job: job_id(&root)?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: job_id(&root)?,
            }),
            "resume" => Ok(Request::Resume {
                job: job_id(&root)?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                job: job_id(&root)?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request `{other}`")),
        }
    }
}

/// Renders a rejection response line (without trailing newline).
pub fn reject(code: RejectCode, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"code\":\"{}\",\"detail\":\"{}\"}}",
        code.tag(),
        escape_json(detail)
    )
}

/// Renders the typed backpressure rejection: the queue is full, try
/// again after `retry_after_ms`.
pub fn reject_queue_full(depth: usize, retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"code\":\"{}\",\"queue_depth\":{depth},\"retry_after_ms\":{retry_after_ms}}}",
        RejectCode::QueueFull.tag()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_request_kind() {
        let r = Request::parse(
            "{\"req\":\"submit\",\"tenant\":\"t1\",\"job\":{\"circuit\":\"c432a\",\"model\":\"dedc\",\"k\":1,\"vectors\":64,\"seed\":5}}",
        )
        .unwrap();
        match r {
            Request::Submit { tenant, spec } => {
                assert_eq!(tenant, "t1");
                assert_eq!(spec.vectors, 64);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(
            Request::parse("{\"req\":\"status\",\"job\":3}").unwrap(),
            Request::Status { job: 3 }
        );
        assert_eq!(
            Request::parse("{\"req\":\"cancel\",\"job\":3}").unwrap(),
            Request::Cancel { job: 3 }
        );
        assert_eq!(
            Request::parse("{\"req\":\"resume\",\"job\":9}").unwrap(),
            Request::Resume { job: 9 }
        );
        assert_eq!(
            Request::parse("{\"req\":\"subscribe\",\"job\":0}").unwrap(),
            Request::Subscribe { job: 0 }
        );
        assert_eq!(
            Request::parse("{\"req\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse("{\"req\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_lines_without_panicking() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"req\":\"nope\"}",
            "{\"req\":\"status\"}",
            "{\"req\":\"submit\"}",
            "{\"req\":\"submit\",\"job\":{}}",
            "{\"req\":\"status\",\"job\":\"three\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejection_lines_are_well_formed() {
        let r = reject(RejectCode::BadRequest, "missing field `job`");
        assert!(r.contains("\"bad-request\""), "{r}");
        let q = reject_queue_full(32, 1500);
        assert!(q.contains("\"retry_after_ms\":1500"), "{q}");
        assert!(q.contains("\"queue-full\""), "{q}");
    }
}
