//! `incdx-serve`: a crash-tolerant multi-tenant diagnosis daemon.
//!
//! The service layer over the incremental rectification engine
//! (`incdx-core`): clients submit diagnosis jobs — a netlist source
//! plus an injected-error spec — over a newline-delimited JSON TCP
//! protocol ([`proto`]), and a fixed worker pool time-slices the jobs
//! through the engine under deficit-round-robin fair-share scheduling
//! ([`sched`]). Slicing is built on the engine's lossless
//! checkpoint/resume contract, so a job diced into hundreds of
//! preempted slices reaches a solution set bit-identical to one
//! uninterrupted run.
//!
//! Robustness is the point (see [`server`] for the full contract):
//! durable atomically-written spool records ([`spool`]) survive
//! `kill -9` and recover deterministically; torn or corrupt spool
//! files are detected, quarantined, and reported — never a panic;
//! per-job panic isolation keeps one poisoned job from taking the
//! daemon down; and admission control rejects overload with typed
//! `retry_after_ms` backpressure instead of silently degrading.
//! Expensive per-circuit artifacts (parsed netlists, vector sets,
//! fanout-cone caches) are interned once and shared `Arc`-read-only
//! across jobs ([`intern`]).
//!
//! The wire protocol and event schemas are documented in
//! `EXPERIMENTS.md`; the scheduling and recovery invariants in
//! `ARCHITECTURE.md`.

pub mod intern;
pub mod job;
pub mod proto;
pub mod sched;
pub mod server;
pub mod spool;

pub use intern::{Intern, InternStats, Interned};
pub use job::{
    build_workload, solution_fingerprint, BuiltWorkload, JobOutcome, JobSpec, JobState, Model,
    Source, Workload,
};
pub use proto::{reject, reject_queue_full, RejectCode, Request};
pub use sched::DrrQueue;
pub use server::{ServeConfig, Server};
pub use spool::{ScanReport, Spool, SpoolRecord, SPOOL_VERSION};
