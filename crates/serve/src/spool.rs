//! The durable job spool: one atomically-written JSON line per job,
//! under the daemon's spool directory.
//!
//! Every admission, slice boundary, and terminal transition rewrites
//! the job's record via temp-file-plus-rename, so the spool always
//! holds a *complete* document for every job — a `kill -9` between any
//! two instructions leaves either the previous record or the new one,
//! never a torn hybrid under the final name. On restart the daemon
//! scans the directory: parsable records become jobs again (non-
//! terminal ones in the interrupted state, carrying their engine
//! checkpoint), and unparsable files are **quarantined** — renamed to
//! `*.quarantined`, counted, and reported — never trusted and never a
//! panic. A second guard runs at resume time: the workload is rebuilt
//! from the spec and its netlist fingerprint must equal the one
//! recorded at admission, catching records that parse fine but
//! describe a different circuit than the checkpoint they carry.
//!
//! The spool is also a chaos site (`--chaos`): the serialized record
//! can be deterministically torn before the write, and the
//! write-then-read-back validation must detect the damage and rewrite
//! the line from memory, recording a `CheckpointRepair` degradation —
//! injected tears map 1:1 onto repairs.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use incdx_core::json;
use incdx_core::{escape_json, ChaosState, Checkpoint, DegradationEvent, DegradationKind};

use crate::job::{JobOutcome, JobSpec, JobState};

/// Schema version written into every spool record.
pub const SPOOL_VERSION: u32 = 1;

/// One job's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoolRecord {
    /// Daemon-assigned job id (also names the file: `job-<id>.json`).
    pub id: u64,
    /// Client-supplied tenant label.
    pub tenant: String,
    /// The deterministic workload spec.
    pub spec: JobSpec,
    /// Lifecycle state at the last rewrite.
    pub state: JobState,
    /// Decision-tree nodes consumed so far (across all slices).
    pub nodes: u64,
    /// Slices run so far.
    pub slices: u64,
    /// Base-netlist fingerprint recorded after the first slice
    /// (0 = not yet known); the recovery guard.
    pub fingerprint: u64,
    /// The engine checkpoint to resume from, when interrupted mid-run.
    pub checkpoint: Option<Checkpoint>,
    /// Terminal summary, once the job finished.
    pub outcome: Option<JobOutcome>,
    /// Spool-repair events survived so far (checkpoint chaos tears).
    pub repairs: u64,
}

impl SpoolRecord {
    /// Renders the record as one line of JSON. The engine checkpoint is
    /// embedded as an escaped string, so the record stays a single
    /// self-contained line no matter how deep the checkpoint nests.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"spool\":\"incdx-serve\",\"version\":{SPOOL_VERSION},\"id\":{},\"tenant\":\"{}\",\"state\":\"{}\",\"nodes\":{},\"slices\":{},\"fingerprint\":{},\"repairs\":{},\"spec\":{}",
            self.id,
            escape_json(&self.tenant),
            self.state.tag(),
            self.nodes,
            self.slices,
            self.fingerprint,
            self.repairs,
            self.spec.to_json(),
        ));
        if let Some(ckpt) = &self.checkpoint {
            out.push_str(&format!(
                ",\"checkpoint\":\"{}\"",
                escape_json(&ckpt.to_json())
            ));
        }
        if let Some(o) = &self.outcome {
            out.push_str(&format!(
                ",\"outcome\":{{\"verdict\":\"{}\",\"solutions\":{},\"sites\":{},\"solutions_fp\":{},\"detail\":\"{}\"}}",
                escape_json(&o.verdict),
                o.solutions,
                o.sites,
                o.solutions_fp,
                escape_json(&o.detail)
            ));
        }
        out.push('}');
        out
    }

    /// Parses a spool line.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field — the caller's cue to
    /// quarantine the file.
    pub fn from_json(text: &str) -> Result<SpoolRecord, String> {
        let root = json::parse(text)?;
        if root.get("spool")?.as_str()? != "incdx-serve" {
            return Err("not an incdx-serve spool record".to_string());
        }
        let version = root.get("version")?.as_u64()?;
        if version != u64::from(SPOOL_VERSION) {
            return Err(format!("unsupported spool version {version}"));
        }
        let checkpoint = match root.get_opt("checkpoint") {
            Some(c) => Some(Checkpoint::from_json(c.as_str()?).map_err(|e| e.to_string())?),
            None => None,
        };
        let outcome = match root.get_opt("outcome") {
            Some(o) => Some(JobOutcome {
                verdict: o.get("verdict")?.as_str()?.to_string(),
                solutions: o.get("solutions")?.as_usize()?,
                sites: o.get("sites")?.as_usize()?,
                solutions_fp: o.get("solutions_fp")?.as_u64()?,
                detail: o.get("detail")?.as_str()?.to_string(),
            }),
            None => None,
        };
        Ok(SpoolRecord {
            id: root.get("id")?.as_u64()?,
            tenant: root.get("tenant")?.as_str()?.to_string(),
            spec: JobSpec::from_json(root.get("spec")?)?,
            state: JobState::from_tag(root.get("state")?.as_str()?)?,
            nodes: root.get("nodes")?.as_u64()?,
            slices: root.get("slices")?.as_u64()?,
            fingerprint: root.get("fingerprint")?.as_u64()?,
            checkpoint,
            outcome,
            repairs: root.get("repairs")?.as_u64()?,
        })
    }
}

/// What a startup scan found.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Every parsable record, sorted by job id.
    pub records: Vec<SpoolRecord>,
    /// Files that failed to parse and were renamed to `*.quarantined`.
    pub quarantined: Vec<String>,
}

/// The spool directory handle.
pub struct Spool {
    dir: PathBuf,
    chaos: Option<Arc<ChaosState>>,
}

impl Spool {
    /// Opens (creating if needed) the spool directory.
    ///
    /// # Errors
    ///
    /// If the directory cannot be created.
    pub fn open(dir: &Path, chaos: Option<Arc<ChaosState>>) -> Result<Spool, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        Ok(Spool {
            dir: dir.to_path_buf(),
            chaos,
        })
    }

    fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}.json"))
    }

    /// Durably writes `rec`, atomically (temp file + rename + fsync),
    /// then reads the file back and re-parses it. If the read-back
    /// fails — a chaos-injected tear, or real media trouble — the clean
    /// line is rewritten from memory and the repair is reported as a
    /// [`DegradationKind::CheckpointRepair`] event (1:1 with injected
    /// faults).
    ///
    /// # Errors
    ///
    /// Only if the filesystem refuses both attempts.
    pub fn write(&self, rec: &SpoolRecord) -> Result<Option<DegradationEvent>, String> {
        let path = self.path_of(rec.id);
        let mut line = rec.to_json();
        if let Some(chaos) = &self.chaos {
            chaos.maybe_corrupt_checkpoint(&mut line);
        }
        atomic_write_line(&path, &line)?;
        // Read-back validation: the spool must never leave a record it
        // cannot itself recover from.
        let damaged = match std::fs::read_to_string(&path) {
            Ok(text) => SpoolRecord::from_json(text.trim_end_matches(['\n', '\r'])).is_err(),
            Err(_) => true,
        };
        if damaged {
            atomic_write_line(&path, &rec.to_json())?;
            return Ok(Some(DegradationEvent::new(
                DegradationKind::CheckpointRepair,
                1,
                format!("spool record for job {} torn on write; rewritten", rec.id),
            )));
        }
        Ok(None)
    }

    /// Removes a job's record (used only by tests and explicit cleanup;
    /// terminal records are kept so clients can query them after a
    /// restart).
    pub fn remove(&self, id: u64) {
        let _ = std::fs::remove_file(self.path_of(id));
    }

    /// Moves a job's record aside as `*.quarantined` (called when a
    /// record parses but fails the fingerprint guard at resume time).
    /// Returns the quarantined file name.
    pub fn quarantine(&self, id: u64) -> String {
        let path = self.path_of(id);
        let target = quarantine_name(&path);
        let _ = std::fs::rename(&path, &target);
        target
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Scans the directory: every `job-*.json` is parsed; failures are
    /// quarantined and reported. Never panics, whatever the bytes.
    pub fn scan(&self) -> ScanReport {
        let mut report = ScanReport::default();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(_) => return report,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with("job-") || !name.ends_with(".json") {
                continue;
            }
            let parsed = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    SpoolRecord::from_json(text.trim_end_matches(['\n', '\r']))
                        .map_err(|e| e.to_string())
                });
            match parsed {
                Ok(rec) => report.records.push(rec),
                Err(_) => {
                    let target = quarantine_name(&path);
                    let _ = std::fs::rename(&path, &target);
                    report.quarantined.push(name);
                }
            }
        }
        report.records.sort_by_key(|r| r.id);
        report
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn quarantine_name(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".quarantined");
    PathBuf::from(os)
}

fn atomic_write_line(path: &Path, line: &str) -> Result<(), String> {
    let err = |e: std::io::Error| format!("{}: {e}", path.display());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp).map_err(err)?;
    file.write_all(line.as_bytes()).map_err(err)?;
    file.write_all(b"\n").map_err(err)?;
    file.sync_all().map_err(err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Model, Source};
    use incdx_core::{ChaosConfig, CHECKPOINT_VERSION};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incdx-spool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(id: u64) -> SpoolRecord {
        SpoolRecord {
            id,
            tenant: "t1".to_string(),
            spec: JobSpec {
                source: Source::Suite("c432a".to_string()),
                model: Model::Dedc,
                k: 1,
                vectors: 64,
                seed: 5,
                max_nodes: None,
                deadline_ms: None,
            },
            state: JobState::Waiting,
            nodes: 120,
            slices: 3,
            fingerprint: 0xfeed,
            checkpoint: Some(Checkpoint {
                version: CHECKPOINT_VERSION,
                label: "serve/c432a/k1/t5".to_string(),
                trial_seed: 5,
                vectors: 64,
                base_gates: 10,
                base_hash: 0xfeed,
                level: 0,
                phase: 0,
                iterations: 2,
                plan: vec![],
                plan_pos: 0,
                nodes: vec![],
                visited: vec![],
                solutions: vec![],
            }),
            outcome: None,
            repairs: 0,
        }
    }

    #[test]
    fn record_round_trips_with_embedded_checkpoint() {
        let rec = record(7);
        let back = SpoolRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        let mut terminal = record(8);
        terminal.state = JobState::Done;
        terminal.checkpoint = None;
        terminal.outcome = Some(JobOutcome {
            verdict: "exact".to_string(),
            solutions: 2,
            sites: 3,
            solutions_fp: 99,
            detail: String::new(),
        });
        let back = SpoolRecord::from_json(&terminal.to_json()).unwrap();
        assert_eq!(back, terminal);
    }

    #[test]
    fn write_is_atomic_and_scan_recovers() {
        let dir = tmpdir("atomic");
        let spool = Spool::open(&dir, None).unwrap();
        assert!(spool.write(&record(1)).unwrap().is_none());
        assert!(spool.write(&record(2)).unwrap().is_none());
        assert!(
            !dir.join("job-1.json.tmp").exists(),
            "temp file must not survive"
        );
        let report = spool.scan();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.records[0].id, 1);
        assert!(report.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_files_are_quarantined_not_trusted() {
        let dir = tmpdir("torn");
        let spool = Spool::open(&dir, None).unwrap();
        spool.write(&record(1)).unwrap();
        // A torn copy of a legitimate record, and pure garbage.
        let line = record(2).to_json();
        std::fs::write(dir.join("job-2.json"), &line[..line.len() / 2]).unwrap();
        std::fs::write(dir.join("job-3.json"), "}} definitely not json").unwrap();
        let report = spool.scan();
        assert_eq!(report.records.len(), 1, "only the intact record survives");
        assert_eq!(report.quarantined.len(), 2);
        assert!(dir.join("job-2.json.quarantined").exists());
        assert!(!dir.join("job-2.json").exists());
        // A re-scan is clean: quarantined files are out of the way.
        assert!(spool.scan().quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_tear_is_repaired_with_one_event_per_fault() {
        let dir = tmpdir("chaos");
        let chaos = ChaosState::new(ChaosConfig { seed: 3, rate: 1.0 });
        let spool = Spool::open(&dir, Some(Arc::clone(&chaos))).unwrap();
        let mut repairs = 0u64;
        for i in 0..8 {
            if let Some(event) = spool.write(&record(i)).unwrap() {
                assert_eq!(event.kind, DegradationKind::CheckpointRepair);
                repairs += event.count;
            }
        }
        let injected = chaos.summary().checkpoint_corruptions;
        assert!(injected > 0, "rate 1.0 must inject");
        assert_eq!(repairs, injected, "1:1 fault-to-repair accounting");
        // After repair, every record is readable.
        let report = spool.scan();
        assert_eq!(report.records.len(), 8);
        assert!(report.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_quarantine_moves_the_file() {
        let dir = tmpdir("explicit");
        let spool = Spool::open(&dir, None).unwrap();
        spool.write(&record(4)).unwrap();
        let name = spool.quarantine(4);
        assert_eq!(name, "job-4.json.quarantined");
        assert!(spool.scan().records.is_empty());
        spool.remove(4); // no-op on a quarantined id, must not panic
        std::fs::remove_dir_all(&dir).ok();
    }
}
