//! The interned-artifact layer: expensive per-circuit construction is
//! done once and shared `Arc`-read-only across jobs and time slices.
//!
//! Two maps, both guarded by plain mutexes (contention is negligible
//! next to the construction they avoid):
//!
//! * **workloads**, keyed by [`JobSpec::intern_key`] — the parsed/
//!   generated base [`Netlist`](incdx_netlist::Netlist), the test-vector
//!   matrix, and the simulated reference response. Building one of
//!   these runs the injector's observable-corruption search (up to
//!   hundreds of candidate simulations); every later slice of the same
//!   job, and every other job with the same spec, reuses the `Arc`.
//! * **cone caches**, keyed by the base netlist's
//!   [`netlist_fingerprint`](incdx_core::netlist_fingerprint) — a
//!   warmed [`ConeCache`] clone is handed to each new `Rectifier`
//!   slice, and the slice's (possibly better-populated) cache is merged
//!   back after. Cones are pure functions of the base netlist, so
//!   sharing them across *different* specs of the same circuit is
//!   sound.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use incdx_netlist::ConeCache;

use crate::job::{build_workload, BuiltWorkload, JobSpec, Workload};

/// Hit/miss telemetry for the artifact maps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Workload lookups served from the map.
    pub hits: u64,
    /// Workload lookups that had to build from scratch.
    pub misses: u64,
    /// Cone-cache handouts that carried at least one warmed cone.
    pub cone_hits: u64,
}

impl InternStats {
    /// Hit rate over all workload lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of a workload lookup.
pub enum Interned {
    /// The workload, shared read-only.
    Ready(Arc<Workload>),
    /// The spec deterministically produces no failing behaviour
    /// (memoized too, so repeated submits stay cheap).
    NoFailingBehaviour,
}

enum Slot {
    Ready(Arc<Workload>),
    NoFailingBehaviour,
}

/// The artifact store. One per daemon.
#[derive(Default)]
pub struct Intern {
    workloads: Mutex<HashMap<String, Slot>>,
    cones: Mutex<HashMap<u64, ConeCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
    cone_hits: AtomicU64,
}

impl Intern {
    /// A fresh, empty store.
    pub fn new() -> Intern {
        Intern::default()
    }

    /// Looks up (or builds and interns) the workload for `spec`.
    ///
    /// # Errors
    ///
    /// Construction failures (unknown circuit, unparsable netlist) are
    /// *not* memoized — a transient failure shouldn't poison the key.
    pub fn workload(&self, spec: &JobSpec) -> Result<Interned, String> {
        let key = spec.intern_key();
        {
            let map = lock(&self.workloads);
            if let Some(slot) = map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(match slot {
                    Slot::Ready(w) => Interned::Ready(Arc::clone(w)),
                    Slot::NoFailingBehaviour => Interned::NoFailingBehaviour,
                });
            }
        }
        // Build outside the lock: giant circuits must not stall every
        // other worker's lookups. Two racing builders do redundant work
        // once; both results are bit-identical, so either may win.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = build_workload(spec)?;
        let mut map = lock(&self.workloads);
        let slot = map.entry(key).or_insert(match built {
            BuiltWorkload::Ready(w) => Slot::Ready(Arc::new(*w)),
            BuiltWorkload::NoFailingBehaviour => Slot::NoFailingBehaviour,
        });
        Ok(match slot {
            Slot::Ready(w) => Interned::Ready(Arc::clone(w)),
            Slot::NoFailingBehaviour => Interned::NoFailingBehaviour,
        })
    }

    /// A cone cache for the circuit with structural fingerprint
    /// `fingerprint`, warmed with every cone any previous slice of that
    /// circuit computed (cloning shares the `Arc`'d cones). Returns
    /// `None` when no cache has been deposited yet — the caller lets
    /// `Rectifier` build its own.
    pub fn cones(&self, fingerprint: u64) -> Option<ConeCache> {
        let map = lock(&self.cones);
        let cache = map.get(&fingerprint)?;
        if cache.populated() > 0 {
            self.cone_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(cache.clone())
    }

    /// Deposits a slice's cone cache back, keeping whichever of the old
    /// and new caches memoizes more cones.
    pub fn deposit_cones(&self, fingerprint: u64, cache: ConeCache) {
        let mut map = lock(&self.cones);
        match map.get_mut(&fingerprint) {
            Some(existing) if existing.populated() >= cache.populated() => {}
            Some(existing) => *existing = cache,
            None => {
                map.insert(fingerprint, cache);
            }
        }
    }

    /// Current hit/miss tallies.
    pub fn stats(&self) -> InternStats {
        InternStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cone_hits: self.cone_hits.load(Ordering::Relaxed),
        }
    }
}

/// Locks a mutex, riding through poisoning: a panicking holder can only
/// have been *reading* or replacing whole entries, both of which leave
/// the map coherent — and the daemon's job isolation must not let one
/// poisoned job take the artifact store down with it.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Model, Source};

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            source: Source::Suite("c432a".to_string()),
            model: Model::Dedc,
            k: 1,
            vectors: 64,
            seed,
            max_nodes: None,
            deadline_ms: None,
        }
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let intern = Intern::new();
        let a = match intern.workload(&spec(5)).unwrap() {
            Interned::Ready(w) => w,
            Interned::NoFailingBehaviour => panic!("c432a/k1 must inject"),
        };
        let b = match intern.workload(&spec(5)).unwrap() {
            Interned::Ready(w) => w,
            Interned::NoFailingBehaviour => panic!("c432a/k1 must inject"),
        };
        assert!(Arc::ptr_eq(&a, &b), "same key must share the artifact");
        let s = intern.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        // A different seed is a different workload.
        intern.workload(&spec(6)).unwrap();
        assert_eq!(intern.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_memoized() {
        let intern = Intern::new();
        let mut bad = spec(1);
        bad.source = Source::Suite("c9999z".to_string());
        assert!(intern.workload(&bad).is_err());
        assert!(intern.workload(&bad).is_err());
        assert_eq!(intern.stats().hits, 0, "failures must not populate the map");
    }

    #[test]
    fn cone_deposit_keeps_the_fuller_cache() {
        let intern = Intern::new();
        assert!(intern.cones(42).is_none());
        let netlist =
            incdx_netlist::parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let mut warmed = ConeCache::new(&netlist);
        warmed.get(&netlist, incdx_netlist::GateId(0));
        intern.deposit_cones(42, ConeCache::new(&netlist));
        intern.deposit_cones(42, warmed.clone());
        assert_eq!(intern.cones(42).unwrap().populated(), warmed.populated());
        // An emptier deposit does not regress the stored cache.
        intern.deposit_cones(42, ConeCache::new(&netlist));
        assert_eq!(intern.cones(42).unwrap().populated(), warmed.populated());
        assert!(intern.stats().cone_hits >= 1);
    }
}
