//! The daemon: TCP accept loop, per-client request handling, the
//! fair-share worker pool, and crash recovery from the spool.
//!
//! # Robustness contract
//!
//! * **Per-job panic isolation.** Every engine slice runs under the
//!   crate's one sanctioned `catch_unwind` boundary (this file). A
//!   panicking slice fails *its* job with a typed `error` outcome and
//!   increments the daemon's `panics_isolated` counter; every other
//!   job, the artifact store, and the accept loop keep going. All
//!   mutexes are locked through poison-riding helpers for the same
//!   reason.
//! * **Durable progress.** A job's spool record is rewritten (atomic
//!   temp-file + rename, see [`crate::spool`]) at admission, at every
//!   slice boundary with the engine checkpoint embedded, and at its
//!   terminal transition. `kill -9` between any two writes loses at
//!   most the slice in flight; restart re-runs it from the last
//!   checkpoint and — by the engine's lossless checkpoint/resume
//!   contract — reaches the identical solution set.
//! * **Typed backpressure.** Admission past `max_queue` pending jobs is
//!   refused with a `queue-full` rejection carrying `retry_after_ms`;
//!   nothing is silently dropped.
//!
//! # Fair-share scheduling
//!
//! Workers pull from one [`DrrQueue`]: each pop grants a slice budget
//! of decision-tree nodes (banked deficit + one quantum), the engine
//! runs with `max_total_nodes` set to that budget, and a preempted job
//! re-enters the ring with its unspent credit. Giant jobs and floods of
//! small jobs therefore interleave instead of starving each other.

use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use incdx_core::{
    escape_json, CancelToken, ChaosConfig, ChaosState, Checkpoint, DegradationEvent, Rectifier,
    RectifyResult, Verdict,
};

use crate::intern::{Intern, Interned};
use crate::job::{solution_fingerprint, JobOutcome, JobSpec, JobState};
use crate::proto::{reject, reject_queue_full, RejectCode, Request};
use crate::sched::DrrQueue;
use crate::spool::{Spool, SpoolRecord};

/// Daemon configuration (see `incdx-serve --help` for the flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (reported by
    /// [`Server::port`] and the ready line).
    pub addr: String,
    /// Spool directory for durable job records.
    pub spool_dir: PathBuf,
    /// Worker threads running engine slices.
    pub workers: usize,
    /// DRR quantum: decision-tree nodes credited per scheduling round.
    pub quantum: u64,
    /// Admission cap: pending (queued + waiting) jobs beyond this are
    /// rejected with typed backpressure.
    pub max_queue: usize,
    /// Chaos injection for the spool's checkpoint writes (tests only).
    pub chaos: Option<ChaosConfig>,
    /// Requeue interrupted jobs recovered from the spool immediately
    /// (`false` leaves them parked until a `resume` request).
    pub auto_resume: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            spool_dir: PathBuf::from("incdx-spool"),
            workers: 2,
            quantum: 400,
            max_queue: 64,
            chaos: None,
            auto_resume: true,
        }
    }
}

/// One job's full daemon-side state.
struct Job {
    id: u64,
    tenant: String,
    spec: JobSpec,
    state: JobState,
    cancel: CancelToken,
    /// Decision-tree nodes spent across all slices so far.
    nodes: u64,
    /// Slices executed (including the failed/final one).
    slices: u64,
    /// Base-netlist fingerprint once the workload has been built (0
    /// before the first slice; recovered records carry the pinned one).
    fingerprint: u64,
    /// Latest engine checkpoint (present between slices).
    checkpoint: Option<Checkpoint>,
    /// Terminal summary, once terminal.
    outcome: Option<JobOutcome>,
    /// Spool write-backs that needed the corruption-repair path.
    repairs: u64,
    /// Absolute deadline derived from the spec's `deadline_ms` at
    /// admission (re-derived on crash recovery).
    deadline: Option<Instant>,
    /// Live `subscribe` streams; dropped after the terminal event.
    subscribers: Vec<mpsc::Sender<Event>>,
}

/// One event line queued to a subscriber; `terminal` closes the stream.
struct Event {
    line: String,
    terminal: bool,
}

/// How a worker's slice ended, before the job table is updated.
enum SliceEnd {
    /// The spec deterministically produces no failing behaviour.
    NoFailing,
    /// The engine ran (any verdict, with or without a checkpoint).
    Ran {
        /// The slice's result.
        result: Box<RectifyResult>,
        /// Base-netlist fingerprint from the interned workload.
        fingerprint: u64,
    },
    /// The job's wall-clock deadline elapsed before the slice started.
    JobDeadline,
    /// The rebuilt workload's netlist fingerprint disagrees with the
    /// one pinned in the spool record — the record describes a
    /// different circuit than the checkpoint it carries (bit rot, a
    /// generator change, or a hand-edited spool). The record is
    /// quarantined, never resumed.
    FingerprintMismatch {
        /// Fingerprint pinned at admission.
        expected: u64,
        /// Fingerprint of the freshly rebuilt workload.
        got: u64,
    },
    /// Workload construction or engine setup failed.
    Failed(String),
    /// The slice panicked; the payload was caught at the sanctioned
    /// boundary.
    Panicked(String),
}

/// Everything a worker needs to run one slice without holding the lock.
struct SlicePlan {
    id: u64,
    budget: u64,
    spec: JobSpec,
    checkpoint: Option<Checkpoint>,
    cancel: CancelToken,
    label: String,
    deadline: Option<Instant>,
    /// Fingerprint pinned in the job's spool record (0 = first slice,
    /// nothing pinned yet); the resume-time recovery guard.
    fingerprint: u64,
}

/// Mutex-guarded scheduler state: the job table and the fair-share
/// ring live under one lock so admission, preemption, and cancellation
/// see a consistent picture.
struct Inner {
    jobs: HashMap<u64, Job>,
    queue: DrrQueue,
    next_id: u64,
}

/// Shared daemon state.
pub struct ServerState {
    cfg: ServeConfig,
    inner: Mutex<Inner>,
    cond: Condvar,
    intern: Intern,
    spool: Spool,
    shutdown: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    panics_isolated: AtomicU64,
    checkpoint_repairs: AtomicU64,
    recovered: u64,
    quarantined: AtomicU64,
}

/// A running daemon: owns the listener port and the worker/acceptor
/// threads. Drive it with [`Server::stop`] + [`Server::join`].
pub struct Server {
    state: Arc<ServerState>,
    port: u16,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers the spool, and starts the worker pool and accept
    /// loop.
    ///
    /// # Errors
    ///
    /// A description of the bind or spool failure.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let chaos = cfg.chaos.map(ChaosState::new);
        let spool = Spool::open(&cfg.spool_dir, chaos)?;
        let scan = spool.scan();
        let quarantined = scan.quarantined.len() as u64;
        let mut jobs = HashMap::new();
        let mut queue = DrrQueue::new(cfg.quantum);
        let mut next_id = 1u64;
        let mut recovered = 0u64;
        for rec in scan.records {
            next_id = next_id.max(rec.id + 1);
            let interrupted = !rec.state.terminal();
            let state = if !interrupted {
                rec.state
            } else if cfg.auto_resume {
                queue.enqueue(rec.id);
                JobState::Queued
            } else {
                JobState::Interrupted
            };
            if interrupted {
                recovered += 1;
            }
            let deadline = rec.spec.deadline_ms.and_then(millis_from_now);
            jobs.insert(
                rec.id,
                Job {
                    id: rec.id,
                    tenant: rec.tenant,
                    spec: rec.spec,
                    state,
                    cancel: CancelToken::new(),
                    nodes: rec.nodes,
                    slices: rec.slices,
                    fingerprint: rec.fingerprint,
                    checkpoint: rec.checkpoint,
                    outcome: rec.outcome,
                    repairs: rec.repairs,
                    deadline,
                    subscribers: Vec::new(),
                },
            );
        }
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let port = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?
            .port();
        let workers = cfg.workers.max(1);
        let state = Arc::new(ServerState {
            cfg,
            inner: Mutex::new(Inner {
                jobs,
                queue,
                next_id,
            }),
            cond: Condvar::new(),
            intern: Intern::new(),
            spool,
            shutdown: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            panics_isolated: AtomicU64::new(0),
            checkpoint_repairs: AtomicU64::new(0),
            recovered,
            quarantined: AtomicU64::new(quarantined),
        });
        let mut threads = Vec::new();
        for _ in 0..workers {
            let st = Arc::clone(&state);
            threads.push(std::thread::spawn(move || worker_loop(&st)));
        }
        {
            let st = Arc::clone(&state);
            threads.push(std::thread::spawn(move || accept_loop(&st, &listener)));
        }
        Ok(Server {
            state,
            port,
            threads,
        })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Non-terminal jobs recovered from the spool at startup.
    pub fn recovered(&self) -> u64 {
        self.state.recovered
    }

    /// Spool files quarantined: unreadable ones at startup, plus
    /// records failing the fingerprint guard at resume time.
    pub fn quarantined(&self) -> u64 {
        self.state.quarantined.load(Ordering::Relaxed)
    }

    /// Requests a graceful stop: in-flight slices finish and spool
    /// their checkpoints, then every thread exits.
    pub fn stop(&self) {
        self.state.begin_shutdown(self.port);
    }

    /// Waits for every daemon thread to exit (call [`Server::stop`] or
    /// send a `shutdown` request first).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

impl ServerState {
    fn begin_shutdown(&self, port: u16) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cond.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(("127.0.0.1", port));
    }
}

/// Locks a mutex, riding through poisoning — a panicking slice must
/// never take the scheduler down (the job table stays coherent because
/// every transition completes under the lock).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Condvar wait with the same poison-riding policy.
fn wait<'a, T>(cond: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cond.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn millis_from_now(ms: u64) -> Option<Instant> {
    Instant::now().checked_add(Duration::from_millis(ms))
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let plan = {
            let mut inner = lock(&state.inner);
            'pick: loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                while let Some((id, budget)) = inner.queue.pop() {
                    let Some(job) = inner.jobs.get_mut(&id) else {
                        continue;
                    };
                    if job.state.terminal() {
                        continue;
                    }
                    job.state = JobState::Running;
                    break 'pick SlicePlan {
                        id,
                        budget,
                        spec: job.spec.clone(),
                        checkpoint: job.checkpoint.clone(),
                        cancel: job.cancel.clone(),
                        label: format!("serve/job-{id}"),
                        deadline: job.deadline,
                        fingerprint: job.fingerprint,
                    };
                }
                inner = wait(&state.cond, inner);
            }
        };
        let id = plan.id;
        let budget = plan.budget;
        let end = if plan.deadline.is_some_and(|d| Instant::now() >= d) {
            SliceEnd::JobDeadline
        } else {
            run_isolated(|| run_slice(state, &plan))
        };
        apply_slice(state, id, budget, end);
    }
}

/// The crate's one sanctioned panic-isolation boundary: runs `slice`
/// under `catch_unwind`, converting a panic into
/// [`SliceEnd::Panicked`] so the job fails alone with a typed outcome
/// while every other job, the artifact store, and the accept loop keep
/// going.
fn run_isolated(slice: impl FnOnce() -> Result<SliceEnd, String>) -> SliceEnd {
    match catch_unwind(AssertUnwindSafe(slice)) {
        Ok(Ok(end)) => end,
        Ok(Err(msg)) => SliceEnd::Failed(msg),
        Err(payload) => SliceEnd::Panicked(panic_text(payload)),
    }
}

/// Runs one engine slice against the interned workload. Never touches
/// the scheduler lock.
fn run_slice(state: &ServerState, plan: &SlicePlan) -> Result<SliceEnd, String> {
    let workload = match state.intern.workload(&plan.spec)? {
        Interned::Ready(w) => w,
        Interned::NoFailingBehaviour => return Ok(SliceEnd::NoFailing),
    };
    // Recovery guard: a spool record that parses fine can still pin a
    // checkpoint against a circuit the spec no longer rebuilds.
    if plan.fingerprint != 0 && plan.fingerprint != workload.fingerprint {
        return Ok(SliceEnd::FingerprintMismatch {
            expected: plan.fingerprint,
            got: workload.fingerprint,
        });
    }
    let mut config = plan.spec.rectify_config();
    config.limits.max_total_nodes = Some(plan.budget);
    if let Some(deadline) = plan.deadline {
        config.limits.deadline = Some(deadline.saturating_duration_since(Instant::now()));
    }
    let mut engine = Rectifier::new(
        workload.base.clone(),
        workload.pi.clone(),
        workload.resp.clone(),
        config,
    )
    .map_err(|e| e.to_string())?;
    if let Some(cones) = state.intern.cones(workload.fingerprint) {
        engine = engine.with_base_cones(cones).map_err(|e| e.to_string())?;
    }
    engine.set_cancel_token(plan.cancel.clone());
    engine.set_checkpoint_meta(&plan.label, plan.spec.seed);
    let result = match &plan.checkpoint {
        Some(ckpt) => engine.resume(ckpt).map_err(|e| e.to_string())?,
        None => engine.run(),
    };
    state
        .intern
        .deposit_cones(workload.fingerprint, engine.base_cones().clone());
    Ok(SliceEnd::Ran {
        result: Box::new(result),
        fingerprint: workload.fingerprint,
    })
}

/// Applies a finished slice to the job table: requeue or finalize,
/// spool the new record, and fan events out to subscribers.
fn apply_slice(state: &ServerState, id: u64, budget: u64, end: SliceEnd) {
    let mut inner = lock(&state.inner);
    let Some(job) = inner.jobs.get_mut(&id) else {
        return;
    };
    job.slices += 1;
    let mut events: Vec<Event> = Vec::new();
    let mut terminal: Option<(JobState, JobOutcome)> = None;
    let mut requeue_unspent: Option<u64> = None;
    match end {
        SliceEnd::NoFailing => {
            terminal = Some((
                JobState::Done,
                JobOutcome {
                    verdict: "no-failing".to_string(),
                    solutions_fp: solution_fingerprint(&[]),
                    detail: "spec produces no failing behaviour".to_string(),
                    ..JobOutcome::default()
                },
            ));
        }
        SliceEnd::JobDeadline => {
            terminal = Some((
                JobState::Done,
                JobOutcome {
                    verdict: "deadline-exceeded".to_string(),
                    solutions_fp: solution_fingerprint(&[]),
                    detail: "job deadline elapsed before the slice started".to_string(),
                    ..JobOutcome::default()
                },
            ));
        }
        SliceEnd::FingerprintMismatch { expected, got } => {
            // The stale record (with its untrustworthy checkpoint) is
            // moved aside as evidence; the job fails with a typed
            // outcome and a fresh terminal record.
            let name = state.spool.quarantine(id);
            state.quarantined.fetch_add(1, Ordering::Relaxed);
            job.checkpoint = None;
            terminal = Some((
                JobState::Failed,
                JobOutcome {
                    verdict: "error".to_string(),
                    solutions_fp: solution_fingerprint(&[]),
                    detail: format!(
                        "netlist fingerprint mismatch on resume: record pins {expected:#018x}, \
                         rebuilt workload is {got:#018x}; record quarantined as {name}"
                    ),
                    ..JobOutcome::default()
                },
            ));
        }
        SliceEnd::Failed(msg) => {
            terminal = Some((
                JobState::Failed,
                JobOutcome {
                    verdict: "error".to_string(),
                    solutions_fp: solution_fingerprint(&[]),
                    detail: msg,
                    ..JobOutcome::default()
                },
            ));
        }
        SliceEnd::Panicked(msg) => {
            state.panics_isolated.fetch_add(1, Ordering::Relaxed);
            terminal = Some((
                JobState::Failed,
                JobOutcome {
                    verdict: "error".to_string(),
                    solutions_fp: solution_fingerprint(&[]),
                    detail: format!("slice panic isolated: {msg}"),
                    ..JobOutcome::default()
                },
            ));
        }
        SliceEnd::Ran {
            result,
            fingerprint,
        } => {
            let spent = result.stats.nodes as u64;
            job.nodes += spent;
            job.fingerprint = fingerprint;
            for d in &result.stats.degradations {
                events.push(degradation_event(id, d));
            }
            let outcome = JobOutcome {
                verdict: result.verdict.tag().to_string(),
                solutions: result.solutions.len(),
                sites: result.distinct_sites(),
                solutions_fp: solution_fingerprint(&result.solutions),
                detail: String::new(),
            };
            let cap_hit = job.spec.max_nodes.is_some_and(|m| job.nodes >= m);
            match (&result.checkpoint, &result.verdict) {
                (Some(_), Verdict::Cancelled) => {
                    terminal = Some((JobState::Cancelled, outcome));
                }
                (Some(_), Verdict::DeadlineExceeded) => {
                    terminal = Some((JobState::Done, outcome));
                }
                (Some(ckpt), _) if !cap_hit => {
                    job.checkpoint = Some(ckpt.clone());
                    job.state = JobState::Waiting;
                    requeue_unspent = Some(budget.saturating_sub(spent));
                    events.push(Event {
                        line: format!(
                            "{{\"event\":\"progress\",\"job\":{id},\"state\":\"waiting\",\"nodes\":{},\"slices\":{}}}",
                            job.nodes, job.slices
                        ),
                        terminal: false,
                    });
                }
                (Some(_), _) => {
                    // The job-level node cap landed mid-search: report
                    // the budget verdict even if the slice stopped for
                    // its per-slice reason.
                    let mut outcome = outcome;
                    outcome.verdict = Verdict::BudgetExhausted.tag().to_string();
                    terminal = Some((JobState::Done, outcome));
                }
                (None, _) => {
                    terminal = Some((JobState::Done, outcome));
                }
            }
        }
    }
    if let Some((final_state, outcome)) = terminal {
        job.state = final_state;
        job.outcome = Some(outcome);
        inner.queue.finish(id);
        state.completed.fetch_add(1, Ordering::Relaxed);
    }
    write_spool_and_emit(state, &mut inner, id, events);
    if let Some(unspent) = requeue_unspent {
        inner.queue.requeue(id, unspent);
        drop(inner);
        state.cond.notify_one();
    }
}

/// Rewrites `id`'s spool record, folds any repair degradation into the
/// job and daemon counters, then flushes `events` (plus the terminal
/// verdict event, if the job just finished) to subscribers.
fn write_spool_and_emit(state: &ServerState, inner: &mut Inner, id: u64, mut events: Vec<Event>) {
    let Some(job) = inner.jobs.get_mut(&id) else {
        return;
    };
    match state.spool.write(&record_of(job)) {
        Ok(Some(repair)) => {
            job.repairs += 1;
            state.checkpoint_repairs.fetch_add(1, Ordering::Relaxed);
            events.push(degradation_event(id, &repair));
        }
        Ok(None) => {}
        Err(msg) => {
            events.push(Event {
                line: format!(
                    "{{\"event\":\"degradation\",\"job\":{id},\"kind\":\"checkpoint-io\",\"detail\":\"{}\"}}",
                    escape_json(&msg)
                ),
                terminal: false,
            });
        }
    }
    if job.state.terminal() {
        events.push(Event {
            line: verdict_line(job),
            terminal: true,
        });
    }
    let terminal = job.state.terminal();
    if job.subscribers.is_empty() {
        return;
    }
    let mut subscribers = std::mem::take(&mut job.subscribers);
    for event in &events {
        subscribers.retain(|tx| {
            tx.send(Event {
                line: event.line.clone(),
                terminal: event.terminal,
            })
            .is_ok()
        });
    }
    if !terminal {
        job.subscribers = subscribers;
    }
}

fn degradation_event(id: u64, d: &DegradationEvent) -> Event {
    Event {
        line: format!(
            "{{\"event\":\"degradation\",\"job\":{id},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            d.kind.tag(),
            escape_json(&d.detail)
        ),
        terminal: false,
    }
}

/// The terminal `verdict` event line for a finished job.
fn verdict_line(job: &Job) -> String {
    let outcome = job.outcome.clone().unwrap_or_default();
    format!(
        "{{\"event\":\"verdict\",\"job\":{},\"state\":\"{}\",\"verdict\":\"{}\",\"solutions\":{},\"sites\":{},\"solutions_fp\":{},\"nodes\":{},\"slices\":{},\"repairs\":{},\"detail\":\"{}\"}}",
        job.id,
        job.state.tag(),
        outcome.verdict,
        outcome.solutions,
        outcome.sites,
        outcome.solutions_fp,
        job.nodes,
        job.slices,
        job.repairs,
        escape_json(&outcome.detail)
    )
}

fn record_of(job: &Job) -> SpoolRecord {
    SpoolRecord {
        id: job.id,
        tenant: job.tenant.clone(),
        spec: job.spec.clone(),
        state: job.state.clone(),
        nodes: job.nodes,
        slices: job.slices,
        fingerprint: job.fingerprint,
        checkpoint: job.checkpoint.clone(),
        outcome: job.outcome.clone(),
        repairs: job.repairs,
    }
}

// ---------------------------------------------------------------------
// Accept loop and request handling
// ---------------------------------------------------------------------

fn accept_loop(state: &Arc<ServerState>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let st = Arc::clone(state);
                std::thread::spawn(move || handle_client(&st, stream));
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn handle_client(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = match Request::parse(trimmed) {
            Err(detail) => reject(RejectCode::BadRequest, &detail),
            Ok(Request::Submit { tenant, spec }) => submit(state, tenant, spec),
            Ok(Request::Status { job }) => status(state, job),
            Ok(Request::Cancel { job }) => cancel(state, job),
            Ok(Request::Resume { job }) => resume(state, job),
            Ok(Request::Stats) => stats(state),
            Ok(Request::Subscribe { job }) => {
                subscribe(state, job, &mut write_half);
                continue;
            }
            Ok(Request::Shutdown) => {
                let _ = write_half.write_all(b"{\"ok\":true,\"shutdown\":true}\n");
                let _ = write_half.flush();
                let port = match write_half.local_addr() {
                    Ok(addr) => addr.port(),
                    Err(_) => 0,
                };
                state.begin_shutdown(port);
                return;
            }
        };
        if write_half
            .write_all(format!("{reply}\n").as_bytes())
            .is_err()
        {
            return;
        }
        let _ = write_half.flush();
    }
}

fn submit(state: &ServerState, tenant: String, spec: JobSpec) -> String {
    let mut inner = lock(&state.inner);
    let pending = inner.queue.len();
    if pending >= state.cfg.max_queue {
        state.rejected.fetch_add(1, Ordering::Relaxed);
        // Depth-proportional hint: deeper queue, longer wait.
        let retry = ((pending as u64).saturating_mul(25)).clamp(50, 5000);
        return reject_queue_full(pending, retry);
    }
    let id = inner.next_id;
    inner.next_id += 1;
    let deadline = spec.deadline_ms.and_then(millis_from_now);
    let job = Job {
        id,
        tenant,
        spec,
        state: JobState::Queued,
        cancel: CancelToken::new(),
        nodes: 0,
        slices: 0,
        fingerprint: 0,
        checkpoint: None,
        outcome: None,
        repairs: 0,
        deadline,
        subscribers: Vec::new(),
    };
    // Spool before admitting to the ring: a crash immediately after
    // this write recovers the job; a crash immediately before loses a
    // job the client never saw acknowledged.
    if let Err(msg) = state.spool.write(&record_of(&job)) {
        return reject(
            RejectCode::BadRequest,
            &format!("spool write failed: {msg}"),
        );
    }
    inner.jobs.insert(id, job);
    inner.queue.enqueue(id);
    state.submitted.fetch_add(1, Ordering::Relaxed);
    drop(inner);
    state.cond.notify_one();
    format!("{{\"ok\":true,\"job\":{id}}}")
}

fn status(state: &ServerState, id: u64) -> String {
    let inner = lock(&state.inner);
    let Some(job) = inner.jobs.get(&id) else {
        return reject(RejectCode::UnknownJob, &format!("no job {id}"));
    };
    let mut out = format!(
        "{{\"ok\":true,\"job\":{},\"tenant\":\"{}\",\"state\":\"{}\",\"nodes\":{},\"slices\":{},\"repairs\":{},\"fingerprint\":{}",
        job.id,
        escape_json(&job.tenant),
        job.state.tag(),
        job.nodes,
        job.slices,
        job.repairs,
        job.fingerprint
    );
    if let Some(outcome) = &job.outcome {
        out.push_str(&format!(
            ",\"verdict\":\"{}\",\"solutions\":{},\"sites\":{},\"solutions_fp\":{},\"detail\":\"{}\"",
            outcome.verdict,
            outcome.solutions,
            outcome.sites,
            outcome.solutions_fp,
            escape_json(&outcome.detail)
        ));
    }
    out.push('}');
    out
}

fn cancel(state: &ServerState, id: u64) -> String {
    let mut inner = lock(&state.inner);
    let Some(job) = inner.jobs.get_mut(&id) else {
        return reject(RejectCode::UnknownJob, &format!("no job {id}"));
    };
    job.cancel.cancel();
    match job.state {
        JobState::Queued | JobState::Waiting | JobState::Interrupted => {
            // Not on a worker: finalize immediately.
            job.state = JobState::Cancelled;
            job.outcome = Some(JobOutcome {
                verdict: "cancelled".to_string(),
                solutions_fp: solution_fingerprint(&[]),
                detail: "cancelled before completion".to_string(),
                ..JobOutcome::default()
            });
            inner.queue.finish(id);
            state.completed.fetch_add(1, Ordering::Relaxed);
            write_spool_and_emit(state, &mut inner, id, Vec::new());
        }
        // Running: the engine observes the token at its next poll and
        // the slice finalizes the job; terminal states are a no-op.
        _ => {}
    }
    let tag = inner.jobs.get(&id).map_or("cancelled", |j| j.state.tag());
    format!("{{\"ok\":true,\"job\":{id},\"state\":\"{tag}\"}}")
}

fn resume(state: &ServerState, id: u64) -> String {
    let mut inner = lock(&state.inner);
    let Some(job) = inner.jobs.get_mut(&id) else {
        return reject(RejectCode::UnknownJob, &format!("no job {id}"));
    };
    if job.state != JobState::Interrupted {
        return reject(
            RejectCode::BadState,
            &format!("job {id} is {}, not interrupted", job.state.tag()),
        );
    }
    job.state = JobState::Queued;
    inner.queue.enqueue(id);
    drop(inner);
    state.cond.notify_one();
    format!("{{\"ok\":true,\"job\":{id},\"state\":\"queued\"}}")
}

fn stats(state: &ServerState) -> String {
    let inner = lock(&state.inner);
    let mut counts = [0usize; 7];
    for job in inner.jobs.values() {
        let slot = match job.state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Waiting => 2,
            JobState::Interrupted => 3,
            JobState::Done => 4,
            JobState::Cancelled => 5,
            JobState::Failed => 6,
        };
        counts[slot] += 1;
    }
    let depth = inner.queue.len();
    let total = inner.jobs.len();
    drop(inner);
    let intern = state.intern.stats();
    // Basis points keep the wire format inside the integer-only JSON
    // subset.
    let hit_rate_bp = (intern.hit_rate() * 10_000.0).round() as u64;
    format!(
        "{{\"ok\":true,\"queue_depth\":{depth},\"jobs\":{{\"total\":{total},\"queued\":{},\"running\":{},\"waiting\":{},\"interrupted\":{},\"done\":{},\"cancelled\":{},\"failed\":{}}},\"intern\":{{\"hits\":{},\"misses\":{},\"cone_hits\":{},\"hit_rate_bp\":{hit_rate_bp}}},\"submitted\":{},\"completed\":{},\"rejected\":{},\"panics_isolated\":{},\"checkpoint_repairs\":{},\"recovered\":{},\"quarantined\":{}}}",
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        counts[5],
        counts[6],
        intern.hits,
        intern.misses,
        intern.cone_hits,
        state.submitted.load(Ordering::Relaxed),
        state.completed.load(Ordering::Relaxed),
        state.rejected.load(Ordering::Relaxed),
        state.panics_isolated.load(Ordering::Relaxed),
        state.checkpoint_repairs.load(Ordering::Relaxed),
        state.recovered,
        state.quarantined.load(Ordering::Relaxed)
    )
}

/// Acknowledges, then streams the job's events until its terminal
/// verdict. Already-terminal jobs get their verdict line immediately.
fn subscribe(state: &ServerState, id: u64, out: &mut TcpStream) {
    let rx = {
        let mut inner = lock(&state.inner);
        let Some(job) = inner.jobs.get_mut(&id) else {
            let _ = out.write_all(
                format!(
                    "{}\n",
                    reject(RejectCode::UnknownJob, &format!("no job {id}"))
                )
                .as_bytes(),
            );
            return;
        };
        if job.state.terminal() {
            let line = verdict_line(job);
            let _ = out.write_all(
                format!("{{\"ok\":true,\"job\":{id},\"subscribed\":true}}\n{line}\n").as_bytes(),
            );
            let _ = out.flush();
            return;
        }
        let (tx, rx) = mpsc::channel();
        job.subscribers.push(tx);
        rx
    };
    if out
        .write_all(format!("{{\"ok\":true,\"job\":{id},\"subscribed\":true}}\n").as_bytes())
        .is_err()
    {
        return;
    }
    let _ = out.flush();
    for event in rx {
        if out
            .write_all(format!("{}\n", event.line).as_bytes())
            .is_err()
        {
            return;
        }
        let _ = out.flush();
        if event.terminal {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_isolation_boundary_converts_panics_to_typed_ends() {
        match run_isolated(|| panic!("slice blew up")) {
            SliceEnd::Panicked(msg) => assert_eq!(msg, "slice blew up"),
            _ => panic!("a panic must surface as SliceEnd::Panicked"),
        }
        match run_isolated(|| Err("no such circuit".to_string())) {
            SliceEnd::Failed(msg) => assert_eq!(msg, "no such circuit"),
            _ => panic!("an error must surface as SliceEnd::Failed"),
        }
        match run_isolated(|| Ok(SliceEnd::NoFailing)) {
            SliceEnd::NoFailing => {}
            _ => panic!("a clean slice must pass through"),
        }
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.quantum >= 1);
        assert!(cfg.max_queue >= 1);
        assert!(cfg.auto_resume);
    }
}
