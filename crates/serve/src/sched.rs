//! Deficit-round-robin fair-share scheduling over node budgets.
//!
//! Jobs are time-sliced at checkpoint boundaries: a slice runs the
//! engine with `max_total_nodes` set to the job's current budget, and
//! the lossless checkpoint/resume contract (PR 5) guarantees the
//! stitched-together slices reach a solution set bit-identical to one
//! uninterrupted run. The *fair-share* part is classic DRR with
//! decision-tree nodes as the currency instead of packet bytes: every
//! trip through the ring credits a job one quantum of nodes, unspent
//! credit carries over (capped, so an idle-rich job cannot hoard), and
//! the credit is what the next slice may spend. A flood of small jobs
//! therefore cannot starve a giant one — the giant job keeps receiving
//! its quantum every round — and the giant job cannot starve the small
//! ones, because it is preempted at its slice boundary like everyone
//! else.

use std::collections::{HashMap, VecDeque};

/// How many unspent quanta a job may bank. Bounds the burst a job can
/// run after waiting behind expensive neighbours.
const MAX_BANKED_QUANTA: u64 = 4;

/// The fair-share ring. Not thread-safe by itself — the daemon guards
/// it with the scheduler mutex alongside the job table.
#[derive(Debug)]
pub struct DrrQueue {
    ring: VecDeque<u64>,
    deficits: HashMap<u64, u64>,
    quantum: u64,
}

impl DrrQueue {
    /// A new ring crediting `quantum` nodes per round (clamped to ≥ 1).
    pub fn new(quantum: u64) -> DrrQueue {
        DrrQueue {
            ring: VecDeque::new(),
            deficits: HashMap::new(),
            quantum: quantum.max(1),
        }
    }

    /// The per-round node credit.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Jobs waiting in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Admits a job at the tail with no banked credit.
    pub fn enqueue(&mut self, id: u64) {
        self.deficits.entry(id).or_insert(0);
        self.ring.push_back(id);
    }

    /// Takes the next job and its slice budget: banked credit plus one
    /// fresh quantum.
    pub fn pop(&mut self) -> Option<(u64, u64)> {
        let id = self.ring.pop_front()?;
        let banked = self.deficits.remove(&id).unwrap_or(0);
        Some((id, banked + self.quantum))
    }

    /// Returns a preempted job to the tail, banking whatever part of
    /// its slice budget the engine did not spend (capped at
    /// `MAX_BANKED_QUANTA` quanta).
    pub fn requeue(&mut self, id: u64, unspent: u64) {
        self.deficits
            .insert(id, unspent.min(MAX_BANKED_QUANTA * self.quantum));
        self.ring.push_back(id);
    }

    /// Forgets a finished or cancelled job's credit.
    pub fn finish(&mut self, id: u64) {
        self.deficits.remove(&id);
        self.ring.retain(|&j| j != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order_and_fresh_quantum() {
        let mut q = DrrQueue::new(100);
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.pop(), Some((1, 100)));
        assert_eq!(q.pop(), Some((2, 100)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn unspent_credit_carries_over_capped() {
        let mut q = DrrQueue::new(100);
        q.enqueue(1);
        let (id, slice) = q.pop().unwrap();
        // The engine stopped after 30 of the 100 budgeted nodes
        // (e.g. a solution landed early in the slice).
        q.requeue(id, slice - 30);
        assert_eq!(q.pop(), Some((1, 170)), "70 banked + 100 fresh");
        // Banked credit is bounded: requeueing with an absurd remainder
        // clamps to MAX_BANKED_QUANTA quanta.
        q.requeue(1, u64::MAX);
        assert_eq!(q.pop(), Some((1, 500)), "400 cap + 100 fresh");
    }

    #[test]
    fn flood_of_small_jobs_cannot_starve_a_giant_one() {
        // 1 giant job (never finishes in a slice) vs 50 small ones that
        // are re-admitted forever. Over any window, the giant job's
        // node allocation stays at its fair 1/51 share of rounds —
        // i.e. it is scheduled once per round, every round.
        let mut q = DrrQueue::new(10);
        q.enqueue(0); // giant
        for id in 1..=50 {
            q.enqueue(id);
        }
        let mut giant_slices = 0u64;
        let mut pops = 0u64;
        for _ in 0..51 * 20 {
            let (id, slice) = q.pop().unwrap();
            pops += 1;
            if id == 0 {
                giant_slices += 1;
                q.requeue(id, 0); // giant spends everything
            } else {
                q.requeue(id, slice / 2); // small jobs underspend
            }
        }
        assert_eq!(giant_slices, pops / 51, "exactly one slice per round");
    }

    #[test]
    fn finish_forgets_credit_and_removes_from_ring() {
        let mut q = DrrQueue::new(10);
        q.enqueue(1);
        q.enqueue(2);
        q.finish(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((2, 10)));
        // Re-admitting a finished job starts with a clean slate.
        q.enqueue(1);
        assert_eq!(q.pop(), Some((1, 10)));
    }

    #[test]
    fn zero_quantum_is_clamped() {
        let mut q = DrrQueue::new(0);
        q.enqueue(9);
        let (_, slice) = q.pop().unwrap();
        assert!(slice >= 1, "a slice must always make progress");
    }
}
