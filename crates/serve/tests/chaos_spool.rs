//! Property test for the checkpoint-I/O chaos site: every injected
//! spool tear is detected by the write-then-read-back validation,
//! repaired from memory, and reported as exactly one
//! `checkpoint-repair` degradation — 1:1 fault-to-degradation
//! accounting at any rate and seed, with the spool left fully
//! readable afterwards.

use std::path::PathBuf;
use std::sync::Arc;

use incdx_core::{ChaosConfig, ChaosState, Checkpoint, DegradationKind, CHECKPOINT_VERSION};
use incdx_serve::job::{JobSpec, JobState, Model, Source};
use incdx_serve::spool::{Spool, SpoolRecord};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("chaos-prop-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn record(id: u64, with_checkpoint: bool) -> SpoolRecord {
    SpoolRecord {
        id,
        tenant: format!("tenant-{}", id % 3),
        spec: JobSpec {
            source: Source::Suite("c432a".to_string()),
            model: if id.is_multiple_of(2) {
                Model::Dedc
            } else {
                Model::StuckAt
            },
            k: 1 + (id as usize % 2),
            vectors: 64,
            seed: id,
            max_nodes: None,
            deadline_ms: None,
        },
        state: JobState::Waiting,
        nodes: id * 17,
        slices: id % 5,
        fingerprint: id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        checkpoint: with_checkpoint.then(|| Checkpoint {
            version: CHECKPOINT_VERSION,
            label: format!("serve/job-{id}"),
            trial_seed: id,
            vectors: 64,
            base_gates: 200,
            base_hash: id,
            level: 0,
            phase: 0,
            iterations: 3,
            plan: vec![],
            plan_pos: 0,
            nodes: vec![],
            visited: vec![],
            solutions: vec![],
        }),
        outcome: None,
        repairs: id % 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 1:1 accounting: repairs reported by `Spool::write` == tears the
    /// chaos stream injected, for any seed/rate/write-mix; and the
    /// spool stays fully recoverable (every record parses, nothing is
    /// quarantined) because every tear was repaired in place.
    #[test]
    fn spool_repairs_match_injected_tears_one_to_one(
        seed in 0u64..1000,
        rate in 0.0f64..=1.0,
        writes in 1u64..24,
    ) {
        let dir = tmpdir(&format!("{seed}-{writes}-{}", (rate * 1000.0) as u32));
        let chaos = ChaosState::new(ChaosConfig { seed, rate });
        let spool = Spool::open(&dir, Some(Arc::clone(&chaos))).unwrap();
        let mut repairs = 0u64;
        for i in 0..writes {
            // Mix rewrites of the same id with fresh ids, with and
            // without embedded checkpoints.
            let rec = record(i % 7, i % 3 != 0);
            if let Some(event) = spool.write(&rec).unwrap() {
                prop_assert_eq!(event.kind, DegradationKind::CheckpointRepair);
                repairs += event.count;
            }
        }
        let injected = chaos.summary().checkpoint_corruptions;
        prop_assert_eq!(repairs, injected, "every tear repaired, every repair a tear");
        let report = spool.scan();
        prop_assert!(report.quarantined.is_empty(), "repairs must leave no torn files");
        for rec in &report.records {
            // Read-back parses to exactly the last clean write.
            prop_assert_eq!(rec, &record(rec.id, rec.checkpoint.is_some()));
        }
        if rate == 0.0 {
            prop_assert_eq!(injected, 0, "rate 0 must never fire");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
