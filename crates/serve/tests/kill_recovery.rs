//! The headline robustness test: `kill -9` the daemon process mid-job,
//! restart it over the same spool, and assert the interrupted job
//! resumes to the solution set an uninterrupted run produces.
//!
//! This drives the real `incdx-serve` binary (not an in-process
//! server), so the recovery path exercised is exactly the production
//! one: torn-write-safe spool records on disk, a new process, a cold
//! intern cache, and checkpoint resume across an abrupt SIGKILL.

mod common;

use std::io::{BufRead as _, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use common::{
    giant_spec, giant_submit_line, is_terminal, reference_outcome, spool_dir, state_of, Client,
};
use incdx_core::json;

/// A daemon child process plus its parsed ready line.
struct Daemon {
    child: Child,
    port: u16,
    recovered: u64,
}

fn spawn_daemon(spool: &std::path::Path, quantum: u64) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_incdx-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--spool",
            &spool.display().to_string(),
            "--workers",
            "1",
            "--quantum",
            &quantum.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn incdx-serve");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read ready line");
    let ready = json::parse(line.trim()).expect("ready line is JSON");
    assert_eq!(ready.get("serve").and_then(|v| v.as_str()), Ok("ready"));
    let addr = ready.get("addr").and_then(|v| v.as_str()).expect("addr");
    let port: u16 = addr
        .rsplit(':')
        .next()
        .and_then(|p| p.parse().ok())
        .expect("port in ready line");
    let recovered = ready.get("recovered").and_then(|v| v.as_u64()).unwrap();
    Daemon {
        child,
        port,
        recovered,
    }
}

#[test]
fn kill_minus_nine_mid_job_recovery_is_deterministic() {
    let spec = giant_spec();
    let (expected_fp, expected_verdict) = reference_outcome(&spec);
    let dir = spool_dir("kill9");

    // Phase 1: slice the giant job in a real daemon process, then
    // SIGKILL it mid-search (no shutdown handler runs, no flush — the
    // only survivor is what the atomic spool writes already made
    // durable).
    let daemon = spawn_daemon(&dir, 50);
    assert_eq!(daemon.recovered, 0);
    let mut client = Client::connect(daemon.port);
    let submit = client.request(&giant_submit_line("t"));
    assert_eq!(submit.get("ok").and_then(|v| v.as_bool()), Ok(true));
    let id = submit.get("job").and_then(|v| v.as_u64()).unwrap();
    client.wait_status(id, Duration::from_secs(120), |s| {
        s.get("slices").and_then(|v| v.as_u64()).unwrap() >= 2
    });
    let mid = client.request(&format!("{{\"req\":\"status\",\"job\":{id}}}"));
    assert!(!is_terminal(&mid), "must kill mid-search, not after");
    let mut child = daemon.child;
    child.kill().expect("SIGKILL the daemon");
    let _ = child.wait();

    // Phase 2: restart over the same spool. The ready line reports the
    // recovered job; auto-resume reruns it from its last durable
    // checkpoint to completion.
    let daemon = spawn_daemon(&dir, 50);
    assert_eq!(
        daemon.recovered, 1,
        "the interrupted job must be recovered from the spool"
    );
    let mut client = Client::connect(daemon.port);
    let s = client.wait_status(id, Duration::from_secs(300), is_terminal);
    assert_eq!(state_of(&s), "done");
    assert_eq!(
        s.get("verdict").and_then(|v| v.as_str()).unwrap(),
        expected_verdict
    );
    assert_eq!(
        s.get("solutions_fp").and_then(|v| v.as_u64()).unwrap(),
        expected_fp,
        "recovery must reach the uninterrupted run's exact solution set"
    );
    let stats = client.request("{\"req\":\"stats\"}");
    assert_eq!(stats.get("recovered").and_then(|v| v.as_u64()), Ok(1));

    // Graceful shutdown ends the process with exit code 0.
    let bye = client.request("{\"req\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(|v| v.as_bool()), Ok(true));
    let mut child = daemon.child;
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown must exit 0");
}
