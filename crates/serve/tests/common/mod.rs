//! Shared helpers for the daemon integration tests: a line-JSON TCP
//! client, unique spool directories under `target/tmp`, and the
//! uninterrupted-run reference fingerprint.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use incdx_core::json::{self, Json};
use incdx_core::Rectifier;
use incdx_serve::job::{build_workload, solution_fingerprint, BuiltWorkload, JobSpec};

/// A blocking line-JSON client for one daemon connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to the daemon on localhost.
    pub fn connect(port: u16) -> Client {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(300)))
            .expect("set read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    /// Sends one request line.
    pub fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
        self.writer.flush().expect("flush request");
    }

    /// Reads and parses one response/event line.
    pub fn recv(&mut self) -> Json {
        let line = self.recv_raw();
        json::parse(&line).unwrap_or_else(|e| panic!("bad line from daemon: {e}: {line}"))
    }

    /// Reads one raw line.
    pub fn recv_raw(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// One request/response round trip.
    pub fn request(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }

    /// Polls `status` until `pred` holds or `timeout` elapses; returns
    /// the matching status object.
    pub fn wait_status(
        &mut self,
        job: u64,
        timeout: Duration,
        pred: impl Fn(&Json) -> bool,
    ) -> Json {
        let deadline = Instant::now() + timeout;
        loop {
            let s = self.request(&format!("{{\"req\":\"status\",\"job\":{job}}}"));
            if pred(&s) {
                return s;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting on job {job}: {}",
                status_line(&s)
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Human-readable digest of a status object for assertion messages.
pub fn status_line(s: &Json) -> String {
    format!(
        "state={:?} slices={:?}",
        s.get_opt("state").and_then(|v| v.as_str().ok()),
        s.get_opt("slices").and_then(|v| v.as_u64().ok())
    )
}

/// The job's wire state tag, or a rejection's code.
pub fn state_of(s: &Json) -> String {
    s.get("state")
        .and_then(|v| v.as_str())
        .expect("status has state")
        .to_string()
}

/// True once the status object shows a terminal state.
pub fn is_terminal(s: &Json) -> bool {
    matches!(state_of(s).as_str(), "done" | "cancelled" | "failed")
}

/// A unique empty spool directory under `target/tmp`.
pub fn spool_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("spool-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");
    dir
}

/// A submit request line for a suite-circuit job.
pub fn submit_line(
    tenant: &str,
    circuit: &str,
    model: &str,
    k: usize,
    vectors: usize,
    seed: u64,
) -> String {
    format!(
        "{{\"req\":\"submit\",\"tenant\":\"{tenant}\",\"job\":{{\"circuit\":\"{circuit}\",\"model\":\"{model}\",\"k\":{k},\"vectors\":{vectors},\"seed\":{seed}}}}}"
    )
}

/// The giant multi-slice workload used by the preemption/recovery
/// tests: c432a under exhaustive double-stuck-at diagnosis runs a few
/// thousand decision-tree nodes, so a small DRR quantum dices it into
/// dozens of checkpointed slices.
pub fn giant_spec() -> JobSpec {
    JobSpec {
        source: incdx_serve::job::Source::Suite("c432a".to_string()),
        model: incdx_serve::job::Model::StuckAt,
        k: 2,
        vectors: 64,
        seed: 5,
        max_nodes: None,
        deadline_ms: None,
    }
}

/// The submit line matching [`giant_spec`].
pub fn giant_submit_line(tenant: &str) -> String {
    submit_line(tenant, "c432a", "stuck-at", 2, 64, 5)
}

/// Runs `spec` uninterrupted in-process and returns the solution-set
/// fingerprint plus the verdict tag — the determinism oracle for the
/// sliced/recovered daemon runs.
pub fn reference_outcome(spec: &JobSpec) -> (u64, String) {
    let workload = match build_workload(spec).expect("reference workload builds") {
        BuiltWorkload::Ready(w) => w,
        BuiltWorkload::NoFailingBehaviour => panic!("reference spec must produce failures"),
    };
    let mut engine = Rectifier::new(
        workload.base.clone(),
        workload.pi.clone(),
        workload.resp.clone(),
        spec.rectify_config(),
    )
    .expect("reference engine");
    let result = engine.run();
    (
        solution_fingerprint(&result.solutions),
        result.verdict.tag().to_string(),
    )
}
