//! In-process daemon integration tests: protocol round trips, artifact
//! interning, fair-share preemption, cancellation, typed backpressure,
//! spool quarantine, and graceful-interrupt recovery determinism.

mod common;

use std::time::Duration;

use common::{
    giant_spec, giant_submit_line, is_terminal, reference_outcome, spool_dir, state_of,
    submit_line, Client,
};
use incdx_serve::{ServeConfig, Server};

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("daemon starts")
}

fn submit_ok(client: &mut Client, line: &str) -> u64 {
    let r = client.request(line);
    assert_eq!(
        r.get("ok").and_then(|v| v.as_bool()),
        Ok(true),
        "submit accepted"
    );
    r.get("job").and_then(|v| v.as_u64()).expect("job id")
}

#[test]
fn small_jobs_complete_and_share_interned_artifacts() {
    let server = start(ServeConfig {
        spool_dir: spool_dir("small"),
        workers: 2,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.port());
    // Two identical tiny jobs: the second must hit the intern map.
    let a = submit_ok(&mut client, &submit_line("t1", "c17", "stuck-at", 1, 32, 1));
    let b = submit_ok(&mut client, &submit_line("t2", "c17", "stuck-at", 1, 32, 1));
    assert_ne!(a, b);
    let sa = client.wait_status(a, Duration::from_secs(60), is_terminal);
    let sb = client.wait_status(b, Duration::from_secs(60), is_terminal);
    for s in [&sa, &sb] {
        assert_eq!(state_of(s), "done");
        assert_eq!(s.get("verdict").and_then(|v| v.as_str()), Ok("exact"));
        assert!(s.get("solutions").and_then(|v| v.as_u64()).unwrap() >= 1);
    }
    // Identical specs reach identical solution fingerprints.
    assert_eq!(
        sa.get("solutions_fp").and_then(|v| v.as_u64()).unwrap(),
        sb.get("solutions_fp").and_then(|v| v.as_u64()).unwrap()
    );
    let stats = client.request("{\"req\":\"stats\"}");
    let intern = stats.get("intern").expect("stats has intern block");
    assert!(
        intern.get("hits").and_then(|v| v.as_u64()).unwrap() >= 1,
        "second job must be served from the intern map"
    );
    assert!(intern.get("hit_rate_bp").and_then(|v| v.as_u64()).unwrap() > 0);
    // Subscribing to an already-terminal job yields its verdict line
    // immediately.
    client.send(&format!("{{\"req\":\"subscribe\",\"job\":{a}}}"));
    let ack = client.recv();
    assert_eq!(ack.get("subscribed").and_then(|v| v.as_bool()), Ok(true));
    let verdict = client.recv();
    assert_eq!(verdict.get("event").and_then(|v| v.as_str()), Ok("verdict"));
    assert_eq!(verdict.get("state").and_then(|v| v.as_str()), Ok("done"));
    server.stop();
    server.join();
}

#[test]
fn fair_share_lets_small_jobs_through_while_a_giant_runs() {
    let server = start(ServeConfig {
        spool_dir: spool_dir("fair"),
        workers: 1,
        quantum: 50,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.port());
    let giant = submit_ok(&mut client, &giant_submit_line("big"));
    // Wait until the giant job is actually being sliced, then admit a
    // tiny job behind it.
    client.wait_status(giant, Duration::from_secs(60), |s| {
        s.get("slices").and_then(|v| v.as_u64()).unwrap() >= 1
    });
    let small = submit_ok(&mut client, &submit_line("small", "c17", "dedc", 1, 32, 1));
    let s = client.wait_status(small, Duration::from_secs(60), is_terminal);
    assert_eq!(state_of(&s), "done");
    // DRR preemption: the giant job must still be mid-flight when the
    // small one finishes — a FIFO scheduler would have starved it.
    let g = client.request(&format!("{{\"req\":\"status\",\"job\":{giant}}}"));
    assert!(
        !is_terminal(&g),
        "giant job should still be sliced, got {}",
        state_of(&g)
    );
    // A subscriber on the giant job sees progress events between
    // slices, then (after cancel) the terminal verdict event.
    let mut sub = Client::connect(server.port());
    sub.send(&format!("{{\"req\":\"subscribe\",\"job\":{giant}}}"));
    let ack = sub.recv();
    assert_eq!(ack.get("subscribed").and_then(|v| v.as_bool()), Ok(true));
    let first = sub.recv();
    assert_eq!(
        first.get("event").and_then(|v| v.as_str()).unwrap(),
        "progress",
        "multi-slice jobs emit progress events"
    );
    let c = client.request(&format!("{{\"req\":\"cancel\",\"job\":{giant}}}"));
    assert_eq!(c.get("ok").and_then(|v| v.as_bool()), Ok(true));
    loop {
        let ev = sub.recv();
        if ev.get("event").and_then(|v| v.as_str()).unwrap() == "verdict" {
            assert_eq!(ev.get("state").and_then(|v| v.as_str()), Ok("cancelled"));
            break;
        }
    }
    server.stop();
    server.join();
}

#[test]
fn admission_control_rejects_with_typed_backpressure() {
    let server = start(ServeConfig {
        spool_dir: spool_dir("backpressure"),
        workers: 1,
        quantum: 50,
        max_queue: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.port());
    let mut accepted = Vec::new();
    let mut rejection = None;
    for _ in 0..10 {
        let r = client.request(&giant_submit_line("flood"));
        if r.get("ok").and_then(|v| v.as_bool()).unwrap() {
            accepted.push(r.get("job").and_then(|v| v.as_u64()).unwrap());
        } else {
            rejection = Some(r);
            break;
        }
    }
    let r = rejection.expect("a one-deep queue must reject a flood of giant jobs");
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Ok("queue-full"));
    let retry = r.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap();
    assert!(retry > 0, "backpressure must carry a retry hint");
    assert!(r.get("queue_depth").and_then(|v| v.as_u64()).unwrap() >= 1);
    let stats = client.request("{\"req\":\"stats\"}");
    assert!(stats.get("rejected").and_then(|v| v.as_u64()).unwrap() >= 1);
    for id in accepted {
        client.request(&format!("{{\"req\":\"cancel\",\"job\":{id}}}"));
    }
    server.stop();
    server.join();
}

#[test]
fn cancel_lands_mid_run_and_between_slices() {
    let server = start(ServeConfig {
        spool_dir: spool_dir("cancel"),
        workers: 1,
        quantum: 50,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.port());
    // Mid-run: cancel once slices are flowing; the engine's cooperative
    // token stops the slice and the job finalizes as cancelled.
    let running = submit_ok(&mut client, &giant_submit_line("t"));
    client.wait_status(running, Duration::from_secs(60), |s| {
        s.get("slices").and_then(|v| v.as_u64()).unwrap() >= 1
    });
    client.request(&format!("{{\"req\":\"cancel\",\"job\":{running}}}"));
    let s = client.wait_status(running, Duration::from_secs(60), is_terminal);
    assert_eq!(state_of(&s), "cancelled");
    assert_eq!(s.get("verdict").and_then(|v| v.as_str()), Ok("cancelled"));
    // Queued: with the worker busy, a second job cancelled while still
    // in the ring finalizes immediately and never runs a slice.
    let busy = submit_ok(&mut client, &giant_submit_line("t"));
    let queued = submit_ok(&mut client, &giant_submit_line("t2"));
    let c = client.request(&format!("{{\"req\":\"cancel\",\"job\":{queued}}}"));
    assert_eq!(c.get("state").and_then(|v| v.as_str()), Ok("cancelled"));
    client.request(&format!("{{\"req\":\"cancel\",\"job\":{busy}}}"));
    client.wait_status(busy, Duration::from_secs(60), is_terminal);
    server.stop();
    server.join();
}

#[test]
fn malformed_and_out_of_domain_requests_get_typed_rejections() {
    let server = start(ServeConfig {
        spool_dir: spool_dir("reject"),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.port());
    for (line, code) in [
        ("this is not json", "bad-request"),
        ("{\"req\":\"teleport\"}", "bad-request"),
        (
            "{\"req\":\"submit\",\"job\":{\"circuit\":\"c17\",\"model\":\"dedc\",\"k\":99,\"vectors\":32,\"seed\":1}}",
            "bad-request",
        ),
        ("{\"req\":\"status\",\"job\":424242}", "unknown-job"),
        ("{\"req\":\"cancel\",\"job\":424242}", "unknown-job"),
        ("{\"req\":\"resume\",\"job\":424242}", "unknown-job"),
    ] {
        let r = client.request(line);
        assert_eq!(r.get("ok").and_then(|v| v.as_bool()), Ok(false), "{line}");
        assert_eq!(r.get("code").and_then(|v| v.as_str()).unwrap(), code, "{line}");
    }
    // `resume` on a job that is not interrupted is a bad-state error.
    let id = submit_ok(&mut client, &submit_line("t", "c17", "dedc", 1, 32, 1));
    client.wait_status(id, Duration::from_secs(60), is_terminal);
    let r = client.request(&format!("{{\"req\":\"resume\",\"job\":{id}}}"));
    assert_eq!(r.get("code").and_then(|v| v.as_str()), Ok("bad-state"));
    // An unknown circuit fails the job with a typed outcome — the
    // daemon keeps serving.
    let bad = submit_ok(&mut client, &submit_line("t", "c9999z", "dedc", 1, 32, 1));
    let s = client.wait_status(bad, Duration::from_secs(60), is_terminal);
    assert_eq!(state_of(&s), "failed");
    assert_eq!(s.get("verdict").and_then(|v| v.as_str()), Ok("error"));
    assert!(client
        .request("{\"req\":\"stats\"}")
        .get("ok")
        .and_then(|v| v.as_bool())
        .unwrap());
    server.stop();
    server.join();
}

#[test]
fn torn_spool_files_are_quarantined_not_fatal() {
    let dir = spool_dir("quarantine");
    // A torn (truncated mid-JSON) record and outright garbage.
    std::fs::write(dir.join("job-7.json"), "{\"spool\":\"incdx-serve\",\"ver").unwrap();
    std::fs::write(dir.join("job-8.json"), "not a record at all\n").unwrap();
    let server = start(ServeConfig {
        spool_dir: dir.clone(),
        ..ServeConfig::default()
    });
    assert_eq!(server.quarantined(), 2);
    assert_eq!(server.recovered(), 0);
    assert!(dir.join("job-7.json.quarantined").exists());
    assert!(dir.join("job-8.json.quarantined").exists());
    assert!(!dir.join("job-7.json").exists());
    let mut client = Client::connect(server.port());
    let stats = client.request("{\"req\":\"stats\"}");
    assert_eq!(stats.get("quarantined").and_then(|v| v.as_u64()), Ok(2));
    // The daemon still serves jobs normally afterwards.
    let id = submit_ok(&mut client, &submit_line("t", "c17", "dedc", 1, 32, 1));
    let s = client.wait_status(id, Duration::from_secs(60), is_terminal);
    assert_eq!(state_of(&s), "done");
    server.stop();
    server.join();
}

#[test]
fn graceful_interrupt_resumes_to_the_identical_solution_set() {
    let spec = giant_spec();
    let (expected_fp, expected_verdict) = reference_outcome(&spec);
    let dir = spool_dir("graceful");
    // Phase 1: slice the giant job, then stop the daemon mid-search.
    let server = start(ServeConfig {
        spool_dir: dir.clone(),
        workers: 1,
        quantum: 50,
        ..ServeConfig::default()
    });
    let port = server.port();
    let mut client = Client::connect(port);
    let id = submit_ok(&mut client, &giant_submit_line("t"));
    client.wait_status(id, Duration::from_secs(120), |s| {
        s.get("slices").and_then(|v| v.as_u64()).unwrap() >= 2
    });
    let mid = client.request(&format!("{{\"req\":\"status\",\"job\":{id}}}"));
    assert!(!is_terminal(&mid), "job must be interrupted mid-search");
    server.stop();
    server.join();
    // Phase 2: a fresh daemon over the same spool auto-resumes the
    // interrupted job and must reach the uninterrupted run's exact
    // solution set — the lossless checkpoint/resume contract, stitched
    // across a daemon restart.
    let server = start(ServeConfig {
        spool_dir: dir,
        workers: 1,
        quantum: 50,
        ..ServeConfig::default()
    });
    assert_eq!(server.recovered(), 1);
    let mut client = Client::connect(server.port());
    let s = client.wait_status(id, Duration::from_secs(300), is_terminal);
    assert_eq!(state_of(&s), "done");
    assert_eq!(
        s.get("verdict").and_then(|v| v.as_str()).unwrap(),
        expected_verdict
    );
    assert_eq!(
        s.get("solutions_fp").and_then(|v| v.as_u64()).unwrap(),
        expected_fp,
        "resumed job must reach the uninterrupted solution set"
    );
    assert!(
        s.get("slices").and_then(|v| v.as_u64()).unwrap() >= 3,
        "the job must actually have been sliced across the restart"
    );
    server.stop();
    server.join();
}

#[test]
fn fingerprint_mismatch_on_resume_quarantines_the_record() {
    use incdx_core::{Checkpoint, CHECKPOINT_VERSION};
    use incdx_serve::{JobSpec, JobState, SpoolRecord};

    let dir = spool_dir("fpguard");
    // A record that parses fine but pins a fingerprint no rebuild of
    // its spec can produce — as if the spool survived a generator
    // change or bit rot in the spec fields.
    let rec = SpoolRecord {
        id: 5,
        tenant: "t".to_string(),
        spec: JobSpec {
            source: incdx_serve::job::Source::Suite("c17".to_string()),
            model: incdx_serve::job::Model::StuckAt,
            k: 1,
            vectors: 32,
            seed: 1,
            max_nodes: None,
            deadline_ms: None,
        },
        state: JobState::Waiting,
        nodes: 10,
        slices: 1,
        fingerprint: 0xDEAD_BEEF,
        checkpoint: Some(Checkpoint {
            version: CHECKPOINT_VERSION,
            label: "serve/job-5".to_string(),
            trial_seed: 1,
            vectors: 32,
            base_gates: 11,
            base_hash: 0xDEAD_BEEF,
            level: 0,
            phase: 0,
            iterations: 1,
            plan: vec![],
            plan_pos: 0,
            nodes: vec![],
            visited: vec![],
            solutions: vec![],
        }),
        outcome: None,
        repairs: 0,
    };
    std::fs::write(dir.join("job-5.json"), format!("{}\n", rec.to_json())).unwrap();
    let server = start(ServeConfig {
        spool_dir: dir.clone(),
        workers: 1,
        ..ServeConfig::default()
    });
    assert_eq!(server.recovered(), 1);
    let mut client = Client::connect(server.port());
    let s = client.wait_status(5, Duration::from_secs(60), is_terminal);
    assert_eq!(state_of(&s), "failed");
    let detail = s
        .get("detail")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();
    assert!(
        detail.contains("fingerprint mismatch"),
        "typed outcome must name the guard: {detail}"
    );
    assert!(
        dir.join("job-5.json.quarantined").exists(),
        "the stale record must be kept as evidence"
    );
    assert_eq!(server.quarantined(), 1);
    server.stop();
    server.join();
}
