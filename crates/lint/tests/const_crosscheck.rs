//! Cross-check of three independently implemented constant analyses:
//!
//! 1. `incdx_analysis::Constants` — ternary dataflow to a fixed point;
//! 2. `incdx_lint::propagate_x` — NL008's single-pass 3-valued
//!    X-propagation over `incdx_sim::logic5::V3`;
//! 3. `incdx_atpg::Scoap` — SCOAP controllability, where an unreachable
//!    value saturates at [`Scoap::INFINITY`].
//!
//! All three walk the same netlist with different lattices and code
//! paths, so agreement is strong evidence none of them has drifted:
//! `Const0 ⟺ V3::Zero ⟺ cc1 saturated`, `Const1 ⟺ V3::One ⟺ cc0
//! saturated`, `Varies ⟺ V3::X ⟺ both controllabilities finite`.
//! Random DAGs from `incdx-gen` carry no constant gates, so the
//! property test also re-checks each netlist with a deterministic
//! sprinkling of gates overwritten to `Const0`/`Const1`, which gives
//! the constant lattice points real work.

use incdx_analysis::{Constants, Ternary};
use incdx_atpg::Scoap;
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_lint::propagate_x;
use incdx_netlist::{Gate, GateKind, Netlist};
use incdx_sim::logic5::V3;
use proptest::prelude::*;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 5,
            gates: 40,
            outputs: 4,
            max_fanin: 3,
            xor_fraction: 0.2,
            window: 12,
        },
        seed,
    )
}

/// Overwrites a deterministic selection of logic gates with constants
/// (dropping their fanins keeps the DAG a DAG), so constant regions
/// actually form and propagate.
fn inject_constants(netlist: &Netlist) -> Netlist {
    let gates: Vec<Gate> = netlist
        .iter()
        .map(|(id, g)| match id.index() % 11 {
            3 if g.kind().is_logic() => Gate::new(GateKind::Const0, vec![]),
            7 if g.kind().is_logic() => Gate::new(GateKind::Const1, vec![]),
            _ => g.clone(),
        })
        .collect();
    let names = (0..gates.len())
        .map(|i| {
            netlist
                .name(incdx_netlist::GateId::from_index(i))
                .map(str::to_string)
        })
        .collect();
    Netlist::from_parts_unchecked(gates, names, netlist.outputs().to_vec())
}

fn crosscheck(netlist: &Netlist) -> Result<(), TestCaseError> {
    let consts = Constants::compute(netlist);
    let xvals = propagate_x(netlist);
    let scoap = Scoap::compute(netlist);
    for id in netlist.ids() {
        let t = consts.value(id);
        prop_assert!(t != Ternary::Unreached, "acyclic line {} unreached", id);
        // Lattice 1 vs lattice 2: exact per-line agreement.
        let want_v3 = match t {
            Ternary::Const0 => V3::Zero,
            Ternary::Const1 => V3::One,
            _ => V3::X,
        };
        prop_assert_eq!(
            xvals[id.index()],
            want_v3,
            "ternary {:?} vs X-prop {:?} at {}",
            t,
            xvals[id.index()],
            id
        );
        // Lattice 1 vs SCOAP: a value is unreachable exactly when its
        // controllability saturates.
        prop_assert_eq!(
            scoap.cc0(id) >= Scoap::INFINITY,
            t == Ternary::Const1,
            "cc0 saturation disagrees with ternary {:?} at {}",
            t,
            id
        );
        prop_assert_eq!(
            scoap.cc1(id) >= Scoap::INFINITY,
            t == Ternary::Const0,
            "cc1 saturation disagrees with ternary {:?} at {}",
            t,
            id
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three constant analyses agree on random DAGs, both pristine
    /// (everything varies) and with injected constant gates.
    #[test]
    fn three_constant_analyses_agree(seed in 0u64..300) {
        let n = dag(seed);
        crosscheck(&n)?;
        crosscheck(&inject_constants(&n))?;
    }
}

/// A hand-built netlist exercising every lattice point at once.
#[test]
fn agreement_on_a_known_mixed_netlist() {
    let mut b = Netlist::builder();
    let a = b.add_input("a");
    let c0 = b.add_gate(GateKind::Const0, vec![]);
    let c1 = b.add_gate(GateKind::Const1, vec![]);
    let pinned0 = b.add_gate(GateKind::And, vec![a, c0]); // ≡ 0
    let pinned1 = b.add_gate(GateKind::Or, vec![a, c1]); // ≡ 1
    let varies = b.add_gate(GateKind::Xor, vec![a, c1]); // ≡ ¬a
    b.add_output(pinned0);
    b.add_output(pinned1);
    b.add_output(varies);
    let n = b.build().expect("valid");
    let consts = Constants::compute(&n);
    assert_eq!(consts.value(pinned0), Ternary::Const0);
    assert_eq!(consts.value(pinned1), Ternary::Const1);
    assert_eq!(consts.value(varies), Ternary::Varies);
    crosscheck(&n).expect("lattices agree");
}
