//! In-tree enforcement of the workspace panic policy: `cargo test`
//! fails if any first-party crate grows a denied panicking construct in
//! non-test code. `scripts/verify.sh` runs the same scanner through the
//! `panic_audit` binary.

use std::path::Path;

#[test]
fn workspace_is_free_of_denied_panicking_constructs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations =
        incdx_lint::panic_audit::audit_workspace(&root).expect("workspace sources readable");
    assert!(
        violations.is_empty(),
        "panic audit found {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
