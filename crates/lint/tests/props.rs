//! Property tests of the lint engine: every generated suite circuit
//! lints clean, and every class of injected structural mutation maps to
//! its expected lint code.

use incdx_lint::{Diagnostic, LintCode, LintExt, Severity};
use incdx_netlist::{Gate, GateId, GateKind, Netlist};
use proptest::prelude::*;

/// "Clean" for the suite: no warnings, no errors (advisories allowed —
/// a generator may legitimately emit constant stubs).
fn assert_clean(name: &str, diags: &[Diagnostic]) {
    let bad: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    assert!(bad.is_empty(), "{name} should lint clean, got {bad:?}");
}

#[test]
fn every_suite_circuit_lints_clean() {
    for spec in incdx_gen::SUITE {
        let n = incdx_gen::generate(spec.name).expect("suite circuit generates");
        assert_clean(spec.name, &n.lint());
        if !n.is_combinational() {
            let (core, _) = incdx_netlist::scan_convert(&n).expect("suite scan-converts");
            assert_clean(&format!("{}/scan-core", spec.name), &core.lint());
        }
    }
}

/// Raw parts of a suite circuit, ready for mutation.
fn parts(name: &str) -> (Vec<Gate>, Vec<Option<String>>, Vec<GateId>) {
    let n = incdx_gen::generate(name).expect("suite circuit generates");
    let gates: Vec<Gate> = n.ids().map(|id| n.gate(id).clone()).collect();
    let names: Vec<Option<String>> = n.ids().map(|id| n.name(id).map(str::to_string)).collect();
    (gates, names, n.outputs().to_vec())
}

fn codes(n: &Netlist) -> Vec<LintCode> {
    n.lint().into_iter().map(|d| d.code).collect()
}

/// Every mutation strategy below picks a random victim gate inside one
/// of the smaller combinational suite circuits.
const MUTATION_HOSTS: &[&str] = &["c17", "c432a", "c880a"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dropping a driver (re-pointing a fanin past the end of the gate
    /// list) triggers `NL002`.
    #[test]
    fn dropped_driver_triggers_undriven_wire(
        host in prop::sample::select(MUTATION_HOSTS.to_vec()),
        pick in 0usize..10_000,
    ) {
        let (mut gates, names, outputs) = parts(host);
        let victims: Vec<usize> = (0..gates.len())
            .filter(|&i| !gates[i].fanins().is_empty())
            .collect();
        let v = victims[pick % victims.len()];
        let missing = GateId::from_index(gates.len() + 7);
        let mut fanins = gates[v].fanins().to_vec();
        let slot = pick % fanins.len();
        fanins[slot] = missing;
        gates[v] = Gate::new(gates[v].kind(), fanins);
        let n = Netlist::from_parts_unchecked(gates, names, outputs);
        prop_assert!(codes(&n).contains(&LintCode::UndrivenWire));
    }

    /// Adding a back-edge (a fanin pointing into the gate's own fanout
    /// cone) closes a combinational loop and triggers `NL001`.
    #[test]
    fn injected_back_edge_triggers_cycle(
        host in prop::sample::select(MUTATION_HOSTS.to_vec()),
        pick in 0usize..10_000,
    ) {
        let (mut gates, names, outputs) = parts(host);
        let original = Netlist::from_parts_unchecked(gates.clone(), names.clone(), outputs.clone());
        // Pick a logic gate and wire one of its fanins to a gate that
        // (transitively) reads it: any strictly-later gate in topo order
        // within its fanout cone. Simplest robust choice: its own output.
        let victims: Vec<usize> = (0..gates.len())
            .filter(|&i| {
                gates[i].kind().is_logic()
                    && original
                        .fanouts(GateId::from_index(i))
                        .iter()
                        .any(|r| original.gate(*r).kind() != GateKind::Dff)
            })
            .collect();
        let v = victims[pick % victims.len()];
        let reader = original.fanouts(GateId::from_index(v))
            .iter()
            .copied()
            .find(|r| original.gate(*r).kind() != GateKind::Dff)
            .expect("victim chosen to have a combinational reader");
        // reader already reads v; now make v read reader: a 2-cycle.
        let mut fanins = gates[v].fanins().to_vec();
        let slot = pick % fanins.len();
        fanins[slot] = reader;
        gates[v] = Gate::new(gates[v].kind(), fanins);
        let n = Netlist::from_parts_unchecked(gates, names, outputs);
        prop_assert!(!n.is_acyclic());
        prop_assert!(codes(&n).contains(&LintCode::CombinationalCycle));
    }

    /// Widening a fixed-arity gate (NOT/BUF with an extra fanin)
    /// triggers `NL007`.
    #[test]
    fn widened_gate_triggers_arity_violation(
        host in prop::sample::select(MUTATION_HOSTS.to_vec()),
        pick in 0usize..10_000,
    ) {
        let (mut gates, names, outputs) = parts(host);
        let victims: Vec<usize> = (0..gates.len())
            .filter(|&i| matches!(gates[i].kind(), GateKind::Not | GateKind::Buf))
            .collect();
        // Every mutation host contains inverters; if a future host does
        // not, widen an Input instead (0-arity violation).
        let (v, extra) = if victims.is_empty() {
            (0, GateId::from_index(0))
        } else {
            let v = victims[pick % victims.len()];
            (v, gates[v].fanins()[0])
        };
        let mut fanins = gates[v].fanins().to_vec();
        fanins.push(extra);
        gates[v] = Gate::new(gates[v].kind(), fanins);
        let n = Netlist::from_parts_unchecked(gates, names, outputs);
        prop_assert!(codes(&n).contains(&LintCode::ArityViolation));
    }

    /// Duplicating a wire name triggers `NL003`.
    #[test]
    fn duplicated_name_triggers_multi_driven_wire(
        host in prop::sample::select(MUTATION_HOSTS.to_vec()),
        pick in 0usize..10_000,
    ) {
        let (gates, mut names, outputs) = parts(host);
        let named: Vec<usize> = (0..names.len()).filter(|&i| names[i].is_some()).collect();
        // Every host has at least two named lines (its primary inputs).
        prop_assert!(named.len() >= 2);
        let a_pos = pick % named.len();
        let b_pos = (a_pos + 1 + pick / named.len() % (named.len() - 1)) % named.len();
        let (a, b) = (named[a_pos], named[b_pos]);
        prop_assert!(a != b);
        names[b] = names[a].clone();
        let n = Netlist::from_parts_unchecked(gates, names, outputs);
        prop_assert!(codes(&n).contains(&LintCode::MultiDrivenWire));
    }

    /// Emptying the output list triggers `NL005` at error severity.
    #[test]
    fn removed_outputs_trigger_floating_output(
        host in prop::sample::select(MUTATION_HOSTS.to_vec()),
    ) {
        let (gates, names, _) = parts(host);
        let n = Netlist::from_parts_unchecked(gates, names, vec![]);
        let diags = n.lint();
        prop_assert!(diags
            .iter()
            .any(|d| d.code == LintCode::FloatingOutput && d.severity == Severity::Error));
    }

    /// Disconnecting a primary output (the only reader of its cone tip)
    /// leaves dead logic behind: `NL004`.
    #[test]
    fn severed_output_cone_triggers_dead_cone(
        host in prop::sample::select(MUTATION_HOSTS.to_vec()),
        pick in 0usize..10_000,
    ) {
        let (gates, names, outputs) = parts(host);
        prop_assert!(outputs.len() >= 2);
        let original = Netlist::from_parts_unchecked(gates.clone(), names.clone(), outputs.clone());
        // Drop a PO nothing else reads: its cone tip must die. Every
        // host has such a PO (output gates are cone tips, not stems).
        let start = pick % outputs.len();
        let dropped = (0..outputs.len())
            .map(|k| outputs[(start + k) % outputs.len()])
            .find(|&o| {
                original.fanouts(o).is_empty()
                    && outputs.iter().filter(|&&x| x == o).count() == 1
            });
        prop_assert!(dropped.is_some(), "host has a sole-reader PO");
        let dropped = dropped.expect("just checked");
        let kept: Vec<GateId> = outputs.iter().copied().filter(|&o| o != dropped).collect();
        let n = Netlist::from_parts_unchecked(gates, names, kept);
        prop_assert!(codes(&n).contains(&LintCode::DeadCone));
    }
}
