//! Positive and negative tests for every lint code: each analysis must
//! fire on a minimal netlist exhibiting its hazard and stay silent on a
//! minimal clean netlist.

use incdx_lint::{lint_netlist, Diagnostic, LintCode, LintExt, Severity};
use incdx_netlist::{parse_bench, Gate, GateId, GateKind, Netlist};

/// A clean reference netlist: y = NAND(a, b).
fn clean() -> Netlist {
    parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").expect("clean netlist")
}

fn codes(diags: &[Diagnostic]) -> Vec<LintCode> {
    diags.iter().map(|d| d.code).collect()
}

fn has(diags: &[Diagnostic], code: LintCode, severity: Severity) -> bool {
    diags
        .iter()
        .any(|d| d.code == code && d.severity == severity)
}

#[test]
fn clean_netlist_has_no_findings() {
    assert_eq!(codes(&clean().lint()), vec![]);
}

// ---------------------------------------------------------------- NL001

#[test]
fn nl001_fires_on_two_gate_cycle() {
    // u = AND(v, a); v = OR(u, a); y = BUF(u).
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::And, vec![GateId(2), GateId(0)]),
        Gate::new(GateKind::Or, vec![GateId(1), GateId(0)]),
        Gate::new(GateKind::Buf, vec![GateId(1)]),
    ];
    let n = Netlist::from_parts_unchecked(gates, vec![None; 4], vec![GateId(3)]);
    assert!(!n.is_acyclic());
    let diags = n.lint();
    assert!(has(&diags, LintCode::CombinationalCycle, Severity::Error));
    // One diagnostic per SCC, not per member.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.code == LintCode::CombinationalCycle)
            .count(),
        1
    );
}

#[test]
fn nl001_fires_on_self_loop_and_anchors_it() {
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::And, vec![GateId(1), GateId(0)]),
    ];
    let n = Netlist::from_parts_unchecked(gates, vec![None; 2], vec![GateId(1)]);
    let d = n
        .lint()
        .into_iter()
        .find(|d| d.code == LintCode::CombinationalCycle)
        .expect("self-loop detected");
    assert_eq!(d.gate, Some(GateId(1)));
    assert!(d.message.contains("feeds itself"), "{}", d.message);
}

#[test]
fn nl001_silent_on_dff_feedback() {
    // q = DFF(d); d = NOT(q) — sequential feedback is legal.
    let n = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n").expect("parses");
    assert!(!n
        .lint()
        .iter()
        .any(|d| d.code == LintCode::CombinationalCycle));
}

// ---------------------------------------------------------------- NL002

#[test]
fn nl002_fires_on_out_of_range_fanin() {
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Not, vec![GateId(7)]),
    ];
    let n = Netlist::from_parts_unchecked(gates, vec![None; 2], vec![GateId(1)]);
    let diags = n.lint();
    assert!(has(&diags, LintCode::UndrivenWire, Severity::Error));
}

#[test]
fn nl002_fires_on_out_of_range_output() {
    let gates = vec![Gate::new(GateKind::Input, vec![])];
    let n = Netlist::from_parts_unchecked(gates, vec![None], vec![GateId(9)]);
    assert!(has(&n.lint(), LintCode::UndrivenWire, Severity::Error));
}

#[test]
fn nl002_silent_on_fully_driven_netlist() {
    assert!(!clean()
        .lint()
        .iter()
        .any(|d| d.code == LintCode::UndrivenWire));
}

// ---------------------------------------------------------------- NL003

#[test]
fn nl003_fires_on_duplicate_wire_name() {
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Not, vec![GateId(0)]),
        Gate::new(GateKind::Buf, vec![GateId(0)]),
    ];
    let names = vec![Some("a".into()), Some("y".into()), Some("y".into())];
    let n = Netlist::from_parts_unchecked(gates, names, vec![GateId(1)]);
    let d = n
        .lint()
        .into_iter()
        .find(|d| d.code == LintCode::MultiDrivenWire)
        .expect("duplicate name detected");
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("`y`"), "{}", d.message);
}

#[test]
fn nl003_silent_on_distinct_names() {
    assert!(!clean()
        .lint()
        .iter()
        .any(|d| d.code == LintCode::MultiDrivenWire));
}

// ---------------------------------------------------------------- NL004

#[test]
fn nl004_fires_on_dead_logic_and_unused_input() {
    // y = NOT(a); dead = AND(a, b) feeds nothing; c drives nothing.
    let n = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NOT(a)\ndead = AND(a, b)\n")
        .expect("parses");
    let diags = n.lint();
    // Dead logic is a warning...
    let dead = n.find_by_name("dead").unwrap();
    assert!(diags.iter().any(|d| d.code == LintCode::DeadCone
        && d.severity == Severity::Warning
        && d.gate == Some(dead)));
    // ...an unused primary input only an advisory.
    let c = n.find_by_name("c").unwrap();
    assert!(diags.iter().any(|d| d.code == LintCode::DeadCone
        && d.severity == Severity::Info
        && d.gate == Some(c)));
    // `b` feeds the dead cone, so it is dead too — but `a` is live.
    let a = n.find_by_name("a").unwrap();
    assert!(!diags.iter().any(|d| d.gate == Some(a)));
}

#[test]
fn nl004_counts_dff_paths_as_observable() {
    // Logic feeding a DFF that feeds an output is alive.
    let n = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(a)\n").expect("parses");
    assert!(!n.lint().iter().any(|d| d.code == LintCode::DeadCone));
}

// ---------------------------------------------------------------- NL005

#[test]
fn nl005_fires_on_empty_output_list() {
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Not, vec![GateId(0)]),
    ];
    let n = Netlist::from_parts_unchecked(gates, vec![None; 2], vec![]);
    let d = n
        .lint()
        .into_iter()
        .find(|d| d.code == LintCode::FloatingOutput)
        .expect("empty output list detected");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn nl005_fires_on_constant_output() {
    let n =
        parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(k)\ny = NOT(a)\nk = CONST1()\n").expect("parses");
    assert!(has(&n.lint(), LintCode::FloatingOutput, Severity::Warning));
}

#[test]
fn nl005_advises_on_duplicate_output_listing() {
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Not, vec![GateId(0)]),
    ];
    let n = Netlist::from_parts_unchecked(gates, vec![None; 2], vec![GateId(1), GateId(1)]);
    assert!(has(&n.lint(), LintCode::FloatingOutput, Severity::Info));
}

#[test]
fn nl005_silent_on_logic_outputs() {
    assert!(!clean()
        .lint()
        .iter()
        .any(|d| d.code == LintCode::FloatingOutput));
}

// ---------------------------------------------------------------- NL006

#[test]
fn nl006_fires_on_synthetic_shadow() {
    // Gate 2 is named `n1`, shadowing unnamed gate 1's synthetic name.
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Not, vec![GateId(0)]),
        Gate::new(GateKind::Buf, vec![GateId(1)]),
    ];
    let names = vec![Some("a".into()), None, Some("n1".into())];
    let n = Netlist::from_parts_unchecked(gates, names, vec![GateId(2)]);
    assert!(has(&n.lint(), LintCode::ShadowedName, Severity::Warning));
}

#[test]
fn nl006_fires_on_case_insensitive_collision() {
    let n = parse_bench("INPUT(Sig)\nINPUT(sig)\nOUTPUT(y)\ny = AND(Sig, sig)\n")
        .expect("case-preserving parser accepts both");
    assert!(has(&n.lint(), LintCode::ShadowedName, Severity::Warning));
}

#[test]
fn nl006_silent_on_matching_synthetic_names() {
    // A name `n<id>` on its *own* line is how write_bench round-trips.
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Not, vec![GateId(0)]),
    ];
    let names = vec![Some("n0".into()), Some("n1".into())];
    let n = Netlist::from_parts_unchecked(gates, names, vec![GateId(1)]);
    assert!(!n.lint().iter().any(|d| d.code == LintCode::ShadowedName));
}

// ---------------------------------------------------------------- NL007

#[test]
fn nl007_fires_on_bad_arities() {
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        // 2-input NOT.
        Gate::new(GateKind::Not, vec![GateId(0), GateId(0)]),
        // 1-input XOR.
        Gate::new(GateKind::Xor, vec![GateId(0)]),
        // 0-input AND.
        Gate::new(GateKind::And, vec![]),
        Gate::new(GateKind::Or, vec![GateId(1), GateId(2), GateId(3)]),
    ];
    let n = Netlist::from_parts_unchecked(gates, vec![None; 5], vec![GateId(4)]);
    let diags = n.lint();
    let arity: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == LintCode::ArityViolation)
        .collect();
    assert_eq!(arity.len(), 3);
    assert!(arity.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn nl007_silent_on_wide_and_narrow_legal_gates() {
    let n = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nw = AND(a, b, c)\nv = OR(a)\ny = XOR(w, v)\n",
    )
    .expect("parses");
    assert!(!n.lint().iter().any(|d| d.code == LintCode::ArityViolation));
}

// ---------------------------------------------------------------- NL008

#[test]
fn nl008_fires_on_masked_constant_region() {
    // k = CONST0; m = AND(a, k) is constant 0 although `a` is X-capable;
    // y = OR(m, b) keeps the netlist observable and `b` live.
    let n =
        parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nk = CONST0()\nm = AND(a, k)\ny = OR(m, b)\n")
            .expect("parses");
    let m = n.find_by_name("m").unwrap();
    let d = n
        .lint()
        .into_iter()
        .find(|d| d.code == LintCode::ConstantRegion && d.gate == Some(m))
        .expect("masked gate reported");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("masks"), "{}", d.message);
}

#[test]
fn nl008_reports_pure_constant_cones_distinctly() {
    let n = parse_bench(
        "INPUT(a)\nOUTPUT(y)\nk0 = CONST0()\nk1 = CONST1()\nm = OR(k0, k1)\ny = AND(a, m)\n",
    )
    .expect("parses");
    let m = n.find_by_name("m").unwrap();
    let d = n
        .lint()
        .into_iter()
        .find(|d| d.code == LintCode::ConstantRegion && d.gate == Some(m))
        .expect("constant cone reported");
    assert!(d.message.contains("cone is constant"), "{}", d.message);
    // y = AND(a, 1) stays X-capable: no finding on y.
    let y = n.find_by_name("y").unwrap();
    assert!(!n
        .lint()
        .iter()
        .any(|d| d.code == LintCode::ConstantRegion && d.gate == Some(y)));
}

#[test]
fn nl008_silent_on_fully_x_capable_logic() {
    assert!(!clean()
        .lint()
        .iter()
        .any(|d| d.code == LintCode::ConstantRegion));
}

// ---------------------------------------------------------------- NL009

#[test]
fn nl009_fires_on_constant_dff_load() {
    let n = parse_bench("INPUT(a)\nOUTPUT(y)\nk = CONST1()\nq = DFF(k)\ny = AND(q, a)\n")
        .expect("parses");
    let q = n.find_by_name("q").unwrap();
    assert!(n.lint().iter().any(|d| d.code == LintCode::ScanChain
        && d.severity == Severity::Warning
        && d.gate == Some(q)
        && d.message.contains("constant")));
}

#[test]
fn nl009_fires_on_unobservable_state() {
    // q's output feeds only dead logic: state never reaches a PO or DFF.
    let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nq = DFF(a)\ndead = AND(q, a)\n")
        .expect("parses");
    let q = n.find_by_name("q").unwrap();
    assert!(n.lint().iter().any(|d| d.code == LintCode::ScanChain
        && d.severity == Severity::Warning
        && d.gate == Some(q)
        && d.message.contains("no primary output")));
}

#[test]
fn nl009_silent_on_well_formed_scan_design() {
    // State feeds logic feeding a PO, and DFF-to-DFF paths count as
    // observable (the next scan cell captures them).
    let n = parse_bench(
        "INPUT(a)\nOUTPUT(y)\nq0 = DFF(d0)\nd0 = XOR(a, q0)\nq1 = DFF(q0)\ny = NOT(q1)\n",
    )
    .expect("parses");
    assert!(!n.lint().iter().any(|d| d.code == LintCode::ScanChain));
}

#[test]
fn nl009_silent_on_combinational_netlist() {
    assert!(!clean().lint().iter().any(|d| d.code == LintCode::ScanChain));
}

// ------------------------------------------------------------- ordering

#[test]
fn findings_sort_most_severe_first() {
    // A netlist with an Error (cycle), a Warning (dead cone via the
    // cycle's unreachable region)… build one with an error + info.
    let gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::And, vec![GateId(1), GateId(0)]), // self-loop: Error
        Gate::new(GateKind::Not, vec![GateId(0)]),
    ];
    let n = Netlist::from_parts_unchecked(
        gates,
        vec![None; 3],
        vec![GateId(2), GateId(2)], // duplicate listing: Info
    );
    let diags = lint_netlist(&n);
    assert!(diags.len() >= 2);
    for pair in diags.windows(2) {
        assert!(pair[0].severity >= pair[1].severity, "sorted by severity");
    }
    assert_eq!(diags[0].severity, Severity::Error);
}
