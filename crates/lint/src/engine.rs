//! The lint driver: the [`Lint`] trait, the registry of built-in
//! analyses, and [`lint_netlist`], the one-call entry point.

use incdx_netlist::Netlist;

use crate::checks;
use crate::diagnostic::{Diagnostic, LintCode};

/// One static analysis over a netlist.
///
/// Implementations must tolerate *arbitrary* structures — including the
/// hazardous ones admitted by [`Netlist::from_parts_unchecked`] (cycles,
/// out-of-range fanins, empty output lists) — without panicking: a lint
/// that crashes on the very netlists it exists to report is useless.
pub trait Lint {
    /// The stable code every diagnostic from this lint carries.
    fn code(&self) -> LintCode;

    /// One-line description of what the analysis looks for.
    fn description(&self) -> &'static str;

    /// Runs the analysis, appending findings to `out`.
    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>);
}

/// All built-in analyses, in code order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(checks::structure::CombinationalCycle),
        Box::new(checks::structure::UndrivenWire),
        Box::new(checks::names::MultiDrivenWire),
        Box::new(checks::reach::DeadCone),
        Box::new(checks::reach::FloatingOutput),
        Box::new(checks::names::ShadowedName),
        Box::new(checks::structure::ArityViolation),
        Box::new(checks::xregion::ConstantRegion),
        Box::new(checks::scan_chain::ScanChain),
        Box::new(checks::abstraction::DegenerateAbstraction),
        Box::new(checks::observability::UnobservableLine),
        Box::new(checks::redundant::RedundantGate),
    ]
}

/// Runs every registered lint over `netlist` and returns the findings
/// sorted most-severe first (ties broken by code, then anchor gate id).
pub fn lint_netlist(netlist: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for lint in registry() {
        let before = out.len();
        lint.check(netlist, &mut out);
        debug_assert!(
            out[before..].iter().all(|d| d.code == lint.code()),
            "lint {} emitted a foreign code",
            lint.code()
        );
    }
    out.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.gate.map(|g| g.index()).cmp(&b.gate.map(|g| g.index())))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::ALL_CODES;

    #[test]
    fn registry_covers_every_code_exactly_once() {
        let codes: Vec<LintCode> = registry().iter().map(|l| l.code()).collect();
        assert_eq!(codes.len(), ALL_CODES.len());
        for code in ALL_CODES {
            assert_eq!(codes.iter().filter(|&&c| c == code).count(), 1, "{code}");
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for lint in registry() {
            assert!(!lint.description().is_empty(), "{}", lint.code());
        }
    }

    #[test]
    fn clean_netlist_lints_clean() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n";
        let n = incdx_netlist::parse_bench(src).unwrap();
        assert!(lint_netlist(&n).is_empty());
    }
}
