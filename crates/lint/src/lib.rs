//! Static analysis for the `incdx` workspace.
//!
//! Two halves live here:
//!
//! * **Netlist lints** — structural analyses over [`incdx_netlist::Netlist`]
//!   that catch hazards *before* simulation: combinational cycles, undriven
//!   and multi-driven wires, dead cones, floating outputs, shadowed names,
//!   arity violations, constant (non-X-capable) regions, and full-scan
//!   consistency. Each finding is a [`Diagnostic`] with a stable `NLxxx`
//!   code, a severity, a circuit location, and a fix hint; the rectifier's
//!   pre-flight rejects any netlist carrying a [`Severity::Error`] finding.
//! * **Source audits** — the [`panic_audit`] scanner that keeps panicking
//!   constructs out of first-party non-test code, backing both the
//!   `panic_audit` binary `scripts/verify.sh` runs and an in-tree test.
//!
//! # Example
//!
//! ```
//! use incdx_lint::{LintCode, LintExt, Severity};
//!
//! // A 2-gate combinational loop: u = AND(v, a), v = OR(u, a).
//! use incdx_netlist::{Gate, GateId, GateKind, Netlist};
//! let gates = vec![
//!     Gate::new(GateKind::Input, vec![]),
//!     Gate::new(GateKind::And, vec![GateId(2), GateId(0)]),
//!     Gate::new(GateKind::Or, vec![GateId(1), GateId(0)]),
//! ];
//! let n = Netlist::from_parts_unchecked(gates, vec![None; 3], vec![GateId(1)]);
//! let findings = n.lint();
//! assert!(findings
//!     .iter()
//!     .any(|d| d.code == LintCode::CombinationalCycle && d.severity == Severity::Error));
//! ```

mod checks;
mod diagnostic;
mod engine;
mod ext;
pub mod panic_audit;

pub use checks::xregion::propagate_x;
pub use diagnostic::{Diagnostic, LintCode, Severity, ALL_CODES};
pub use engine::{lint_netlist, registry, Lint};
pub use ext::LintExt;
