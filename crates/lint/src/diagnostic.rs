//! The structured diagnostic every lint produces: a stable code, a
//! severity, an optional circuit location, and a fix hint.

use std::fmt;

use incdx_netlist::{GateId, Netlist, NetlistError};

/// How bad a finding is.
///
/// Ordered so that `Info < Warning < Error`; the rectifier pre-flight
/// rejects netlists with any [`Severity::Error`] diagnostic, while
/// warnings and advisories are reported but do not block a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: worth knowing, never blocks anything (e.g. a constant
    /// region the generators produce on purpose).
    Info,
    /// Suspicious structure that simulates deterministically but usually
    /// indicates a netlist capture mistake.
    Warning,
    /// A hazard that makes simulation results undefined or wrong; the
    /// engine refuses to diagnose such a netlist.
    Error,
}

impl Severity {
    /// Lower-case label used in JSON and human-readable output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable identifier of a lint analysis.
///
/// Codes are append-only: a code never changes meaning once released,
/// so `--deny NLxxx` pins behave across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `NL000` — the input could not be parsed at all (binary-level code;
    /// no registry analysis emits it).
    ParseError,
    /// `NL001` — combinational cycle (strongly connected component over
    /// combinational edges).
    CombinationalCycle,
    /// `NL002` — a fanin or output references a line no gate drives.
    UndrivenWire,
    /// `NL003` — two gates declare the same wire name (two drivers).
    MultiDrivenWire,
    /// `NL004` — gate unreachable from every primary output (dead cone).
    DeadCone,
    /// `NL005` — floating/degenerate primary output list.
    FloatingOutput,
    /// `NL006` — a declared name shadows another line's synthetic name,
    /// or collides with another name case-insensitively.
    ShadowedName,
    /// `NL007` — fanin count outside the gate kind's arity range.
    ArityViolation,
    /// `NL008` — region that cannot carry an X under 3-valued propagation
    /// (constant/input-masked logic; fault effects cannot be excited).
    ConstantRegion,
    /// `NL009` — full-scan consistency: a flip-flop with a constant load
    /// cone or with unobservable state.
    ScanChain,
    /// `NL010` — fanout-free-cone abstraction with no leverage: two-level
    /// hierarchical diagnosis would fall back to the flat engine.
    DegenerateAbstraction,
    /// `NL011` — a line that structurally reaches primary outputs but
    /// whose value changes are provably invisible at every one of them
    /// (constant side-inputs block every sensitization path); faults
    /// there are statically untestable.
    UnobservableLine,
    /// `NL012` — a gate provably equivalent to (the complement of) a
    /// single fanin by static implication: every other fanin is a proven
    /// constant at the gate's identity element, or all fanins are the
    /// same line.
    RedundantGate,
}

/// Every registry-backed code, in code order. [`LintCode::ParseError`] is
/// deliberately absent: it is emitted by tooling when parsing fails, not
/// by an analysis over a parsed netlist.
pub const ALL_CODES: [LintCode; 12] = [
    LintCode::CombinationalCycle,
    LintCode::UndrivenWire,
    LintCode::MultiDrivenWire,
    LintCode::DeadCone,
    LintCode::FloatingOutput,
    LintCode::ShadowedName,
    LintCode::ArityViolation,
    LintCode::ConstantRegion,
    LintCode::ScanChain,
    LintCode::DegenerateAbstraction,
    LintCode::UnobservableLine,
    LintCode::RedundantGate,
];

impl LintCode {
    /// The stable `NLxxx` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::ParseError => "NL000",
            LintCode::CombinationalCycle => "NL001",
            LintCode::UndrivenWire => "NL002",
            LintCode::MultiDrivenWire => "NL003",
            LintCode::DeadCone => "NL004",
            LintCode::FloatingOutput => "NL005",
            LintCode::ShadowedName => "NL006",
            LintCode::ArityViolation => "NL007",
            LintCode::ConstantRegion => "NL008",
            LintCode::ScanChain => "NL009",
            LintCode::DegenerateAbstraction => "NL010",
            LintCode::UnobservableLine => "NL011",
            LintCode::RedundantGate => "NL012",
        }
    }

    /// A short kebab-case name for human-readable listings.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::ParseError => "parse-error",
            LintCode::CombinationalCycle => "combinational-cycle",
            LintCode::UndrivenWire => "undriven-wire",
            LintCode::MultiDrivenWire => "multi-driven-wire",
            LintCode::DeadCone => "dead-cone",
            LintCode::FloatingOutput => "floating-output",
            LintCode::ShadowedName => "shadowed-name",
            LintCode::ArityViolation => "arity-violation",
            LintCode::ConstantRegion => "constant-region",
            LintCode::ScanChain => "scan-chain",
            LintCode::DegenerateAbstraction => "degenerate-abstraction",
            LintCode::UnobservableLine => "unobservable-line",
            LintCode::RedundantGate => "redundant-gate",
        }
    }

    /// Parses a `NLxxx` code string (case-insensitive).
    pub fn parse(s: &str) -> Option<LintCode> {
        let up = s.to_ascii_uppercase();
        [LintCode::ParseError]
            .into_iter()
            .chain(ALL_CODES)
            .find(|c| c.as_str() == up)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from one lint: what, how bad, where, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable analysis code.
    pub code: LintCode,
    /// How bad the finding is.
    pub severity: Severity,
    /// The gate/line the finding anchors to, if it has one.
    pub gate: Option<GateId>,
    /// The anchored line's declared name (or `n<id>` synthetic name).
    pub wire: Option<String>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// A concrete suggestion for repairing the netlist.
    pub hint: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at `gate`, resolving its wire name
    /// from the netlist (synthetic `n<id>` when unnamed).
    pub fn at(
        code: LintCode,
        severity: Severity,
        netlist: &Netlist,
        gate: GateId,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            gate: Some(gate),
            wire: Some(wire_name(netlist, gate)),
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Builds a diagnostic about the netlist as a whole (no anchor gate).
    pub fn global(
        code: LintCode,
        severity: Severity,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            gate: None,
            wire: None,
            message: message.into(),
            hint: hint.into(),
        }
    }

    /// Maps a [`NetlistError`] from a validating constructor or the
    /// `.bench` parser onto the equivalent diagnostic, so tooling can
    /// report construction failures in the same structured stream as
    /// lint findings.
    pub fn from_netlist_error(err: &NetlistError) -> Diagnostic {
        let (code, gate) = match err {
            NetlistError::ParseBench { .. } => (LintCode::ParseError, None),
            NetlistError::CombinationalCycle { gate } => {
                (LintCode::CombinationalCycle, Some(*gate))
            }
            NetlistError::DanglingFanin { gate, .. } | NetlistError::DanglingOutput { gate } => {
                (LintCode::UndrivenWire, Some(*gate))
            }
            NetlistError::BadArity { gate, .. } => (LintCode::ArityViolation, Some(*gate)),
            NetlistError::NoOutputs => (LintCode::FloatingOutput, None),
            _ => (LintCode::ParseError, None),
        };
        Diagnostic {
            code,
            severity: Severity::Error,
            gate,
            wire: gate.map(|g| format!("n{}", g.index())),
            message: err.to_string(),
            hint: "fix the netlist source and re-parse".into(),
        }
    }

    /// Serializes the diagnostic as a single-line JSON object, matching
    /// the hand-rolled report idiom of `incdx-core`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"code\":\"");
        out.push_str(self.code.as_str());
        out.push_str("\",\"name\":\"");
        out.push_str(self.code.name());
        out.push_str("\",\"severity\":\"");
        out.push_str(self.severity.as_str());
        out.push('"');
        match self.gate {
            Some(g) => out.push_str(&format!(",\"gate\":{}", g.index())),
            None => out.push_str(",\"gate\":null"),
        }
        match &self.wire {
            Some(w) => out.push_str(&format!(",\"wire\":\"{}\"", escape_json(w))),
            None => out.push_str(",\"wire\":null"),
        }
        out.push_str(&format!(",\"message\":\"{}\"", escape_json(&self.message)));
        out.push_str(&format!(",\"hint\":\"{}\"", escape_json(&self.hint)));
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.code)?;
        if let Some(w) = &self.wire {
            write!(f, " {w}:")?;
        }
        write!(f, " {}", self.message)?;
        if !self.hint.is_empty() {
            write!(f, " (hint: {})", self.hint)?;
        }
        Ok(())
    }
}

/// The display name of a line: its declared name, else `n<id>`.
pub(crate) fn wire_name(netlist: &Netlist, id: GateId) -> String {
    netlist
        .name(id)
        .map(str::to_string)
        .unwrap_or_else(|| format!("n{}", id.index()))
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// same contract as the `incdx-core` report writer.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_stable_and_parse_back() {
        for code in [LintCode::ParseError].into_iter().chain(ALL_CODES) {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
            assert_eq!(LintCode::parse(&code.as_str().to_lowercase()), Some(code));
        }
        assert_eq!(LintCode::parse("NL999"), None);
        assert_eq!(LintCode::CombinationalCycle.as_str(), "NL001");
        assert_eq!(LintCode::ScanChain.as_str(), "NL009");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::global(
            LintCode::FloatingOutput,
            Severity::Error,
            "netlist declares no \"outputs\"",
            "add OUTPUT(...)",
        );
        let j = d.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"NL005\""));
        assert!(j.contains("\"gate\":null"));
        assert!(j.contains("\\\"outputs\\\""));
    }

    #[test]
    fn netlist_error_maps_to_codes() {
        let e = NetlistError::NoOutputs;
        assert_eq!(
            Diagnostic::from_netlist_error(&e).code,
            LintCode::FloatingOutput
        );
        let e = NetlistError::ParseBench {
            line: 3,
            reason: "x".into(),
        };
        assert_eq!(
            Diagnostic::from_netlist_error(&e).code,
            LintCode::ParseError
        );
    }
}
