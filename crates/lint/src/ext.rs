//! The `netlist.lint()` extension method.

use incdx_netlist::Netlist;

use crate::diagnostic::Diagnostic;
use crate::engine::lint_netlist;

/// Extension trait putting [`lint_netlist`] on [`Netlist`] itself, so
/// call sites read `netlist.lint()`.
///
/// # Example
///
/// ```
/// use incdx_lint::LintExt;
///
/// let n = incdx_netlist::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// assert!(n.lint().is_empty());
/// # Ok::<(), incdx_netlist::NetlistError>(())
/// ```
pub trait LintExt {
    /// Runs every registered lint, returning findings sorted
    /// most-severe first.
    fn lint(&self) -> Vec<Diagnostic>;
}

impl LintExt for Netlist {
    fn lint(&self) -> Vec<Diagnostic> {
        lint_netlist(self)
    }
}
