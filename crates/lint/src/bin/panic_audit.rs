//! Workspace panic audit, run by `scripts/verify.sh`.
//!
//! Scans every first-party source root for panicking constructs outside
//! `#[cfg(test)]` code (strict set in `incdx-core`, base set elsewhere —
//! see [`incdx_lint::panic_audit`] for the policy) and exits non-zero if
//! any are found.
//!
//! Usage: `panic_audit [REPO_ROOT]` (defaults to the workspace this
//! binary was built from).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/lint -> workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
        });
    match incdx_lint::panic_audit::audit_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("panic audit clean: no panicking constructs in first-party non-test code");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("panic audit: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!(
                "panic audit failed to read sources under {}: {e}",
                root.display()
            );
            ExitCode::FAILURE
        }
    }
}
