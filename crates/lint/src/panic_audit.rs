//! Source-level audit: no panicking constructs in first-party non-test
//! code.
//!
//! This replaces the old `awk`/`grep` gate in `scripts/verify.sh`, which
//! had two defects: it only covered `incdx-core`, and it stopped
//! scanning a file at the *first* `#[cfg(test)]` occurrence — everything
//! after an early test module (including non-test code) went unchecked.
//! This scanner tracks `#[cfg(test)]` items by brace balance and resumes
//! scanning after each one, so interleaved test/non-test code is audited
//! correctly.
//!
//! Policy is tiered:
//!
//! * **strict** paths (the `incdx-core` engine) must be free of every
//!   panicking construct — `.unwrap(`, `.expect(`, `panic!(`,
//!   `unreachable!(`, `todo!(`, `unimplemented!(`, `dbg!(` — because the
//!   engine's contract is typed errors, never aborts;
//! * every other first-party crate may use targeted panics (generators
//!   and benches assert on internal invariants) but must never ship
//!   `todo!(`, `unimplemented!(`, or leftover `dbg!(` calls;
//! * `catch_unwind(` is denied in strict paths *except* at the
//!   sanctioned worker boundaries ([`UNWIND_SANCTIONED`]) — panic
//!   isolation lives in `run_parallel_with`'s workers and the frontier
//!   dispatcher's worker loop, and swallowing panics anywhere else in
//!   the engine would hide real bugs from the recovery accounting.
//!
//! A line ending in a `panic-audit: allow` comment is exempt; use it for
//! deliberate, reviewed exceptions.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Constructs denied everywhere in first-party non-test code.
pub const BASE_DENY: &[&str] = &["todo!(", "unimplemented!(", "dbg!("]; // panic-audit: allow

/// Additional constructs denied in strict (engine) paths.
pub const STRICT_DENY: &[&str] = &[".unwrap(", ".expect(", "panic!(", "unreachable!("]; // panic-audit: allow

/// Denied in strict paths outside the sanctioned worker boundary:
/// panic isolation is `run_parallel_with`'s job alone.
pub const UNWIND_DENY: &[&str] = &["catch_unwind("];

/// Strict-path files allowed to use `catch_unwind(` — the worker
/// boundaries where panic isolation is implemented and every recovery
/// is counted into the run's telemetry: the parallel screening workers
/// (`run_parallel_with`), the frontier-dispatcher worker loop, and the
/// serve daemon's per-job slice boundary (a panicking job fails alone
/// and increments `panics_isolated`).
pub const UNWIND_SANCTIONED: &[&str] = &[
    "crates/core/src/parallel.rs",
    "crates/core/src/dispatch.rs",
    "crates/serve/src/server.rs",
];

/// Repo-relative source roots audited under the strict policy: the
/// engine itself, the optimizer pre-pass that feeds it (a panic in
/// a function-preserving rewrite must degrade to a no-op, not take a
/// diagnosis run down), and the static substrates the engine now
/// consults in-loop — the analysis tables behind candidate pruning and
/// the SCOAP/collapsing passes behind traversal seeding and fault-class
/// reporting. The serve daemon is held to the same bar: a long-running
/// multi-tenant process whose contract is typed rejections and
/// degradations, never aborts.
pub const STRICT_ROOTS: &[&str] = &[
    "crates/core/src",
    "crates/opt/src",
    "crates/analysis/src",
    "crates/atpg/src",
    "crates/serve/src",
];

/// Repo-relative source roots audited under the base policy. `bin/` and
/// example code live under the same roots and are held to the same bar.
pub const BASE_ROOTS: &[&str] = &[
    "crates/netlist/src",
    "crates/sim/src",
    "crates/fault/src",
    "crates/gen/src",
    "crates/bench/src",
    "crates/lint/src",
    "src",
];

/// The opt-out marker; putting it in a trailing comment exempts a line.
pub const ALLOW_MARKER: &str = "panic-audit: allow";

/// One disallowed construct found in non-test code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The construct that matched.
    pub construct: &'static str,
    /// The offending line, trimmed.
    pub text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: `{}` in non-test code: {}",
            self.path.display(),
            self.line,
            self.construct,
            self.text
        )
    }
}

/// Audits every first-party source root under `repo_root`, returning all
/// violations sorted by path and line.
///
/// # Errors
///
/// Returns the first I/O error hit while walking or reading sources.
pub fn audit_workspace(repo_root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for (roots, strict) in [(STRICT_ROOTS, true), (BASE_ROOTS, false)] {
        for rel in roots {
            let root = repo_root.join(rel);
            if !root.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&root, &mut files)?;
            files.sort();
            for file in files {
                let src = fs::read_to_string(&file)?;
                let rel_path = file.strip_prefix(repo_root).unwrap_or(&file).to_path_buf();
                let deny = deny_for(strict, &rel_path);
                for (line, construct, text) in scan_source_with(&src, &deny) {
                    violations.push(Violation {
                        path: rel_path.clone(),
                        line,
                        construct,
                        text,
                    });
                }
            }
        }
    }
    violations.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The deny list applying to one repo-relative file under the given
/// tier: strict paths add the panicking constructs and — outside the
/// sanctioned worker boundary — `catch_unwind(`.
pub fn deny_for(strict: bool, rel_path: &Path) -> Vec<&'static str> {
    let mut deny: Vec<&'static str> = BASE_DENY.to_vec();
    if strict {
        deny.extend(STRICT_DENY);
        let normalized: String = rel_path
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if !UNWIND_SANCTIONED.contains(&normalized.as_str()) {
            deny.extend(UNWIND_DENY);
        }
    }
    deny
}

/// Scans one source file under the path-independent tier policy (no
/// `catch_unwind` sanctioning — use [`scan_source_with`] and
/// [`deny_for`] when the file's path is known).
pub fn scan_source(src: &str, strict: bool) -> Vec<(usize, &'static str, String)> {
    // Strict paths deny the base set too.
    let strict_deny: Vec<&'static str> = STRICT_DENY.iter().chain(BASE_DENY).copied().collect();
    let deny: &[&'static str] = if strict { &strict_deny } else { BASE_DENY };
    scan_source_with(src, deny)
}

/// Scans one source file against an explicit deny list, returning
/// `(line, construct, text)` for every denied construct outside
/// `#[cfg(test)]` items.
pub fn scan_source_with(src: &str, deny: &[&'static str]) -> Vec<(usize, &'static str, String)> {
    #[derive(Clone, Copy)]
    enum Mode {
        /// Auditing normal code.
        Code,
        /// Saw `#[cfg(test)]`; waiting for the item's opening brace (or a
        /// `;` meaning a braceless item like `mod tests;`).
        AwaitItem,
        /// Inside a `#[cfg(test)]` item at the given brace depth.
        Skipping(i64),
    }
    /// Transition for a line that follows (or contains) `#[cfg(test)]`
    /// but has not yet committed to a brace-delimited item.
    fn await_or_skip(code: &str, stay: Mode) -> Mode {
        if code.contains('{') {
            let depth = brace_delta(code);
            if depth > 0 {
                Mode::Skipping(depth)
            } else {
                // The whole item opened and closed on this line.
                Mode::Code
            }
        } else if code.contains(';') {
            // `#[cfg(test)] mod tests;` — nothing inline to skip.
            Mode::Code
        } else {
            stay
        }
    }

    let mut mode = Mode::Code;
    let mut found = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        // Strip line comments before both matching and brace counting;
        // doc-comment examples legitimately use `.unwrap()`.
        let code = match raw.find("//") {
            Some(i) => &raw[..i],
            None => raw,
        };
        match mode {
            Mode::Code => {
                if code.trim_start().starts_with("#[cfg(test)]") {
                    // The attribute and item (possibly the whole item)
                    // may share the line: `#[cfg(test)] mod t { .. }`.
                    mode = await_or_skip(code, Mode::AwaitItem);
                    continue;
                }
                if raw.contains(ALLOW_MARKER) {
                    continue;
                }
                for &construct in deny {
                    if code.contains(construct) {
                        found.push((idx + 1, construct, raw.trim().to_string()));
                    }
                }
            }
            Mode::AwaitItem => {
                mode = await_or_skip(code, Mode::AwaitItem);
            }
            Mode::Skipping(depth) => {
                let depth = depth + brace_delta(code);
                mode = if depth <= 0 {
                    Mode::Code
                } else {
                    Mode::Skipping(depth)
                };
            }
        }
    }
    found
}

/// Net brace depth change of a line, ignoring braces inside string and
/// char literals well enough for real-world Rust (escaped quotes and
/// `'{'` literals are handled; raw strings with unbalanced braces are
/// not, and none exist in this workspace).
fn brace_delta(code: &str) -> i64 {
    let mut delta = 0i64;
    let mut chars = code.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_str => {
                let _ = chars.next();
            }
            '"' => in_str = !in_str,
            '\'' if !in_str => {
                // Char literal or lifetime; consume a possible `'x'`.
                if let Some(&n) = chars.peek() {
                    if n == '\\' {
                        let _ = chars.next();
                        let _ = chars.next();
                        if chars.peek() == Some(&'\'') {
                            let _ = chars.next();
                        }
                    } else if chars.clone().nth(1) == Some('\'') {
                        let _ = chars.next();
                        let _ = chars.next();
                    }
                }
            }
            '{' if !in_str => delta += 1,
            '}' if !in_str => delta -= 1,
            _ => {}
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_in_strict_code() {
        let src = "fn f() {\n    let x = y.unwrap();\n}\n";
        let found = scan_source(src, true);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 2);
        assert_eq!(found[0].1, ".unwrap(");
    }

    #[test]
    fn base_tier_allows_unwrap_but_not_todo() {
        let src = "fn f() {\n    let x = y.unwrap();\n    todo!()\n}\n";
        let found = scan_source(src, false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, "todo!(");
    }

    #[test]
    fn test_modules_are_skipped_and_scanning_resumes_after() {
        // The old awk gate stopped at the first `#[cfg(test)]` forever;
        // the construct *after* the test module must still be caught.
        let src = "\
fn a() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn b() { y.unwrap(); }
";
        let found = scan_source(src, true);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 7, "only the post-module line is flagged");
    }

    #[test]
    fn multiple_test_modules_are_each_skipped() {
        let src = "\
#[cfg(test)]
mod t1 { fn a() { x.unwrap(); } }
fn live() { b.unwrap(); }
#[cfg(test)]
mod t2 { fn c() { d.unwrap(); } }
fn live2() { e.unwrap(); }
";
        let found = scan_source(src, true);
        let lines: Vec<usize> = found.iter().map(|f| f.0).collect();
        assert_eq!(lines, vec![3, 6]);
    }

    #[test]
    fn comments_and_allow_marker_are_exempt() {
        let src = "\
// x.unwrap() in a comment is fine
/// doc example: x.unwrap()
fn f() { x.unwrap(); } // panic-audit: allow
";
        assert!(scan_source(src, true).is_empty());
    }

    #[test]
    fn braces_in_strings_do_not_confuse_the_skipper() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { let s = \"}\"; }
    fn u() { x.unwrap(); }
}
fn live() { y.unwrap(); }
";
        let found = scan_source(src, true);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 6);
    }

    #[test]
    fn braceless_test_item_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { y.unwrap(); }\n";
        let found = scan_source(src, true);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 3);
    }

    #[test]
    fn catch_unwind_denied_outside_sanctioned_boundary() {
        let engine_file = Path::new("crates/core/src/session.rs");
        let worker_file = Path::new("crates/core/src/parallel.rs");
        let dispatch_file = Path::new("crates/core/src/dispatch.rs");
        let base_file = Path::new("crates/bench/src/lib.rs");
        assert!(deny_for(true, engine_file).contains(&"catch_unwind("));
        assert!(!deny_for(true, worker_file).contains(&"catch_unwind("));
        assert!(
            !deny_for(true, dispatch_file).contains(&"catch_unwind("),
            "the dispatcher worker loop is the second sanctioned boundary"
        );
        let serve_file = Path::new("crates/serve/src/server.rs");
        let serve_other = Path::new("crates/serve/src/spool.rs");
        assert!(
            !deny_for(true, serve_file).contains(&"catch_unwind("),
            "the daemon's slice boundary is the third sanctioned boundary"
        );
        assert!(
            deny_for(true, serve_other).contains(&"catch_unwind("),
            "only server.rs is sanctioned in the serve crate"
        );
        assert!(!deny_for(false, base_file).contains(&"catch_unwind("));

        let src = "fn f() {\n    let r = std::panic::catch_unwind(|| work());\n}\n";
        let found = scan_source_with(src, &deny_for(true, engine_file));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, "catch_unwind(");
        assert!(scan_source_with(src, &deny_for(true, worker_file)).is_empty());
    }

    #[test]
    fn char_literal_braces_are_ignored() {
        assert_eq!(brace_delta("let c = '{';"), 0);
        assert_eq!(brace_delta("fn f() {"), 1);
        assert_eq!(brace_delta("format!(\"{{x}}\")"), 0);
    }
}
