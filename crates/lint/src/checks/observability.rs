//! `NL011`: lines that reach primary outputs structurally but whose
//! value changes are provably invisible at every one of them.
//!
//! Dead cones (`NL004`) catch lines with *no* structural path to any
//! output. This lint catches the subtler case: a path exists, but every
//! path is blocked by a constant side-input — re-propagating ternary
//! constants with the line forced to an unknown value
//! ([`incdx_analysis::observable_changes`]) pins every downstream gate
//! to the same constant it held before. No input assignment can ever
//! distinguish the line's value at an output, so a fault on it is
//! statically untestable and the diagnosis engine can never implicate
//! or repair it.

use incdx_analysis::{observable_changes, Constants, PoReach};
use incdx_netlist::Netlist;

use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL011`: statically unobservable (untestable) line.
pub struct UnobservableLine;

impl Lint for UnobservableLine {
    fn code(&self) -> LintCode {
        LintCode::UnobservableLine
    }

    fn description(&self) -> &'static str {
        "line reaches outputs but constant side-inputs block every path"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        // Cyclic structures are NL001's finding; the fixed-point facts
        // below are only meaningful on a DAG.
        if !netlist.is_acyclic() {
            return;
        }
        let consts = Constants::compute(netlist);
        // Fast path: with no proven-constant line anywhere, observability
        // equals reachability, and reach-empty lines are NL004's finding.
        if consts.const_lines() == 0 {
            return;
        }
        let reach = PoReach::compute(netlist);
        for id in netlist.ids() {
            if reach.reach(id).is_empty() {
                continue; // NL004 (dead cone) already reports these.
            }
            let cone = netlist.fanout_cone_sorted(id);
            if observable_changes(netlist, &consts, id, &cone).is_empty() {
                out.push(Diagnostic::at(
                    LintCode::UnobservableLine,
                    Severity::Info,
                    netlist,
                    id,
                    format!(
                        "line `{}` reaches primary outputs but no change on it is \
                         observable: constant side-inputs block every path",
                        wire_name(netlist, id)
                    ),
                    "faults here are statically untestable; simplify the blocking constant logic",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::{GateKind, NetlistBuilder};

    fn run(netlist: &Netlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        UnobservableLine.check(netlist, &mut out);
        out
    }

    #[test]
    fn input_masked_by_constant_is_flagged() {
        // a only reaches the output through AND(a, 0), which is pinned.
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let c0 = b.add_gate(GateKind::Const0, vec![]);
        let g = b.add_gate(GateKind::And, vec![a, c0]);
        b.add_output(g);
        let n = b.build().expect("valid");
        let out = run(&n);
        assert!(
            out.iter().any(|d| d.gate == Some(a)),
            "masked input must be flagged: {out:?}"
        );
        // The PO driver itself is observable (it *is* the output).
        assert!(out.iter().all(|d| d.gate != Some(g)));
        assert!(out.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn constant_free_netlist_is_clean() {
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let x = b.add_input("x");
        let g = b.add_gate(GateKind::Nand, vec![a, x]);
        b.add_output(g);
        let n = b.build().expect("valid");
        assert!(run(&n).is_empty());
    }

    #[test]
    fn observable_despite_other_constants_is_clean() {
        // The constant feeds an OR identity: a stays observable.
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let c0 = b.add_gate(GateKind::Const0, vec![]);
        let g = b.add_gate(GateKind::Or, vec![a, c0]);
        b.add_output(g);
        let n = b.build().expect("valid");
        assert!(run(&n).iter().all(|d| d.gate != Some(a)));
    }
}
