//! Name-level lints: multi-driven wires (`NL003`) and shadowed or
//! ambiguous wire names (`NL006`).

use std::collections::HashMap;

use incdx_netlist::{GateId, Netlist};

use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL003`: two gates declare the same wire name.
///
/// Each in-memory gate drives exactly one line, so a literal short is
/// unrepresentable — but two gates carrying the same *name* is the
/// netlist-capture form of a multi-driven wire: any tool resolving the
/// name (the `.bench` writer, fault-site reports, user scripts) will
/// silently pick one of the two drivers.
pub struct MultiDrivenWire;

impl Lint for MultiDrivenWire {
    fn code(&self) -> LintCode {
        LintCode::MultiDrivenWire
    }

    fn description(&self) -> &'static str {
        "two gates declare the same wire name (two drivers)"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let mut first_by_name: HashMap<&str, usize> = HashMap::new();
        for (id, _) in netlist.iter() {
            let Some(name) = netlist.name(id) else {
                continue;
            };
            match first_by_name.entry(name) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id.index());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    out.push(Diagnostic::at(
                        LintCode::MultiDrivenWire,
                        Severity::Error,
                        netlist,
                        id,
                        format!(
                            "wire `{name}` is driven by both gate {} and gate {}",
                            e.get(),
                            id.index()
                        ),
                        "rename one of the drivers or delete the redundant one",
                    ));
                }
            }
        }
    }
}

/// `NL006`: declared names that shadow another line's synthetic `n<id>`
/// name, or collide with a different name case-insensitively.
///
/// The `.bench` writer emits `n<id>` for unnamed lines, so a user-chosen
/// name like `n7` attached to a gate *other than* gate 7 makes the
/// written file ambiguous; likewise `G1` vs `g1` survives the
/// case-preserving parser but breaks every case-folding downstream tool.
pub struct ShadowedName;

impl Lint for ShadowedName {
    fn code(&self) -> LintCode {
        LintCode::ShadowedName
    }

    fn description(&self) -> &'static str {
        "wire name shadows a synthetic name or collides case-insensitively"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let n = netlist.len();
        let mut first_by_folded: HashMap<String, usize> = HashMap::new();
        for (id, _) in netlist.iter() {
            let Some(name) = netlist.name(id) else {
                continue;
            };
            // `n<k>` for a different, unnamed line k shadows that line's
            // synthetic name in written-out `.bench` text.
            if let Some(k) = synthetic_index(name) {
                if k != id.index() && k < n && netlist.name(GateId::from_index(k)).is_none() {
                    out.push(Diagnostic::at(
                        LintCode::ShadowedName,
                        Severity::Warning,
                        netlist,
                        id,
                        format!(
                            "name `{name}` on gate {} shadows the synthetic name of unnamed gate {k}",
                            id.index()
                        ),
                        "avoid `n<digits>` names that do not match the line's own id",
                    ));
                }
            }
            let folded = name.to_ascii_lowercase();
            match first_by_folded.entry(folded) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(id.index());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let other = *e.get();
                    let other_name = wire_name(netlist, GateId::from_index(other));
                    // Exact duplicates are NL003's finding, not ours.
                    if other_name != name {
                        out.push(Diagnostic::at(
                            LintCode::ShadowedName,
                            Severity::Warning,
                            netlist,
                            id,
                            format!(
                                "name `{name}` collides with `{other_name}` (gate {other}) \
                                 when case is ignored"
                            ),
                            "rename so wires stay distinct under case-folding tools",
                        ));
                    }
                }
            }
        }
    }
}

/// Parses a synthetic `n<digits>` name, returning the index.
fn synthetic_index(name: &str) -> Option<usize> {
    let digits = name.strip_prefix('n')?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}
