//! Observability lints: dead cones (`NL004`) and floating or degenerate
//! primary outputs (`NL005`).

use incdx_netlist::{DenseBitSet, GateId, GateKind, Netlist};

use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL004`: gates unreachable from every primary output.
///
/// Reachability is computed backward from the output list, crossing DFF
/// fanin edges (state that eventually feeds an output is observable over
/// multiple cycles, and under full scan every flip-flop is a
/// pseudo-output anyway). An unused primary input is only an advisory —
/// benchmarks routinely carry spare pins — but unreachable *logic* can
/// never influence any measured response, so faults inside it are
/// undiagnosable and the area is wasted.
pub struct DeadCone;

impl Lint for DeadCone {
    fn code(&self) -> LintCode {
        LintCode::DeadCone
    }

    fn description(&self) -> &'static str {
        "gate unreachable from every primary output"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let n = netlist.len();
        if n == 0 {
            return;
        }
        let mut live = DenseBitSet::new(n);
        let mut stack: Vec<GateId> = Vec::new();
        for &o in netlist.outputs() {
            if o.index() < n && live.insert(o.index()) {
                stack.push(o);
            }
        }
        while let Some(g) = stack.pop() {
            for &f in netlist.gate(g).fanins() {
                if f.index() < n && live.insert(f.index()) {
                    stack.push(f);
                }
            }
        }
        for (id, gate) in netlist.iter() {
            if live.contains(id.index()) {
                continue;
            }
            if gate.kind() == GateKind::Input {
                out.push(Diagnostic::at(
                    LintCode::DeadCone,
                    Severity::Info,
                    netlist,
                    id,
                    format!(
                        "primary input `{}` drives no primary output",
                        wire_name(netlist, id)
                    ),
                    "remove the unused input or connect it",
                ));
            } else {
                out.push(Diagnostic::at(
                    LintCode::DeadCone,
                    Severity::Warning,
                    netlist,
                    id,
                    format!(
                        "gate `{}` is unreachable from every primary output",
                        wire_name(netlist, id)
                    ),
                    "delete the dead cone or route it to an output",
                ));
            }
        }
    }
}

/// `NL005`: floating or degenerate primary outputs — an empty output
/// list (nothing is observable at all), an output that is a bare primary
/// input or constant (no logic between pin and pad), or the same line
/// listed as an output more than once.
pub struct FloatingOutput;

impl Lint for FloatingOutput {
    fn code(&self) -> LintCode {
        LintCode::FloatingOutput
    }

    fn description(&self) -> &'static str {
        "floating or degenerate primary output list"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let n = netlist.len();
        if netlist.outputs().is_empty() {
            out.push(Diagnostic::global(
                LintCode::FloatingOutput,
                Severity::Error,
                "netlist declares no primary outputs; no line is observable",
                "declare at least one OUTPUT",
            ));
            return;
        }
        let mut seen = DenseBitSet::new(n);
        for &o in netlist.outputs() {
            if o.index() >= n {
                continue; // NL002's finding.
            }
            if !seen.insert(o.index()) {
                out.push(Diagnostic::at(
                    LintCode::FloatingOutput,
                    Severity::Info,
                    netlist,
                    o,
                    format!(
                        "line `{}` is listed as a primary output more than once",
                        wire_name(netlist, o)
                    ),
                    "drop the duplicate OUTPUT declaration",
                ));
                continue;
            }
            match netlist.gate(o).kind() {
                GateKind::Const0 | GateKind::Const1 => {
                    out.push(Diagnostic::at(
                        LintCode::FloatingOutput,
                        Severity::Warning,
                        netlist,
                        o,
                        format!(
                            "primary output `{}` is a constant and carries no information",
                            wire_name(netlist, o)
                        ),
                        "drive the output from logic or remove it",
                    ));
                }
                _ => {}
            }
        }
    }
}
