//! `NL010`: netlists whose fanout-free-cone abstraction is degenerate.
//!
//! Two-level hierarchical diagnosis (`RectifyConfig::hierarchical`)
//! leans on [`Abstraction::build`] collapsing fanout-free regions into
//! super-gates; when nothing (or almost nothing) collapses, phase 1
//! diagnoses a netlist the same size as the concrete one and the engine
//! falls back to flat search — the mode is pure overhead. The lint
//! surfaces that ahead of time as an advisory, so harnesses can drop
//! `--hierarchical` for such circuits instead of discovering the
//! fallback in the run telemetry.

use incdx_netlist::{Abstraction, GateKind, Netlist};

use crate::diagnostic::{Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// Logic-gate count below which hierarchical diagnosis is pointless
/// anyway (the flat search is already cheap), so the lint stays quiet.
const MIN_LOGIC_GATES: usize = 64;

/// Collapse ratio (abstract gates / concrete gates) at or above which an
/// abstraction is reported as having no useful leverage even when a few
/// super-gates formed.
const NEAR_DEGENERATE_RATIO: f64 = 0.99;

/// `NL010`: the fanout-free-cone abstraction collapses (almost) nothing,
/// so hierarchical diagnosis degrades to the flat engine.
pub struct DegenerateAbstraction;

impl Lint for DegenerateAbstraction {
    fn code(&self) -> LintCode {
        LintCode::DegenerateAbstraction
    }

    fn description(&self) -> &'static str {
        "abstraction with no leverage: hierarchical diagnosis would fall back to flat search"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let logic = netlist.iter().filter(|(_, g)| g.kind().is_logic()).count();
        if logic < MIN_LOGIC_GATES {
            return;
        }
        // `Abstraction::build` assumes a structurally sound netlist
        // (valid topo order, in-range fanins); the hazardous structures
        // admitted by `from_parts_unchecked` are NL001/NL002/NL007
        // territory, not this lint's.
        let sound = netlist.is_acyclic()
            && !netlist.outputs().is_empty()
            && netlist.outputs().iter().all(|o| o.index() < netlist.len())
            && netlist
                .iter()
                .all(|(_, g)| g.fanins().iter().all(|f| f.index() < netlist.len()))
            && netlist.iter().all(|(_, g)| match g.kind() {
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => true,
                GateKind::Not | GateKind::Buf => g.fanins().len() == 1,
                _ => !g.fanins().is_empty(),
            });
        if !sound {
            return;
        }
        let abs = Abstraction::build(netlist);
        let ratio = abs.map().collapse_ratio();
        if abs.is_degenerate() {
            out.push(Diagnostic::global(
                LintCode::DegenerateAbstraction,
                Severity::Info,
                format!(
                    "no fanout-free region collapses into a super-gate \
                     ({logic} logic gates, collapse ratio 1.00)"
                ),
                "run diagnosis flat: hierarchical mode would fall back after building the map",
            ));
        } else if ratio >= NEAR_DEGENERATE_RATIO {
            out.push(Diagnostic::global(
                LintCode::DegenerateAbstraction,
                Severity::Info,
                format!(
                    "abstraction leverage is negligible: {} super-gates over \
                     {logic} logic gates (collapse ratio {ratio:.2})",
                    abs.map().super_gates()
                ),
                "prefer flat diagnosis: phase 1 would search a netlist as large as the concrete one",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use incdx_netlist::expand_xor_to_nand;

    use super::*;

    fn run(netlist: &Netlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        DegenerateAbstraction.check(netlist, &mut out);
        out
    }

    #[test]
    fn parity_tree_has_leverage_and_lints_clean() {
        let n = incdx_gen::parity_tree(128);
        assert!(run(&n).is_empty());
    }

    #[test]
    fn nand_expanded_parity_is_flagged_as_info() {
        // XOR→NAND expansion introduces internal multi-fanout everywhere,
        // so fanout-free cones stop collapsing.
        let n = expand_xor_to_nand(&incdx_gen::parity_tree(128)).unwrap();
        let out = run(&n);
        assert_eq!(out.len(), 1, "expected one finding, got {out:?}");
        assert_eq!(out[0].code, LintCode::DegenerateAbstraction);
        assert_eq!(out[0].severity, Severity::Info);
        assert_eq!(out[0].gate, None);
    }

    #[test]
    fn small_netlists_stay_quiet() {
        let n =
            incdx_netlist::parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        assert!(run(&n).is_empty());
    }

    #[test]
    fn hazardous_structures_are_skipped_without_panicking() {
        use incdx_netlist::{Gate, GateId};
        // 70 logic gates whose fanins point out of range — NL002's
        // business; this lint must stay total and silent.
        let gates: Vec<Gate> = (0..70)
            .map(|_| Gate::new(GateKind::And, vec![GateId(900), GateId(901)]))
            .collect();
        let n = Netlist::from_parts_unchecked(gates, Vec::new(), vec![GateId(0)]);
        assert!(run(&n).is_empty());
    }
}
