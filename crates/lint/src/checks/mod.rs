//! The built-in lint analyses, grouped by the kind of structure they
//! inspect. Every module hosts one or more [`crate::Lint`] impls; the
//! full set is assembled by [`crate::registry`].

pub mod abstraction;
pub mod names;
pub mod observability;
pub mod reach;
pub mod redundant;
pub mod scan_chain;
pub mod structure;
pub mod xregion;
