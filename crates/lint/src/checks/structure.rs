//! Graph-structural lints: combinational cycles (`NL001`), undriven
//! wires (`NL002`), and per-kind arity violations (`NL007`).

use incdx_netlist::{GateId, GateKind, Netlist};

use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL001`: detects combinational cycles as strongly connected
/// components of the combinational edge graph, via an iterative Tarjan
/// SCC pass (explicit stacks, no recursion — the analysis must survive
/// pathological million-gate chains without blowing the call stack).
pub struct CombinationalCycle;

impl Lint for CombinationalCycle {
    fn code(&self) -> LintCode {
        LintCode::CombinationalCycle
    }

    fn description(&self) -> &'static str {
        "combinational feedback loop (simulation result undefined)"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for scc in cyclic_sccs(netlist) {
            let anchor = scc.iter().copied().min().expect("non-empty SCC");
            let mut members: Vec<String> =
                scc.iter().take(4).map(|&g| wire_name(netlist, g)).collect();
            if scc.len() > members.len() {
                members.push("…".into());
            }
            let message = if scc.len() == 1 {
                format!("gate `{}` feeds itself combinationally", members[0])
            } else {
                format!(
                    "{} gates form a combinational cycle ({})",
                    scc.len(),
                    members.join(" → ")
                )
            };
            out.push(Diagnostic::at(
                LintCode::CombinationalCycle,
                Severity::Error,
                netlist,
                anchor,
                message,
                "break the loop with a flip-flop or re-route the feedback path",
            ));
        }
    }
}

/// All strongly connected components that contain a cycle: size > 1, or
/// a single gate with a combinational self-edge. Components are returned
/// in ascending order of their smallest member id.
fn cyclic_sccs(netlist: &Netlist) -> Vec<Vec<GateId>> {
    let n = netlist.len();
    // Combinational successor edges: `u -> v` when gate v reads line u
    // and v is not a DFF (a DFF's fanin edge is sequential and cannot
    // close a combinational loop). Out-of-range fanins have no edge.
    let succ = |u: usize| {
        netlist
            .fanouts(GateId::from_index(u))
            .iter()
            .filter(|&&v| netlist.gate(v).kind() != GateKind::Dff)
            .map(|&v| v.index())
    };

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    // The explicit DFS call stack: (node, iterator position into succ).
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut sccs: Vec<Vec<GateId>> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root as u32, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            let v = v as usize;
            if let Some(w) = succ(v).nth(*pos) {
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow") as usize;
                        on_stack[w] = false;
                        scc.push(GateId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = scc.len() > 1 || succ(scc[0].index()).any(|w| w == scc[0].index());
                    if cyclic {
                        scc.sort();
                        sccs.push(scc);
                    }
                }
            }
        }
    }
    sccs.sort_by_key(|scc| scc[0]);
    sccs
}

/// `NL002`: fanin or primary-output references to lines no gate drives.
///
/// The `.bench` parser resolves names, so in the in-memory form an
/// undriven wire appears as a reference past the end of the gate list —
/// the shape produced by dropping a driver from a netlist under edit.
pub struct UndrivenWire;

impl Lint for UndrivenWire {
    fn code(&self) -> LintCode {
        LintCode::UndrivenWire
    }

    fn description(&self) -> &'static str {
        "fanin or output references a line no gate drives"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let n = netlist.len();
        for (id, gate) in netlist.iter() {
            for (slot, f) in gate.fanins().iter().enumerate() {
                if f.index() >= n {
                    out.push(Diagnostic::at(
                        LintCode::UndrivenWire,
                        Severity::Error,
                        netlist,
                        id,
                        format!(
                            "fanin {slot} references line {} which no gate drives",
                            f.index()
                        ),
                        "connect the fanin to a driven line or add the missing driver",
                    ));
                }
            }
        }
        for &o in netlist.outputs() {
            if o.index() >= n {
                out.push(Diagnostic::global(
                    LintCode::UndrivenWire,
                    Severity::Error,
                    format!(
                        "primary output references line {} which no gate drives",
                        o.index()
                    ),
                    "point the OUTPUT declaration at a driven line",
                ));
            }
        }
    }
}

/// `NL007`: fanin counts outside the gate kind's legal arity range
/// (e.g. a 3-input NOT, a 1-input XOR, an AND with no fanins).
pub struct ArityViolation;

impl Lint for ArityViolation {
    fn code(&self) -> LintCode {
        LintCode::ArityViolation
    }

    fn description(&self) -> &'static str {
        "fanin count outside the gate kind's arity range"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        for (id, gate) in netlist.iter() {
            let (lo, hi) = gate.kind().arity();
            let found = gate.fanins().len();
            if found < lo || found > hi {
                let range = if hi == usize::MAX {
                    format!("at least {lo}")
                } else if lo == hi {
                    format!("exactly {lo}")
                } else {
                    format!("{lo}..={hi}")
                };
                out.push(Diagnostic::at(
                    LintCode::ArityViolation,
                    Severity::Error,
                    netlist,
                    id,
                    format!(
                        "{:?} gate has {found} fanins, expected {range}",
                        gate.kind()
                    ),
                    "fix the fanin list or change the gate kind",
                ));
            }
        }
    }
}
