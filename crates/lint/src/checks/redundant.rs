//! `NL012`: gates provably equivalent to (the complement of) a single
//! fanin by static implication.
//!
//! Two proofs are used, both purely structural:
//!
//! * **Implied identity** — ternary constant propagation
//!   ([`incdx_analysis::Constants`]) proves every fanin but one constant
//!   while the gate itself still varies. For AND/OR families the
//!   surviving constants are then necessarily the identity element (a
//!   controlling constant would pin the whole gate — `NL008`'s finding),
//!   so the gate is a buffer or inverter of the one varying fanin. For
//!   XOR/XNOR the parity of the constant ones decides the polarity.
//! * **Duplicate fanins** — AND/OR of the same line repeated is that
//!   line; NAND/NOR is its complement.
//!
//! Either way the gate adds no logic: the netlist simulates and
//! diagnoses identically with the gate replaced by a wire (or an
//! inverter), and every candidate correction on it aliases one on its
//! surviving fanin.

use incdx_analysis::{Constants, Ternary};
use incdx_netlist::{GateId, GateKind, Netlist};

use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL012`: provably redundant gate (wire-equivalent by implication).
pub struct RedundantGate;

impl Lint for RedundantGate {
    fn code(&self) -> LintCode {
        LintCode::RedundantGate
    }

    fn description(&self) -> &'static str {
        "gate provably equivalent to (the complement of) one fanin"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        if !netlist.is_acyclic() {
            return;
        }
        let n = netlist.len();
        let consts = Constants::compute(netlist);
        for (id, gate) in netlist.iter() {
            let kind = gate.kind();
            if !kind.is_logic() || gate.fanins().len() < 2 {
                continue;
            }
            let fanins = gate.fanins();
            if fanins.iter().any(|f| f.index() >= n) {
                continue; // NL002's finding.
            }
            // Duplicate-fanin proof: AND/OR(a, a, …) ≡ a, NAND/NOR ≡ ¬a.
            if fanins.windows(2).all(|w| w[0] == w[1]) {
                let inverted = match kind {
                    GateKind::And | GateKind::Or => false,
                    GateKind::Nand | GateKind::Nor => true,
                    _ => continue, // XOR parity depends on arity; skip.
                };
                push(
                    out,
                    netlist,
                    id,
                    fanins[0],
                    inverted,
                    "all fanins are the same line",
                );
                continue;
            }
            // Implied-identity proof: exactly one fanin still varies and
            // the gate itself is not pinned (a pinned gate is NL008).
            if consts.value(id).constant().is_some() {
                continue;
            }
            let mut varying = fanins
                .iter()
                .filter(|f| consts.value(**f).constant().is_none());
            let (Some(&survivor), None) = (varying.next(), varying.next()) else {
                continue;
            };
            let const_ones = fanins
                .iter()
                .filter(|&&f| consts.value(f) == Ternary::Const1)
                .count();
            let inverted = match kind {
                GateKind::And | GateKind::Or => false,
                GateKind::Nand | GateKind::Nor => true,
                GateKind::Xor => const_ones % 2 == 1,
                GateKind::Xnor => const_ones % 2 == 0,
                _ => continue,
            };
            push(
                out,
                netlist,
                id,
                survivor,
                inverted,
                "every other fanin is a proven constant at the identity",
            );
        }
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    netlist: &Netlist,
    id: GateId,
    survivor: GateId,
    inverted: bool,
    why: &str,
) {
    let relation = if inverted {
        "the complement of"
    } else {
        "equal to"
    };
    out.push(Diagnostic::at(
        LintCode::RedundantGate,
        Severity::Info,
        netlist,
        id,
        format!(
            "gate `{}` is provably {relation} `{}`: {why}",
            wire_name(netlist, id),
            wire_name(netlist, survivor),
        ),
        if inverted {
            "replace the gate with an inverter of the surviving fanin"
        } else {
            "replace the gate with a wire to the surviving fanin"
        },
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::NetlistBuilder;

    fn run(netlist: &Netlist) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        RedundantGate.check(netlist, &mut out);
        out
    }

    #[test]
    fn and_with_const1_side_is_redundant() {
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let c1 = b.add_gate(GateKind::Const1, vec![]);
        let g = b.add_named_gate(GateKind::And, vec![a, c1], "g");
        b.add_output(g);
        let n = b.build().expect("valid");
        let out = run(&n);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("equal to `a`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn xor_parity_decides_polarity() {
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let c1 = b.add_gate(GateKind::Const1, vec![]);
        let g = b.add_named_gate(GateKind::Xor, vec![a, c1], "g");
        b.add_output(g);
        let n = b.build().expect("valid");
        let out = run(&n);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("the complement of `a`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn duplicate_fanins_are_redundant() {
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let g = b.add_named_gate(GateKind::Nor, vec![a, a], "g");
        b.add_output(g);
        let n = b.build().expect("valid");
        let out = run(&n);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("the complement of `a`"));
    }

    #[test]
    fn genuine_two_input_logic_is_clean() {
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let x = b.add_input("x");
        let g = b.add_gate(GateKind::And, vec![a, x]);
        b.add_output(g);
        let n = b.build().expect("valid");
        assert!(run(&n).is_empty());
    }

    #[test]
    fn controlling_constant_is_not_reported_here() {
        // AND with a Const0 side is pinned — NL008's finding, not NL012.
        let mut b = NetlistBuilder::new();
        let a = b.add_input("a");
        let c0 = b.add_gate(GateKind::Const0, vec![]);
        let g = b.add_gate(GateKind::And, vec![a, c0]);
        b.add_output(g);
        let n = b.build().expect("valid");
        assert!(run(&n).is_empty());
    }
}
