//! `NL008`: regions that cannot carry an X — constant logic under
//! 3-valued propagation.
//!
//! The engine's 5-valued D-calculus (see `incdx_sim::logic5`) factors
//! into a good-machine and a faulty-machine 3-valued component. Driving
//! every controllable line (primary inputs, scan flip-flop outputs) to X
//! and propagating forward partitions the netlist into *X-capable* lines
//! — those an input assignment can still steer — and lines that evaluate
//! to a constant no matter what. A fault effect (`D`/`D̄`) can never be
//! excited on a constant line, so the diagnosis engine is structurally
//! blind inside such a region; the lint surfaces them as advisories.

use incdx_netlist::{GateKind, Netlist};
use incdx_sim::logic5::V3;

use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL008`: logic whose output is constant under 3-valued propagation
/// with all controllable lines at X.
pub struct ConstantRegion;

impl Lint for ConstantRegion {
    fn code(&self) -> LintCode {
        LintCode::ConstantRegion
    }

    fn description(&self) -> &'static str {
        "logic that is constant under 3-valued propagation (not X-capable)"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let values = propagate_x(netlist);
        for (id, gate) in netlist.iter() {
            if !gate.kind().is_logic() {
                continue;
            }
            let v = values[id.index()];
            if v == V3::X {
                continue;
            }
            let masked = gate
                .fanins()
                .iter()
                .any(|f| f.index() < netlist.len() && values[f.index()] == V3::X);
            let bit = if v == V3::One { 1 } else { 0 };
            let message = if masked {
                format!(
                    "gate `{}` always evaluates to {bit}: a constant fanin masks its X-capable inputs",
                    wire_name(netlist, id)
                )
            } else {
                format!(
                    "gate `{}` always evaluates to {bit}: its entire fanin cone is constant",
                    wire_name(netlist, id)
                )
            };
            out.push(Diagnostic::at(
                LintCode::ConstantRegion,
                Severity::Info,
                netlist,
                id,
                message,
                "faults here cannot be excited; simplify the constant logic away",
            ));
        }
    }
}

/// Propagates 3-valued values in topological order: primary inputs and
/// flip-flop outputs are X (controllable / unknown), constants are their
/// values, and logic folds its fanins. Out-of-range fanins and gates on
/// combinational cycles (possible via `from_parts_unchecked`) read the X
/// default, so the pass is total on hazardous structures.
pub fn propagate_x(netlist: &Netlist) -> Vec<V3> {
    let n = netlist.len();
    let mut values = vec![V3::X; n];
    for &id in netlist.topo_order() {
        let gate = netlist.gate(id);
        let v = match gate.kind() {
            GateKind::Input | GateKind::Dff => V3::X,
            GateKind::Const0 => V3::Zero,
            GateKind::Const1 => V3::One,
            kind => {
                let mut fanins = gate.fanins().iter().map(|f| {
                    if f.index() < n {
                        values[f.index()]
                    } else {
                        V3::X
                    }
                });
                match kind {
                    GateKind::Not => fanins.next().unwrap_or(V3::X).not(),
                    GateKind::And => fanins.fold(V3::One, V3::and),
                    GateKind::Nand => fanins.fold(V3::One, V3::and).not(),
                    GateKind::Or => fanins.fold(V3::Zero, V3::or),
                    GateKind::Nor => fanins.fold(V3::Zero, V3::or).not(),
                    GateKind::Xor => fanins.fold(V3::Zero, V3::xor),
                    GateKind::Xnor => fanins.fold(V3::Zero, V3::xor).not(),
                    // Buf, plus the non-logic kinds handled above (kept
                    // total so `from_parts_unchecked` structures with
                    // surprising shapes still evaluate).
                    _ => fanins.next().unwrap_or(V3::X),
                }
            }
        };
        values[id.index()] = v;
    }
    values
}
