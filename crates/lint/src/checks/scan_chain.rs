//! `NL009`: full-scan consistency for sequential netlists.
//!
//! The paper's sequential flow assumes *full scan*: every flip-flop is
//! directly loadable and observable through the scan chain, which is
//! what lets `scan_convert` treat each DFF output as a pseudo primary
//! input and each DFF data input as a pseudo primary output. Two shapes
//! break that assumption in practice and this lint reports both:
//!
//! * a flip-flop whose data-input cone is constant — the scan cell can
//!   be *loaded* with either value but every functional capture writes
//!   the same bit, so capture cycles carry no information through it;
//! * a flip-flop whose output reaches neither a primary output nor any
//!   flip-flop data input — its state is captured by nothing and the
//!   pseudo-input created for it during scan conversion is dead weight.

use incdx_netlist::{DenseBitSet, GateId, GateKind, Netlist};
use incdx_sim::logic5::V3;

use crate::checks::xregion::propagate_x;
use crate::diagnostic::{wire_name, Diagnostic, LintCode, Severity};
use crate::engine::Lint;

/// `NL009`: scan-chain consistency (constant loads, unobservable state).
pub struct ScanChain;

impl Lint for ScanChain {
    fn code(&self) -> LintCode {
        LintCode::ScanChain
    }

    fn description(&self) -> &'static str {
        "full-scan consistency: constant flip-flop loads, unobservable state"
    }

    fn check(&self, netlist: &Netlist, out: &mut Vec<Diagnostic>) {
        let dffs = netlist.dffs();
        if dffs.is_empty() {
            return;
        }
        let n = netlist.len();
        let values = propagate_x(netlist);
        for &d in &dffs {
            let Some(&data) = netlist.gate(d).fanins().first() else {
                continue; // Arity violation, NL007's finding.
            };
            if data.index() < n && values[data.index()] != V3::X {
                let bit = if values[data.index()] == V3::One {
                    1
                } else {
                    0
                };
                out.push(Diagnostic::at(
                    LintCode::ScanChain,
                    Severity::Warning,
                    netlist,
                    d,
                    format!(
                        "flip-flop `{}` always captures the constant {bit}",
                        wire_name(netlist, d)
                    ),
                    "replace the flip-flop with the constant or fix its data cone",
                ));
            }
        }
        // Forward reachability from each DFF output, stopping at DFF
        // readers (the next scan cell observes the value) and primary
        // outputs. Shared visited set is not possible — observability is
        // per-source — but one BFS per DFF over the fanout graph keeps
        // this linear in practice (DFF counts are small next to gates).
        let po: DenseBitSet = {
            let mut s = DenseBitSet::new(n);
            for &o in netlist.outputs() {
                if o.index() < n {
                    s.insert(o.index());
                }
            }
            s
        };
        for &d in &dffs {
            if !observable(netlist, d, &po) {
                out.push(Diagnostic::at(
                    LintCode::ScanChain,
                    Severity::Warning,
                    netlist,
                    d,
                    format!(
                        "state of flip-flop `{}` reaches no primary output and no flip-flop",
                        wire_name(netlist, d)
                    ),
                    "route the state somewhere observable or drop the flip-flop",
                ));
            }
        }
    }
}

/// Does `from`'s value reach a primary output or any flip-flop data
/// input through combinational logic?
fn observable(netlist: &Netlist, from: GateId, po: &DenseBitSet) -> bool {
    let n = netlist.len();
    let mut visited = DenseBitSet::new(n);
    let mut stack = vec![from];
    visited.insert(from.index());
    while let Some(g) = stack.pop() {
        if po.contains(g.index()) {
            return true;
        }
        for &r in netlist.fanouts(g) {
            if netlist.gate(r).kind() == GateKind::Dff {
                // A flip-flop captures the value: observable on the next
                // scan-out (do not traverse through the sequential edge).
                if r != from {
                    return true;
                }
                continue;
            }
            if visited.insert(r.index()) {
                stack.push(r);
            }
        }
    }
    false
}
