//! Property tests of the optimizer passes: function preservation pass by
//! pass, and idempotence of the simplification pipeline.

use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::Netlist;
use incdx_opt::{
    collapse_chains, dedupe_structural, optimize_for_area, propagate_constants, sweep_dead,
    OptConfig,
};
use incdx_sim::{PackedMatrix, Response, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 6,
            gates: 50,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        },
        seed,
    )
}

fn equivalent(a: &Netlist, b: &Netlist, seed: u64) -> bool {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return false;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pi = PackedMatrix::random(a.inputs().len(), 256, &mut rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(a, &sim.run(a, &pi));
    let vals = sim.run(b, &pi);
    Response::compare(b, &vals, &spec).matches()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn each_pass_preserves_function(seed in 0u64..300) {
        let n = dag(seed);
        prop_assert!(equivalent(&n, &propagate_constants(&n), seed), "constants");
        prop_assert!(equivalent(&n, &collapse_chains(&n), seed), "chains");
        prop_assert!(equivalent(&n, &dedupe_structural(&n), seed), "dedupe");
    }

    #[test]
    fn sweep_preserves_function_and_never_grows(seed in 0u64..300) {
        let n = dag(seed);
        // sweep_dead needs id-order = topo-order; random_dag guarantees it
        // (fanins always reference earlier signals).
        let (m, removed) = sweep_dead(&n);
        prop_assert!(m.len() + removed == n.len());
        prop_assert!(equivalent(&n, &m, seed));
    }

    #[test]
    fn pipeline_shrinks_monotonically_and_preserves_function(seed in 0u64..80) {
        let n = dag(seed);
        let cfg = OptConfig {
            redundancy_rounds: 1,
            backtrack_limit: 200,
            prefilter_vectors: 128,
        };
        // Repeated optimization never grows the circuit and never changes
        // its function. (Exact idempotence is not guaranteed: the bounded
        // PODEM budget may prove a redundancy on a later run it aborted on
        // earlier.)
        let once = optimize_for_area(&n, &cfg);
        let twice = optimize_for_area(&once.netlist, &cfg);
        let thrice = optimize_for_area(&twice.netlist, &cfg);
        prop_assert!(once.netlist.len() <= n.len());
        prop_assert!(twice.netlist.len() <= once.netlist.len());
        prop_assert!(thrice.netlist.len() <= twice.netlist.len());
        prop_assert!(equivalent(&n, &thrice.netlist, seed));
    }
}
