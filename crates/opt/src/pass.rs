//! The [`Pass`] seam: a named, function-preserving netlist rewrite.
//!
//! The free pass functions at the crate root are the workhorses;
//! this trait is the composition layer ROADMAP item 4 builds on — a
//! rewriting pipeline where passes can be listed, reordered, repeated
//! to fixpoint, and (eventually) run in reverse as a workload
//! generator. Each existing pass gets a unit-struct adapter so drivers
//! can hold a `&[&dyn Pass]` schedule today.

use incdx_netlist::Netlist;

use crate::passes::{collapse_chains, dedupe_structural, propagate_constants, sweep_dead};

/// A function-preserving netlist rewrite.
///
/// Contract: for every valid combinational input, `run` returns a
/// netlist with the same primary-input count (in the same order) and
/// the same primary-output functions. A pass unable to improve the
/// circuit returns it unchanged; a pass must never panic (the optimizer
/// sits in front of diagnosis runs).
pub trait Pass {
    /// Stable, lowercase-hyphenated name (reported by pipeline drivers).
    fn name(&self) -> &'static str;

    /// Applies the rewrite.
    fn run(&self, netlist: &Netlist) -> Netlist;
}

/// [`propagate_constants`] as a [`Pass`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantFolding;

impl Pass for ConstantFolding {
    fn name(&self) -> &'static str {
        "constant-folding"
    }

    fn run(&self, netlist: &Netlist) -> Netlist {
        propagate_constants(netlist)
    }
}

/// [`collapse_chains`] as a [`Pass`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainCollapsing;

impl Pass for ChainCollapsing {
    fn name(&self) -> &'static str {
        "chain-collapsing"
    }

    fn run(&self, netlist: &Netlist) -> Netlist {
        collapse_chains(netlist)
    }
}

/// [`dedupe_structural`] as a [`Pass`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StructuralSharing;

impl Pass for StructuralSharing {
    fn name(&self) -> &'static str {
        "structural-sharing"
    }

    fn run(&self, netlist: &Netlist) -> Netlist {
        dedupe_structural(netlist)
    }
}

/// [`sweep_dead`] as a [`Pass`] (the removal count is dropped; use the
/// free function when it matters).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadSweep;

impl Pass for DeadSweep {
    fn name(&self) -> &'static str {
        "dead-sweep"
    }

    fn run(&self, netlist: &Netlist) -> Netlist {
        sweep_dead(netlist).0
    }
}

/// The default simplification schedule, in the order
/// [`optimize_for_area`](crate::optimize_for_area) applies them.
pub fn default_schedule() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(ConstantFolding),
        Box::new(ChainCollapsing),
        Box::new(StructuralSharing),
        Box::new(DeadSweep),
    ]
}

/// Runs `schedule` left to right once over `netlist`.
pub fn run_schedule(netlist: &Netlist, schedule: &[Box<dyn Pass>]) -> Netlist {
    let mut current = netlist.clone();
    for pass in schedule {
        current = pass.run(&current);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;
    use incdx_sim::{PackedMatrix, Response, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_equiv(a: &Netlist, b: &Netlist, seed: u64) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(a.inputs().len(), 64, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(a, &sim.run(a, &pi));
        let vals = sim.run(b, &pi);
        assert!(Response::compare(b, &vals, &spec).matches());
    }

    #[test]
    fn adapters_match_their_free_functions() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nb1 = BUF(a)\nx1 = AND(b1, b)\n\
             x2 = AND(b, a)\ndead = NOT(b)\ny = OR(x1, x2)\n",
        )
        .unwrap();
        let pairs: Vec<(Box<dyn Pass>, Netlist)> = vec![
            (Box::new(ConstantFolding), propagate_constants(&n)),
            (Box::new(ChainCollapsing), collapse_chains(&n)),
            (Box::new(StructuralSharing), dedupe_structural(&n)),
            (Box::new(DeadSweep), sweep_dead(&n).0),
        ];
        for (pass, expected) in pairs {
            let got = pass.run(&n);
            assert_eq!(got.len(), expected.len(), "{}", pass.name());
            assert_equiv(&n, &got, 7);
        }
    }

    #[test]
    fn default_schedule_preserves_function_and_names_are_unique() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nb1 = BUF(a)\nn1 = NOT(b1)\nn2 = NOT(n1)\n\
             x1 = AND(n2, b)\nx2 = AND(b, n2)\ny = OR(x1, x2)\n",
        )
        .unwrap();
        let schedule = default_schedule();
        let names: Vec<&str> = schedule.iter().map(|p| p.name()).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "pass names must be unique");
        let out = run_schedule(&n, &schedule);
        assert!(out.len() < n.len(), "schedule simplifies the chain pair");
        assert_equiv(&n, &out, 8);
    }
}
