//! A mutable scratch representation for whole-netlist rewrites: passes
//! edit gates freely and rebuild a validated [`Netlist`] once at the end.

use incdx_netlist::{GateId, GateKind, Netlist};

/// Editable copy of a netlist (kinds, fanins, names, outputs).
#[derive(Debug, Clone)]
pub(crate) struct Rewrite {
    pub kinds: Vec<GateKind>,
    pub fanins: Vec<Vec<GateId>>,
    pub names: Vec<Option<String>>,
    pub outputs: Vec<GateId>,
}

impl Rewrite {
    pub fn of(netlist: &Netlist) -> Self {
        Rewrite {
            kinds: netlist.iter().map(|(_, g)| g.kind()).collect(),
            fanins: netlist.iter().map(|(_, g)| g.fanins().to_vec()).collect(),
            names: netlist
                .ids()
                .map(|id| netlist.name(id).map(str::to_string))
                .collect(),
            outputs: netlist.outputs().to_vec(),
        }
    }

    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Applies a per-line substitution to every fanin and output.
    pub fn substitute(&mut self, subst: &[GateId]) {
        for fs in &mut self.fanins {
            for f in fs.iter_mut() {
                *f = subst[f.index()];
            }
        }
        for o in &mut self.outputs {
            *o = subst[o.index()];
        }
    }

    /// Rebuilds a validated netlist, preserving ids. A pass that
    /// produced an invalid structure (a pass bug, not a user error)
    /// yields the untouched `fallback` instead — trivially
    /// function-preserving, so the optimizer degrades to a no-op rather
    /// than taking a diagnosis run down with a panic.
    pub fn finish_or(self, fallback: &Netlist) -> Netlist {
        let mut b = Netlist::builder();
        for i in 0..self.len() {
            match (self.kinds[i], &self.names[i]) {
                (GateKind::Input, Some(name)) => {
                    b.add_input(name.clone());
                }
                (GateKind::Input, None) => {
                    b.add_input(format!("n{i}"));
                }
                (kind, Some(name)) => {
                    b.add_named_gate(kind, self.fanins[i].clone(), name.clone());
                }
                (kind, None) => {
                    b.add_gate(kind, self.fanins[i].clone());
                }
            }
        }
        for o in self.outputs {
            b.add_output(o);
        }
        b.build().unwrap_or_else(|_| fallback.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;

    #[test]
    fn roundtrip_is_identity() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = NOT(x)\n").unwrap();
        let m = Rewrite::of(&n).finish_or(&n);
        assert_eq!(m.len(), n.len());
        for (id, g) in n.iter() {
            assert_eq!(m.gate(id).kind(), g.kind());
            assert_eq!(m.gate(id).fanins(), g.fanins());
            assert_eq!(m.name(id), n.name(id));
        }
        assert_eq!(m.outputs(), n.outputs());
    }

    #[test]
    fn substitute_rewires_fanins_and_outputs() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = BUF(a)\ny = AND(x, b)\n").unwrap();
        let a = n.find_by_name("a").unwrap();
        let x = n.find_by_name("x").unwrap();
        let mut rw = Rewrite::of(&n);
        let mut subst: Vec<GateId> = n.ids().collect();
        subst[x.index()] = a; // bypass the buffer
        rw.substitute(&subst);
        let m = rw.finish_or(&n);
        let y = m.find_by_name("y").unwrap();
        assert_eq!(m.gate(y).fanins()[0], a);
    }
}
