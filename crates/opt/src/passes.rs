//! The optimization passes. All are function-preserving over the primary
//! inputs/outputs; `sweep_dead` is the only pass that renumbers gates.

use incdx_atpg::{all_stuck_at_faults, fault_simulate, podem, PodemOutcome};
use incdx_netlist::{DenseBitSet, GateId, GateKind, Netlist};
use incdx_sim::PackedMatrix;

use crate::rewrite::Rewrite;

/// Parameters for [`optimize_for_area`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptConfig {
    /// Maximum redundancy-removal rounds (0 disables the ATPG pass).
    pub redundancy_rounds: usize,
    /// PODEM backtrack budget per fault when proving redundancy.
    pub backtrack_limit: usize,
    /// Random vectors used to pre-drop detectable faults before PODEM.
    pub prefilter_vectors: usize,
}

impl Default for OptConfig {
    /// Four redundancy rounds, 2 000 backtracks, 512 prefilter vectors.
    fn default() -> Self {
        OptConfig {
            redundancy_rounds: 4,
            backtrack_limit: 2_000,
            prefilter_vectors: 512,
        }
    }
}

/// Outcome of [`optimize_for_area`].
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The optimized netlist (gate ids renumbered by the final sweep).
    pub netlist: Netlist,
    /// Gates removed relative to the input.
    pub removed_gates: usize,
    /// Redundant (untestable) faults eliminated by constant insertion.
    pub redundancies_removed: usize,
}

/// Folds constants through the circuit (one topological pass reaches a
/// fixpoint because fanins simplify before their readers).
pub fn propagate_constants(netlist: &Netlist) -> Netlist {
    let mut rw = Rewrite::of(netlist);
    for &id in netlist.topo_order() {
        let i = id.index();
        let kind = rw.kinds[i];
        if !kind.is_logic() {
            continue;
        }
        let const_of = |rw: &Rewrite, g: GateId| -> Option<bool> {
            match rw.kinds[g.index()] {
                GateKind::Const0 => Some(false),
                GateKind::Const1 => Some(true),
                _ => None,
            }
        };
        match kind {
            GateKind::Buf | GateKind::Not => {
                if let Some(v) = const_of(&rw, rw.fanins[i][0]) {
                    let out = v ^ (kind == GateKind::Not);
                    rw.kinds[i] = if out {
                        GateKind::Const1
                    } else {
                        GateKind::Const0
                    };
                    rw.fanins[i].clear();
                }
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let Some(controlling) = kind.controlling_value() else {
                    continue; // unreachable for the and/or family
                };
                let inverting = kind.is_inverting();
                let mut hit_controlling = false;
                let mut kept = Vec::with_capacity(rw.fanins[i].len());
                for &f in &rw.fanins[i] {
                    match const_of(&rw, f) {
                        Some(v) if v == controlling => {
                            hit_controlling = true;
                            break;
                        }
                        Some(_) => {} // identity element: drop
                        None => kept.push(f),
                    }
                }
                if hit_controlling {
                    // AND-family: controlled output is the controlling
                    // value (0), possibly inverted; OR-family dually (1).
                    let out = controlling ^ inverting;
                    rw.kinds[i] = if out {
                        GateKind::Const1
                    } else {
                        GateKind::Const0
                    };
                    rw.fanins[i].clear();
                } else if kept.is_empty() {
                    // All identity: AND() = 1, OR() = 0 (then inversion).
                    let out = !controlling ^ inverting;
                    rw.kinds[i] = if out {
                        GateKind::Const1
                    } else {
                        GateKind::Const0
                    };
                    rw.fanins[i].clear();
                } else if kept.len() == 1 {
                    rw.kinds[i] = if inverting {
                        GateKind::Not
                    } else {
                        GateKind::Buf
                    };
                    rw.fanins[i] = kept;
                } else {
                    rw.fanins[i] = kept;
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut invert = kind == GateKind::Xnor;
                let mut kept = Vec::with_capacity(rw.fanins[i].len());
                for &f in &rw.fanins[i] {
                    match const_of(&rw, f) {
                        Some(true) => invert = !invert,
                        Some(false) => {}
                        None => kept.push(f),
                    }
                }
                match kept.len() {
                    0 => {
                        rw.kinds[i] = if invert {
                            GateKind::Const1
                        } else {
                            GateKind::Const0
                        };
                        rw.fanins[i].clear();
                    }
                    1 => {
                        rw.kinds[i] = if invert { GateKind::Not } else { GateKind::Buf };
                        rw.fanins[i] = kept;
                    }
                    _ => {
                        rw.kinds[i] = if invert {
                            GateKind::Xnor
                        } else {
                            GateKind::Xor
                        };
                        rw.fanins[i] = kept;
                    }
                }
            }
            _ => {}
        }
    }
    rw.finish_or(netlist)
}

/// Bypasses buffers and cancels double inverters.
pub fn collapse_chains(netlist: &Netlist) -> Netlist {
    let mut rw = Rewrite::of(netlist);
    let mut subst: Vec<GateId> = netlist.ids().collect();
    for &id in netlist.topo_order() {
        let i = id.index();
        match rw.kinds[i] {
            GateKind::Buf => {
                subst[i] = subst[rw.fanins[i][0].index()];
            }
            GateKind::Not => {
                let src = subst[rw.fanins[i][0].index()];
                if rw.kinds[src.index()] == GateKind::Not {
                    subst[i] = subst[rw.fanins[src.index()][0].index()];
                } else {
                    rw.fanins[i][0] = src;
                    subst[i] = id;
                }
            }
            _ => {}
        }
    }
    rw.substitute(&subst);
    rw.finish_or(netlist)
}

/// Structural hashing: gates computing the same symmetric function over
/// the same (already-substituted) fanins collapse to one representative.
pub fn dedupe_structural(netlist: &Netlist) -> Netlist {
    use std::collections::HashMap;
    let mut rw = Rewrite::of(netlist);
    let mut subst: Vec<GateId> = netlist.ids().collect();
    let mut seen: HashMap<(GateKind, Vec<GateId>), GateId> = HashMap::new();
    for &id in netlist.topo_order() {
        let i = id.index();
        let kind = rw.kinds[i];
        if !kind.is_logic() && !matches!(kind, GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        let mut key_fanins: Vec<GateId> = rw.fanins[i].iter().map(|f| subst[f.index()]).collect();
        key_fanins.sort();
        rw.fanins[i] = rw.fanins[i].iter().map(|f| subst[f.index()]).collect();
        match seen.entry((kind, key_fanins)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                subst[i] = *e.get();
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
        }
    }
    rw.substitute(&subst);
    rw.finish_or(netlist)
}

/// Removes gates unreachable from any primary output. Primary inputs are
/// always kept (vector alignment); everything else is renumbered.
/// Returns the swept netlist and the number of gates removed.
pub fn sweep_dead(netlist: &Netlist) -> (Netlist, usize) {
    let mut live = DenseBitSet::new(netlist.len());
    let mut stack: Vec<GateId> = netlist.outputs().to_vec();
    for &o in netlist.outputs() {
        live.insert(o.index());
    }
    while let Some(g) = stack.pop() {
        for &f in netlist.gate(g).fanins() {
            if live.insert(f.index()) {
                stack.push(f);
            }
        }
    }
    for &pi in netlist.inputs() {
        live.insert(pi.index());
    }
    let mut remap: Vec<Option<GateId>> = vec![None; netlist.len()];
    let mut b = Netlist::builder();
    for id in netlist.ids() {
        if !live.contains(id.index()) {
            continue;
        }
        let gate = netlist.gate(id);
        let fanins: Vec<GateId> = gate
            .fanins()
            .iter()
            // Fanins precede readers in id order, so the lookup always
            // hits; the identity fallback keeps this panic-free and the
            // builder validation below catches any inconsistency.
            .map(|f| remap[f.index()].unwrap_or(*f))
            .collect();
        let new_id = match (gate.kind(), netlist.name(id)) {
            (GateKind::Input, Some(name)) => b.add_input(name),
            (GateKind::Input, None) => b.add_input(format!("n{}", id.index())),
            (kind, Some(name)) => b.add_named_gate(kind, fanins, name),
            (kind, None) => b.add_gate(kind, fanins),
        };
        remap[id.index()] = Some(new_id);
    }
    for &o in netlist.outputs() {
        // Outputs are live by construction of the reachability walk.
        b.add_output(remap[o.index()].unwrap_or(o));
    }
    let removed = netlist.len() - b.len();
    match b.build() {
        Ok(swept) => (swept, removed),
        // A failed rebuild is a pass bug; degrade to a no-op sweep.
        Err(_) => (netlist.clone(), 0),
    }
}

/// Fanins in our netlists always have smaller topological rank than their
/// readers, but not necessarily smaller *ids* (generators use forward
/// references). `sweep_dead` therefore needs id-order = topo-order input;
/// [`normalize`] provides it by renumbering in topological order.
fn normalize(netlist: &Netlist) -> Netlist {
    let mut remap: Vec<Option<GateId>> = vec![None; netlist.len()];
    let mut b = Netlist::builder();
    for &id in netlist.topo_order() {
        let gate = netlist.gate(id);
        let fanins: Vec<GateId> = gate
            .fanins()
            .iter()
            // Topo order guarantees fanins were remapped first; the
            // identity fallback keeps this panic-free (the builder
            // validation below catches any inconsistency).
            .map(|f| remap[f.index()].unwrap_or(*f))
            .collect();
        let new_id = match (gate.kind(), netlist.name(id)) {
            (GateKind::Input, Some(name)) => b.add_input(name),
            (GateKind::Input, None) => b.add_input(format!("n{}", id.index())),
            (kind, Some(name)) => b.add_named_gate(kind, fanins, name),
            (kind, None) => b.add_gate(kind, fanins),
        };
        remap[id.index()] = Some(new_id);
    }
    for &o in netlist.outputs() {
        b.add_output(remap[o.index()].unwrap_or(o));
    }
    let out = b.build().unwrap_or_else(|_| netlist.clone());
    // Normalization permutes input declaration order if PIs interleave
    // with logic in topo order; PIs all have level 0 and topo order lists
    // them in id order first, so the PI order is preserved.
    debug_assert_eq!(out.inputs().len(), netlist.inputs().len());
    out
}

/// One round of ATPG-based redundancy removal: prove stem faults
/// untestable and replace each such line with the stuck constant (sound
/// one-at-a-time; the caller loops). Returns the number of redundancies
/// removed in this round.
pub fn remove_redundancies(netlist: &mut Netlist, config: &OptConfig) -> usize {
    // Pre-drop detectable faults with random patterns.
    let faults = all_stuck_at_faults(netlist);
    if faults.is_empty() {
        return 0;
    }
    let mut rng = deterministic_rng(netlist.len() as u64);
    let pi = PackedMatrix::random(netlist.inputs().len(), config.prefilter_vectors, &mut rng);
    let detected = fault_simulate(netlist, &faults, &pi);
    let survivors: Vec<_> = faults
        .iter()
        .zip(&detected)
        .filter(|(_, &d)| !d)
        .map(|(f, _)| *f)
        .collect();
    // PODEM the survivors; apply the first proven redundancy only (each
    // removal can change the testability of the rest).
    for fault in survivors {
        if netlist.gate(fault.line()).kind() == GateKind::Input {
            // An undetectable PI fault means the input is unobservable;
            // leave PIs in place for vector alignment.
            continue;
        }
        if podem(netlist, fault, config.backtrack_limit) == PodemOutcome::Untestable
            && fault.apply(netlist).is_ok()
        {
            return 1;
        }
    }
    0
}

fn deterministic_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(0x1dc0_5eed ^ seed)
}

/// The full area-optimization pipeline of §4.1: constants → chains →
/// sharing → sweep, then up to `config.redundancy_rounds` rounds of
/// redundancy removal with re-simplification after each.
///
/// # Panics
///
/// Panics if the netlist is not combinational (scan-convert first).
pub fn optimize_for_area(netlist: &Netlist, config: &OptConfig) -> OptimizeResult {
    assert!(netlist.is_combinational(), "optimize the full-scan core");
    let original = netlist.len();
    let simplify = |n: &Netlist| -> Netlist {
        let n = propagate_constants(n);
        let n = collapse_chains(&n);
        let n = dedupe_structural(&n);
        sweep_dead(&normalize(&n)).0
    };
    let mut current = simplify(netlist);
    let mut redundancies = 0usize;
    for _ in 0..config.redundancy_rounds {
        let removed = remove_redundancies(&mut current, config);
        if removed == 0 {
            break;
        }
        redundancies += removed;
        current = simplify(&current);
    }
    OptimizeResult {
        removed_gates: original.saturating_sub(current.len()),
        redundancies_removed: redundancies,
        netlist: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_gen::generate;
    use incdx_netlist::parse_bench;
    use incdx_sim::{Response, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Randomized equivalence check over the primary I/O.
    fn assert_equiv(a: &Netlist, b: &Netlist, vectors: usize, seed: u64) {
        assert_eq!(a.inputs().len(), b.inputs().len(), "PI count must survive");
        assert_eq!(a.outputs().len(), b.outputs().len());
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(a.inputs().len(), vectors, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(a, &sim.run(a, &pi));
        let vals = sim.run(b, &pi);
        let r = Response::compare(b, &vals, &spec);
        assert!(r.matches(), "{} mismatching bits", r.mismatch_bits());
    }

    #[test]
    fn constant_propagation_folds() {
        let mut b = Netlist::builder();
        let a = b.add_input("a");
        let one = b.add_gate(GateKind::Const1, vec![]);
        let zero = b.add_gate(GateKind::Const0, vec![]);
        let x = b.add_gate(GateKind::And, vec![a, one]); // = a
        let y = b.add_gate(GateKind::Or, vec![x, zero]); // = a
        let z = b.add_gate(GateKind::Nand, vec![y, zero]); // = 1
        let w = b.add_gate(GateKind::Xor, vec![a, one]); // = !a
        b.add_output(z);
        b.add_output(w);
        let n = b.build().unwrap();
        let m = propagate_constants(&n);
        assert_eq!(m.gate(z).kind(), GateKind::Const1);
        assert_eq!(m.gate(w).kind(), GateKind::Not);
        assert_eq!(m.gate(x).kind(), GateKind::Buf);
        assert_equiv(&n, &m, 64, 1);
    }

    #[test]
    fn chain_collapse_cancels_double_inverters() {
        let n = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nb1 = BUF(a)\nn1 = NOT(b1)\nn2 = NOT(n1)\ny = BUF(n2)\n",
        )
        .unwrap();
        let m = collapse_chains(&n);
        // y's driver resolves to a.
        assert_eq!(m.outputs()[0], m.find_by_name("a").unwrap());
        assert_equiv(&n, &m, 4, 2);
    }

    #[test]
    fn dedupe_shares_common_subexpressions() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx1 = AND(a, b)\nx2 = AND(b, a)\ny = OR(x1, x2)\n",
        )
        .unwrap();
        let m = dedupe_structural(&n);
        let y = m.find_by_name("y").unwrap();
        assert_eq!(m.gate(y).fanins()[0], m.gate(y).fanins()[1]);
        assert_equiv(&n, &m, 16, 3);
    }

    #[test]
    fn sweep_removes_dead_logic_keeps_pis() {
        let n =
            parse_bench("INPUT(a)\nINPUT(unused)\nOUTPUT(y)\ndead = NOT(a)\ny = BUF(a)\n").unwrap();
        let (m, removed) = sweep_dead(&n);
        assert_eq!(removed, 1);
        assert_eq!(m.inputs().len(), 2, "unused PI survives");
        assert!(m.find_by_name("dead").is_none());
        assert_equiv(&n, &m, 8, 4);
    }

    #[test]
    fn redundancy_removal_simplifies_or_absorption() {
        // y = a OR (a AND b) == a: the AND is redundant.
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(a, x)\n").unwrap();
        let r = optimize_for_area(&n, &OptConfig::default());
        assert!(r.redundancies_removed >= 1);
        assert!(r.netlist.len() < n.len());
        assert_equiv(&n, &r.netlist, 16, 5);
    }

    #[test]
    fn pipeline_preserves_function_on_suite_circuits() {
        for name in ["c17", "c432a", "c880a", "c499a"] {
            let n = generate(name).unwrap();
            let r = optimize_for_area(
                &n,
                &OptConfig {
                    redundancy_rounds: 1,
                    backtrack_limit: 500,
                    prefilter_vectors: 256,
                },
            );
            assert!(r.netlist.len() <= n.len(), "{name}");
            assert_equiv(&n, &r.netlist, 512, 6);
        }
    }

    #[test]
    fn idempotent_on_already_optimized() {
        let n = generate("c17").unwrap();
        let r1 = optimize_for_area(&n, &OptConfig::default());
        let r2 = optimize_for_area(&r1.netlist, &OptConfig::default());
        assert_eq!(r1.netlist.len(), r2.netlist.len());
        assert_eq!(r2.removed_gates, 0);
    }
}
