//! Area optimization passes — the "optimize for area" preprocessing the
//! paper applies to the benchmark circuits before its stuck-at fault
//! diagnosis experiments (§4.1).
//!
//! The pipeline is the classic lightweight stack: constant propagation,
//! buffer/double-inverter collapsing, structural hashing (common
//! subexpression sharing), ATPG-based redundancy removal (an untestable
//! stuck-at-v fault means the line can be replaced by the constant `v`
//! without changing the function), and dead-logic sweeping.
//!
//! Every pass is function-preserving; the test suite checks equivalence by
//! exhaustive/randomized simulation against the original.
//!
//! # Example
//!
//! ```
//! use incdx_gen::generate;
//! use incdx_opt::{optimize_for_area, OptConfig};
//!
//! let n = generate("c432a")?;
//! let r = optimize_for_area(&n, &OptConfig::default());
//! assert!(r.netlist.len() <= n.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod pass;
mod passes;
mod rewrite;

pub use pass::{
    default_schedule, run_schedule, ChainCollapsing, ConstantFolding, DeadSweep, Pass,
    StructuralSharing,
};
pub use passes::{
    collapse_chains, dedupe_structural, optimize_for_area, propagate_constants,
    remove_redundancies, sweep_dead, OptConfig, OptimizeResult,
};
