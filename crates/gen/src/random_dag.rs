//! Seeded random-DAG circuit generator, used to scale workloads to
//! arbitrary line counts and as a proptest workhorse.

use incdx_netlist::{GateId, GateKind, Netlist};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// Parameters for [`random_dag`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDagConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of logic gates to generate (total size = inputs + gates).
    pub gates: usize,
    /// Number of primary outputs, drawn from the last generated gates.
    pub outputs: usize,
    /// Maximum gate fanin (at least 2).
    pub max_fanin: usize,
    /// Probability of generating an XOR/XNOR gate (the rest split over
    /// AND/NAND/OR/NOR/NOT/BUF).
    pub xor_fraction: f64,
    /// Locality window: fanins are drawn from the most recent `window`
    /// signals with high probability, giving ISCAS-like short wires with
    /// occasional long reconvergence.
    pub window: usize,
}

impl Default for RandomDagConfig {
    /// A mid-sized, mildly XOR-flavoured circuit.
    fn default() -> Self {
        RandomDagConfig {
            inputs: 32,
            gates: 400,
            outputs: 16,
            max_fanin: 4,
            xor_fraction: 0.08,
            window: 64,
        }
    }
}

/// Generates a connected random combinational DAG from a seed.
///
/// The generator guarantees every primary output is driven and the circuit
/// is acyclic by construction (fanins always reference earlier signals).
/// Gates the outputs don't reach may exist, as in real pre-optimization
/// netlists.
///
/// # Panics
///
/// Panics if `inputs < 2`, `gates == 0` or `outputs == 0`.
///
/// # Example
///
/// ```
/// use incdx_gen::{random_dag, RandomDagConfig};
///
/// let n = random_dag(&RandomDagConfig::default(), 42);
/// let m = random_dag(&RandomDagConfig::default(), 42);
/// assert_eq!(n.len(), m.len()); // fully deterministic per seed
/// ```
pub fn random_dag(config: &RandomDagConfig, seed: u64) -> Netlist {
    assert!(config.inputs >= 2, "need at least 2 inputs");
    assert!(config.gates > 0, "need at least 1 gate");
    assert!(config.outputs > 0, "need at least 1 output");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Netlist::builder();
    let mut signals: Vec<GateId> = (0..config.inputs)
        .map(|i| b.add_input(format!("i{i}")))
        .collect();
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let weights = [24u32, 28, 20, 12, 12, 4];
    let total: u32 = weights.iter().sum();
    for _ in 0..config.gates {
        let kind = if rng.random_bool(config.xor_fraction) {
            if rng.random_bool(0.5) {
                GateKind::Xor
            } else {
                GateKind::Xnor
            }
        } else {
            let mut t = rng.random_range(0..total);
            let mut chosen = kinds[0];
            for (k, &w) in kinds.iter().zip(&weights) {
                if t < w {
                    chosen = *k;
                    break;
                }
                t -= w;
            }
            chosen
        };
        let nf = match kind {
            GateKind::Not | GateKind::Buf => 1,
            GateKind::Xor | GateKind::Xnor => 2,
            _ => rng.random_range(2..=config.max_fanin.max(2)),
        };
        let lo = signals.len().saturating_sub(config.window);
        let mut fanins = Vec::with_capacity(nf);
        for _ in 0..nf {
            let pick = if rng.random_bool(0.85) {
                rng.random_range(lo..signals.len())
            } else {
                rng.random_range(0..signals.len())
            };
            fanins.push(signals[pick]);
        }
        fanins.dedup();
        if matches!(kind, GateKind::Xor | GateKind::Xnor) && fanins.len() < 2 {
            // XOR with a duplicated operand degenerates; re-pick a distinct one.
            let other = signals
                .iter()
                .rev()
                .find(|&&s| s != fanins[0])
                .copied()
                .expect("at least 2 distinct signals exist");
            fanins.push(other);
        }
        signals.push(b.add_gate(kind, fanins));
    }
    // Outputs: prefer deep gates so most of the circuit is observable.
    let deep: Vec<GateId> = signals[signals.len().saturating_sub(config.gates / 2 + 1)..].to_vec();
    let mut outs = Vec::with_capacity(config.outputs);
    for _ in 0..config.outputs {
        outs.push(*deep.choose(&mut rng).expect("deep set non-empty"));
    }
    outs.sort();
    outs.dedup();
    for o in outs {
        b.add_output(o);
    }
    b.build().expect("random dag is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let c = RandomDagConfig::default();
        let a = random_dag(&c, 7);
        let b = random_dag(&c, 7);
        assert_eq!(a.len(), b.len());
        for (id, g) in a.iter() {
            assert_eq!(g.kind(), b.gate(id).kind());
            assert_eq!(g.fanins(), b.gate(id).fanins());
        }
        let d = random_dag(&c, 8);
        // Different seed gives a structurally different circuit (kind
        // sequences differ with overwhelming probability).
        let same = a
            .iter()
            .zip(d.iter())
            .all(|((_, x), (_, y))| x.kind() == y.kind() && x.fanins() == y.fanins());
        assert!(!same);
    }

    #[test]
    fn respects_size_parameters() {
        let c = RandomDagConfig {
            inputs: 10,
            gates: 123,
            outputs: 5,
            ..RandomDagConfig::default()
        };
        let n = random_dag(&c, 1);
        assert_eq!(n.len(), 133);
        assert_eq!(n.inputs().len(), 10);
        assert!(!n.outputs().is_empty() && n.outputs().len() <= 5);
    }

    #[test]
    fn xor_fraction_zero_means_no_xors() {
        let c = RandomDagConfig {
            xor_fraction: 0.0,
            ..RandomDagConfig::default()
        };
        let n = random_dag(&c, 3);
        assert!(n
            .iter()
            .all(|(_, g)| !matches!(g.kind(), GateKind::Xor | GateKind::Xnor)));
    }

    #[test]
    fn all_sizes_build_valid_netlists() {
        for seed in 0..10 {
            let c = RandomDagConfig {
                inputs: 8,
                gates: 50,
                outputs: 4,
                max_fanin: 3,
                xor_fraction: 0.2,
                window: 16,
            };
            let n = random_dag(&c, seed);
            // Valid topo order is checked by the builder; spot-check levels.
            assert!(n.max_level() >= 1);
        }
    }
}
