//! Benchmark circuit generators for the `incdx` workspace.
//!
//! The DATE 2002 paper evaluates on the ISCAS'85 and (full-scan) ISCAS'89
//! benchmark suites. Those netlists are distributed separately from the
//! paper, so this crate provides **structural analogs**: generators that
//! produce circuits of the same family and comparable size — array
//! multipliers (c6288), single-error-correcting XOR-tree circuits
//! (c499/c1355/c1908), ALUs (c880/c3540/c5315), priority/interrupt encoders
//! (c432), adder/comparator/parity mixes (c2670/c7552), and sequential
//! machines for the s-circuits. Real ISCAS `.bench` files drop in through
//! [`incdx_netlist::parse_bench`] whenever available; everything downstream
//! is netlist-agnostic.
//!
//! The analog relationships that matter to the paper's experiments are
//! preserved: `c1355a` is literally `c499a` with every XOR expanded to the
//! four-NAND structure (the case §3.2 of the paper flags for heuristic 3),
//! and `c6288a` is a true 16×16 array multiplier — the "traditionally hard
//! to diagnose and correct" workload.
//!
//! # Example
//!
//! ```
//! use incdx_gen::suite;
//!
//! let c6288a = suite::generate("c6288a")?;
//! assert!(c6288a.len() > 2000);
//! # Ok::<(), incdx_gen::GenerateError>(())
//! ```

mod alu;
mod arith;
mod encoder;
mod parity;
mod random_dag;
mod sequential;
pub mod suite;

pub use alu::{alu, AluOp};
pub use arith::{array_multiplier, comparator, ripple_adder};
pub use encoder::priority_encoder;
pub use parity::{parity_tree, sec_circuit};
pub use random_dag::{random_dag, RandomDagConfig};
pub use sequential::{counter, lfsr, moore_machine};
pub use suite::{generate, CircuitSpec, GenerateError, SUITE};
