//! A small gate-level ALU generator — the structural analog of the ISCAS
//! ALU-family circuits (c880, c3540, c5315).

use incdx_netlist::{GateId, GateKind, Netlist, NetlistBuilder};

use crate::arith::full_adder;

/// The operations a generated ALU supports, selected by the opcode inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition with carry-in.
    Add,
    /// Bitwise NOT of the first operand.
    NotA,
    /// Pass the second operand.
    PassB,
}

impl AluOp {
    /// The canonical 8-op repertoire used by the default generator.
    pub const DEFAULT_OPS: [AluOp; 6] = [
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Add,
        AluOp::NotA,
        AluOp::PassB,
    ];

    /// Reference semantics (bit `width` of the result is the add carry).
    pub fn apply(self, a: u64, b: u64, cin: bool, width: usize) -> u64 {
        let mask = if width == 64 { !0 } else { (1u64 << width) - 1 };
        match self {
            AluOp::And => a & b & mask,
            AluOp::Or => (a | b) & mask,
            AluOp::Xor => (a ^ b) & mask,
            AluOp::Add => (a + b + cin as u64) & (mask << 1 | 1),
            AluOp::NotA => !a & mask,
            AluOp::PassB => b & mask,
        }
    }
}

/// 2-to-1 mux as gates: `sel ? hi : lo`.
fn mux2(b: &mut NetlistBuilder, sel: GateId, hi: GateId, lo: GateId) -> GateId {
    let ns = b.add_gate(GateKind::Not, vec![sel]);
    let t = b.add_gate(GateKind::And, vec![sel, hi]);
    let e = b.add_gate(GateKind::And, vec![ns, lo]);
    b.add_gate(GateKind::Or, vec![t, e])
}

/// Generates a `width`-bit ALU over `ops` (index in the list = opcode),
/// with inputs `a*`, `b*`, `cin`, `op0..op{k-1}` (binary opcode, LSB first)
/// and outputs `r0..r{width-1}`, `cout`, `zero`, `flag`.
///
/// Opcodes beyond `ops.len()-1` select the last operation (the decoder
/// saturates), so every input assignment is defined.
///
/// # Panics
///
/// Panics if `width == 0` or `ops` is empty.
///
/// # Example
///
/// ```
/// use incdx_gen::{alu, AluOp};
///
/// let n = alu(8, &AluOp::DEFAULT_OPS);
/// assert_eq!(n.outputs().len(), 11); // 8 result bits + cout + zero + flag
/// ```
pub fn alu(width: usize, ops: &[AluOp]) -> Netlist {
    assert!(width > 0, "width must be positive");
    assert!(!ops.is_empty(), "ops must be non-empty");
    let opbits = (ops.len().max(2) as f64).log2().ceil() as usize;
    let mut b = Netlist::builder();
    let a: Vec<GateId> = (0..width).map(|i| b.add_input(format!("a{i}"))).collect();
    let x: Vec<GateId> = (0..width).map(|i| b.add_input(format!("b{i}"))).collect();
    let cin = b.add_input("cin");
    let op: Vec<GateId> = (0..opbits).map(|i| b.add_input(format!("op{i}"))).collect();

    // One-hot decode: sel[k] = opcode == k (saturating on the last op).
    let mut sel = Vec::with_capacity(ops.len());
    for k in 0..ops.len() {
        let mut terms = Vec::with_capacity(opbits);
        for (bit, &o) in op.iter().enumerate() {
            if k >> bit & 1 == 1 {
                terms.push(o);
            } else {
                terms.push(b.add_gate(GateKind::Not, vec![o]));
            }
        }
        sel.push(b.add_gate(GateKind::And, terms));
    }
    // Saturate: the last selector also fires for any undecoded opcode.
    let any_decoded = b.add_gate(GateKind::Or, sel.clone());
    let none = b.add_gate(GateKind::Not, vec![any_decoded]);
    let last = sel.len() - 1;
    sel[last] = b.add_gate(GateKind::Or, vec![sel[last], none]);

    // Datapaths.
    let mut results: Vec<Vec<GateId>> = Vec::with_capacity(ops.len());
    let mut adder_cout = None;
    for &opk in ops {
        let bits: Vec<GateId> = match opk {
            AluOp::And => (0..width)
                .map(|i| b.add_gate(GateKind::And, vec![a[i], x[i]]))
                .collect(),
            AluOp::Or => (0..width)
                .map(|i| b.add_gate(GateKind::Or, vec![a[i], x[i]]))
                .collect(),
            AluOp::Xor => (0..width)
                .map(|i| b.add_gate(GateKind::Xor, vec![a[i], x[i]]))
                .collect(),
            AluOp::Add => {
                let mut carry = cin;
                let mut sums = Vec::with_capacity(width);
                for i in 0..width {
                    let (s, c) = full_adder(&mut b, a[i], x[i], carry);
                    sums.push(s);
                    carry = c;
                }
                adder_cout = Some(carry);
                sums
            }
            AluOp::NotA => (0..width)
                .map(|i| b.add_gate(GateKind::Not, vec![a[i]]))
                .collect(),
            AluOp::PassB => (0..width)
                .map(|i| b.add_gate(GateKind::Buf, vec![x[i]]))
                .collect(),
        };
        results.push(bits);
    }

    // Output mux: r_i = OR over k of (sel[k] AND result[k][i]).
    let mut outs = Vec::with_capacity(width);
    for i in 0..width {
        let terms: Vec<GateId> = results
            .iter()
            .zip(&sel)
            .map(|(bits, &s)| b.add_gate(GateKind::And, vec![s, bits[i]]))
            .collect();
        outs.push(b.add_gate(GateKind::Or, terms));
    }
    // cout is the adder carry gated by the Add selector (0 otherwise).
    let cout = match (adder_cout, ops.iter().position(|&o| o == AluOp::Add)) {
        (Some(c), Some(k)) => b.add_gate(GateKind::And, vec![sel[k], c]),
        _ => b.add_gate(GateKind::Const0, vec![]),
    };
    // zero flag over the result bits.
    let zero = b.add_gate(GateKind::Nor, outs.clone());
    for o in &outs {
        b.add_output(*o);
    }
    b.add_output(cout);
    b.add_output(zero);
    // A muxed flag output adds realistic reconvergence between the flags.
    let flag = mux2(&mut b, sel[0], zero, cout);
    b.add_output(flag);
    b.build().expect("alu structure is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_sim::{PackedMatrix, Simulator};

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut pi = PackedMatrix::new(inputs.len(), 1);
        for (i, &v) in inputs.iter().enumerate() {
            pi.set(i, 0, v);
        }
        let vals = Simulator::new().run(n, &pi);
        n.outputs().iter().map(|o| vals.get(o.index(), 0)).collect()
    }

    fn run_alu(
        n: &Netlist,
        width: usize,
        a: u64,
        b: u64,
        cin: bool,
        opcode: usize,
    ) -> (u64, bool, bool) {
        let opbits = n.inputs().len() - 2 * width - 1;
        let mut iv: Vec<bool> = (0..width).map(|i| a >> i & 1 == 1).collect();
        iv.extend((0..width).map(|i| b >> i & 1 == 1));
        iv.push(cin);
        iv.extend((0..opbits).map(|i| opcode >> i & 1 == 1));
        let out = eval(n, &iv);
        let r = out[..width]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (bit as u64) << i);
        (r, out[width], out[width + 1])
    }

    #[test]
    fn alu_matches_reference_semantics() {
        let width = 4;
        let n = alu(width, &AluOp::DEFAULT_OPS);
        for (k, op) in AluOp::DEFAULT_OPS.iter().enumerate() {
            for (a, b, cin) in [
                (0u64, 0u64, false),
                (15, 15, true),
                (9, 6, false),
                (5, 12, true),
            ] {
                let (r, cout, zero) = run_alu(&n, width, a, b, cin, k);
                let expect = op.apply(a, b, cin, width);
                assert_eq!(r, expect & 0xF, "{op:?} a={a} b={b} cin={cin}");
                if *op == AluOp::Add {
                    assert_eq!(cout, expect >> width & 1 == 1, "{op:?} cout");
                } else {
                    assert!(!cout, "{op:?} cout must be 0");
                }
                assert_eq!(zero, r == 0, "{op:?} zero flag");
            }
        }
    }

    #[test]
    fn undecoded_opcode_saturates_to_last_op() {
        let width = 4;
        let n = alu(width, &AluOp::DEFAULT_OPS);
        // Opcodes 6 and 7 are undecoded with 6 ops; both select PassB.
        for opcode in [6usize, 7] {
            let (r, _, _) = run_alu(&n, width, 0b1010, 0b0110, false, opcode);
            assert_eq!(r, 0b0110, "opcode {opcode}");
        }
    }

    #[test]
    fn alu_scales_to_c880_size() {
        let n = alu(8, &AluOp::DEFAULT_OPS);
        assert!(n.len() > 150, "got {}", n.len());
    }
}
