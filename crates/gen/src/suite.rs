//! The named benchmark suite: structural analogs of the ISCAS'85/'89
//! circuits the paper evaluates on, plus the real c17.
//!
//! Analog naming: `c6288a` is *our analog of* c6288 (a 16×16 array
//! multiplier), etc. The analogs match the family and structure of their
//! namesakes; absolute line counts differ (documented in EXPERIMENTS.md).
//! Real ISCAS `.bench` files can be used instead via
//! [`incdx_netlist::parse_bench`].

use std::error::Error;
use std::fmt;

use incdx_netlist::{expand_xor_to_nand, parse_bench, GateKind, Netlist};

use crate::alu::{alu, AluOp};
use crate::arith::{array_multiplier, comparator, ripple_adder};
use crate::encoder::priority_encoder;
use crate::parity::{parity_tree, sec_circuit};
use crate::sequential::{counter, lfsr, moore_machine};

/// The real c17 netlist (the smallest ISCAS'85 circuit, 6 NAND gates).
const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

/// One entry of [`SUITE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Suite name, e.g. `"c6288a"`.
    pub name: &'static str,
    /// Human description of the structural family.
    pub family: &'static str,
    /// Does the circuit contain DFFs (an s-circuit analog)?
    pub sequential: bool,
}

/// Every circuit [`generate`] knows, in the order the paper's tables list
/// them (combinational c-circuits first, then full-scan s-circuits).
pub const SUITE: &[CircuitSpec] = &[
    CircuitSpec {
        name: "c17",
        family: "real ISCAS'85 c17",
        sequential: false,
    },
    CircuitSpec {
        name: "c432a",
        family: "27-channel interrupt controller",
        sequential: false,
    },
    CircuitSpec {
        name: "c499a",
        family: "32-bit SEC (XOR form)",
        sequential: false,
    },
    CircuitSpec {
        name: "c880a",
        family: "8-bit ALU",
        sequential: false,
    },
    CircuitSpec {
        name: "c1355a",
        family: "32-bit SEC (NAND-expanded XORs)",
        sequential: false,
    },
    CircuitSpec {
        name: "c1908a",
        family: "16-bit SEC (NAND-expanded XORs)",
        sequential: false,
    },
    CircuitSpec {
        name: "c2670a",
        family: "ALU + comparator + parity mix",
        sequential: false,
    },
    CircuitSpec {
        name: "c3540a",
        family: "16-bit ALU",
        sequential: false,
    },
    CircuitSpec {
        name: "c5315a",
        family: "dual-arm ALU",
        sequential: false,
    },
    CircuitSpec {
        name: "c6288a",
        family: "16x16 array multiplier (NAND-expanded)",
        sequential: false,
    },
    CircuitSpec {
        name: "c7552a",
        family: "adder + comparator + parity + ALU",
        sequential: false,
    },
    CircuitSpec {
        name: "s298a",
        family: "14-bit counter with decode",
        sequential: true,
    },
    CircuitSpec {
        name: "s344a",
        family: "16-bit LFSR + counter",
        sequential: true,
    },
    CircuitSpec {
        name: "s641a",
        family: "random Moore machine (19 state bits)",
        sequential: true,
    },
    CircuitSpec {
        name: "s1238a",
        family: "Moore machine + LFSR",
        sequential: true,
    },
    CircuitSpec {
        name: "s9234a",
        family: "large Moore machine + counter + LFSR",
        sequential: true,
    },
];

/// Error returned by [`generate`] for unknown circuit names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError {
    name: String,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown benchmark circuit `{}` (see incdx_gen::SUITE)",
            self.name
        )
    }
}

impl Error for GenerateError {}

/// Generates a suite circuit by name.
///
/// Sequential entries (`s*a`) are returned with their DFFs in place; run
/// them through [`incdx_netlist::scan_convert`] to obtain the full-scan
/// combinational core the diagnosis engine expects.
///
/// # Errors
///
/// Returns [`GenerateError`] if the name is not in [`SUITE`].
///
/// # Example
///
/// ```
/// let n = incdx_gen::generate("c880a")?;
/// assert!(n.is_combinational());
/// # Ok::<(), incdx_gen::GenerateError>(())
/// ```
pub fn generate(name: &str) -> Result<Netlist, GenerateError> {
    let n = match name {
        "c17" => parse_bench(C17).expect("embedded c17 is valid"),
        "c432a" => priority_encoder(27),
        "c499a" => sec_circuit(32),
        "c880a" => alu(8, &AluOp::DEFAULT_OPS),
        "c1355a" => {
            expand_xor_to_nand(&sec_circuit(32)).expect("expansion of a valid netlist succeeds")
        }
        "c1908a" => {
            expand_xor_to_nand(&sec_circuit(16)).expect("expansion of a valid netlist succeeds")
        }
        "c2670a" => merge(&[
            &alu(12, &AluOp::DEFAULT_OPS),
            &comparator(24),
            &sec_circuit(16),
        ]),
        "c3540a" => alu(16, &AluOp::DEFAULT_OPS),
        "c5315a" => merge(&[&alu(16, &AluOp::DEFAULT_OPS), &alu(9, &AluOp::DEFAULT_OPS)]),
        "c6288a" => expand_xor_to_nand(&array_multiplier(16))
            .expect("expansion of a valid netlist succeeds"),
        "c7552a" => merge(&[
            &ripple_adder(32),
            &comparator(32),
            &parity_tree(32),
            &alu(8, &AluOp::DEFAULT_OPS),
        ]),
        "s298a" => counter(14),
        "s344a" => merge(&[&lfsr(16, &[0, 2, 3, 5]), &counter(8)]),
        "s641a" => moore_machine(19, 20, 20, 641),
        "s1238a" => merge(&[&moore_machine(18, 14, 14, 1238), &lfsr(16, &[0, 1, 3, 12])]),
        "s9234a" => merge(&[
            &moore_machine(40, 20, 22, 9234),
            &counter(32),
            &lfsr(32, &[0, 1, 21, 31]),
        ]),
        other => {
            return Err(GenerateError {
                name: other.to_string(),
            })
        }
    };
    Ok(n)
}

/// Places several netlists side by side in one netlist: inputs and outputs
/// concatenate in order; names are prefixed `u{k}_` to stay unique.
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn merge(parts: &[&Netlist]) -> Netlist {
    assert!(!parts.is_empty(), "merge needs at least one part");
    let mut b = Netlist::builder();
    let mut all_outputs = Vec::new();
    for (k, part) in parts.iter().enumerate() {
        let offset = b.len();
        for (id, gate) in part.iter() {
            let fanins = gate
                .fanins()
                .iter()
                .map(|f| incdx_netlist::GateId::from_index(f.index() + offset))
                .collect();
            let name = part
                .name(id)
                .map(|n| format!("u{k}_{n}"))
                .unwrap_or_else(|| format!("u{k}_n{}", id.index()));
            if gate.kind() == GateKind::Input {
                b.add_input(name);
            } else {
                b.add_named_gate(gate.kind(), fanins, name);
            }
        }
        for &o in part.outputs() {
            all_outputs.push(incdx_netlist::GateId::from_index(o.index() + offset));
        }
    }
    for o in all_outputs {
        b.add_output(o);
    }
    b.build().expect("merging valid netlists is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_entry_generates() {
        for spec in SUITE {
            let n = generate(spec.name).expect(spec.name);
            assert!(!n.is_empty(), "{} is empty", spec.name);
            assert_eq!(
                n.is_combinational(),
                !spec.sequential,
                "{} sequential flag",
                spec.name
            );
            assert!(!n.outputs().is_empty(), "{} has outputs", spec.name);
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = generate("c9999").unwrap_err();
        assert!(err.to_string().contains("c9999"));
    }

    #[test]
    fn c1355a_is_nand_expanded_c499a() {
        let c499a = generate("c499a").unwrap();
        let c1355a = generate("c1355a").unwrap();
        assert!(c1355a.len() > c499a.len());
        assert!(c1355a
            .iter()
            .all(|(_, g)| !matches!(g.kind(), GateKind::Xor | GateKind::Xnor)));
        assert!(c499a.iter().any(|(_, g)| g.kind() == GateKind::Xor));
    }

    #[test]
    fn c6288a_is_the_largest_combinational_entry() {
        let sizes: Vec<(String, usize)> = SUITE
            .iter()
            .filter(|s| !s.sequential)
            .map(|s| (s.name.to_string(), generate(s.name).unwrap().len()))
            .collect();
        let c6288 = sizes.iter().find(|(n, _)| n == "c6288a").unwrap().1;
        assert!(c6288 > 2000);
        for (name, size) in &sizes {
            assert!(*size <= c6288, "{name} ({size}) bigger than c6288a");
        }
    }

    #[test]
    fn merge_concatenates_io() {
        let a = generate("c17").unwrap();
        let m = merge(&[&a, &a]);
        assert_eq!(m.len(), 2 * a.len());
        assert_eq!(m.inputs().len(), 2 * a.inputs().len());
        assert_eq!(m.outputs().len(), 2 * a.outputs().len());
        assert_eq!(m.max_level(), a.max_level());
    }

    #[test]
    fn merged_names_are_unique() {
        let a = generate("c17").unwrap();
        let m = merge(&[&a, &a]);
        let mut names: Vec<&str> = m.ids().filter_map(|id| m.name(id)).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, m.len());
    }
}
