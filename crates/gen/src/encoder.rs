//! Priority encoder / interrupt-controller generator — the structural
//! analog of c432 (a 27-channel interrupt controller).

use incdx_netlist::{GateId, GateKind, Netlist};

/// Generates an interrupt controller with `channels` request lines and a
/// per-channel enable mask: channel `i` is *granted* when it requests, is
/// enabled, and no lower-numbered enabled channel requests. Outputs are the
/// grant lines' OR-encoded binary index plus a `valid` line.
///
/// Inputs: `r0..r{n-1}` (requests), `e0..e{n-1}` (enables). Outputs:
/// `v` (some grant), `y0..y{k-1}` (binary index of the granted channel,
/// LSB first, 0 when none).
///
/// # Panics
///
/// Panics if `channels < 2`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::priority_encoder(27);
/// assert_eq!(n.inputs().len(), 54);
/// assert_eq!(n.outputs().len(), 6); // v + 5 index bits
/// ```
pub fn priority_encoder(channels: usize) -> Netlist {
    assert!(channels >= 2, "need at least 2 channels");
    let idx_bits = usize::BITS as usize - (channels - 1).leading_zeros() as usize;
    let mut b = Netlist::builder();
    let req: Vec<GateId> = (0..channels)
        .map(|i| b.add_input(format!("r{i}")))
        .collect();
    let ena: Vec<GateId> = (0..channels)
        .map(|i| b.add_input(format!("e{i}")))
        .collect();
    // Active request per channel.
    let act: Vec<GateId> = (0..channels)
        .map(|i| b.add_gate(GateKind::And, vec![req[i], ena[i]]))
        .collect();
    // "No active channel below i": a NOR chain, built as a prefix tree to
    // keep depth realistic (c432 has a layered structure).
    let mut none_below = Vec::with_capacity(channels);
    none_below.push(None); // channel 0 has nothing below
    for i in 1..channels {
        let blockers: Vec<GateId> = act[..i].to_vec();
        none_below.push(Some(b.add_gate(GateKind::Nor, blockers)));
    }
    let grant: Vec<GateId> = (0..channels)
        .map(|i| match none_below[i] {
            Some(nb) => b.add_gate(GateKind::And, vec![act[i], nb]),
            None => b.add_gate(GateKind::Buf, vec![act[i]]),
        })
        .collect();
    let v = b.add_gate(GateKind::Or, grant.clone());
    b.add_output(v);
    for bit in 0..idx_bits {
        let taps: Vec<GateId> = (0..channels)
            .filter(|i| i >> bit & 1 == 1)
            .map(|i| grant[i])
            .collect();
        let y = if taps.is_empty() {
            b.add_gate(GateKind::Const0, vec![])
        } else {
            b.add_gate(GateKind::Or, taps)
        };
        b.add_output(y);
    }
    b.build().expect("encoder structure is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_sim::{PackedMatrix, Simulator};

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut pi = PackedMatrix::new(inputs.len(), 1);
        for (i, &v) in inputs.iter().enumerate() {
            pi.set(i, 0, v);
        }
        let vals = Simulator::new().run(n, &pi);
        n.outputs().iter().map(|o| vals.get(o.index(), 0)).collect()
    }

    fn run(n: &Netlist, channels: usize, req: u64, ena: u64) -> (bool, usize) {
        let mut iv: Vec<bool> = (0..channels).map(|i| req >> i & 1 == 1).collect();
        iv.extend((0..channels).map(|i| ena >> i & 1 == 1));
        let out = eval(n, &iv);
        let idx = out[1..]
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | (b as usize) << i);
        (out[0], idx)
    }

    #[test]
    fn lowest_enabled_requester_wins() {
        let n = priority_encoder(8);
        // Channels 2, 5 request; all enabled: channel 2 wins.
        let (v, idx) = run(&n, 8, 0b0010_0100, 0xFF);
        assert!(v);
        assert_eq!(idx, 2);
        // Disable channel 2: channel 5 wins.
        let (v, idx) = run(&n, 8, 0b0010_0100, 0xFF & !0b100);
        assert!(v);
        assert_eq!(idx, 5);
    }

    #[test]
    fn no_request_no_grant() {
        let n = priority_encoder(8);
        let (v, idx) = run(&n, 8, 0, 0xFF);
        assert!(!v);
        assert_eq!(idx, 0);
        // Requests without enables also grant nothing.
        let (v, _) = run(&n, 8, 0xFF, 0);
        assert!(!v);
    }

    #[test]
    fn exhaustive_4_channels() {
        let n = priority_encoder(4);
        for req in 0..16u64 {
            for ena in 0..16u64 {
                let (v, idx) = run(&n, 4, req, ena);
                let winner = (0..4).find(|i| (req & ena) >> i & 1 == 1);
                assert_eq!(v, winner.is_some(), "req={req:04b} ena={ena:04b}");
                assert_eq!(idx, winner.unwrap_or(0), "req={req:04b} ena={ena:04b}");
            }
        }
    }

    #[test]
    fn c432_analog_scale() {
        let n = priority_encoder(27);
        assert!(n.len() > 80, "got {}", n.len());
        assert_eq!(n.inputs().len(), 54);
    }
}
