//! Sequential benchmark generators (counters, LFSRs, random Moore
//! machines) — structural analogs of the full-scan ISCAS'89 workloads.
//! The diagnosis engine consumes these through
//! [`incdx_netlist::scan_convert`].

use incdx_netlist::{GateId, GateKind, Netlist};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates an `n`-bit synchronous binary up-counter with enable, plus a
/// terminal-count output and per-bit decoded outputs.
///
/// Inputs: `en`. Outputs: `q0..q{n-1}`, `tc` (all bits set).
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::counter(4);
/// assert_eq!(n.dffs().len(), 4);
/// ```
pub fn counter(bits: usize) -> Netlist {
    assert!(bits > 0, "bits must be positive");
    let mut b = Netlist::builder();
    let en = b.add_input("en");
    // Declare DFFs first with placeholder fanins referencing gates built
    // later — the builder allows forward references.
    // Layout: en=0, q_i = 1..bits, rest after.
    let q: Vec<GateId> = (0..bits)
        .map(|i| b.add_named_gate(GateKind::Dff, vec![GateId(0)], format!("q{i}")))
        .collect();
    // toggle_i = en AND q_0 AND ... AND q_{i-1}; d_i = q_i XOR toggle_i.
    let mut carry = en;
    let mut d = Vec::with_capacity(bits);
    for (i, &qi) in q.iter().enumerate() {
        let di = b.add_gate(GateKind::Xor, vec![qi, carry]);
        d.push(di);
        if i + 1 < bits {
            carry = b.add_gate(GateKind::And, vec![carry, qi]);
        }
    }
    let tc = b.add_gate(GateKind::And, q.clone());
    for &qi in &q {
        b.add_output(qi);
    }
    b.add_output(tc);
    build_with_dff_fixup(b, &q, &d)
}

/// Generates a Fibonacci LFSR of `bits` bits with feedback `taps`
/// (bit indices XORed into the shift-in) and a parity output over the
/// state — a compact analog of the LFSR-ish mid-size s-circuits.
///
/// Inputs: `scan_in` (XORed into the feedback, making the state
/// controllable). Outputs: `q{bits-1}` (serial out), `par` (state parity).
///
/// # Panics
///
/// Panics if `bits < 2` or any tap index is out of range.
///
/// # Example
///
/// ```
/// let n = incdx_gen::lfsr(8, &[0, 3, 5]);
/// assert_eq!(n.dffs().len(), 8);
/// ```
pub fn lfsr(bits: usize, taps: &[usize]) -> Netlist {
    assert!(bits >= 2, "bits must be at least 2");
    assert!(taps.iter().all(|&t| t < bits), "tap out of range");
    let mut b = Netlist::builder();
    let scan_in = b.add_input("scan_in");
    let q: Vec<GateId> = (0..bits)
        .map(|i| b.add_named_gate(GateKind::Dff, vec![GateId(0)], format!("q{i}")))
        .collect();
    // Feedback = XOR of taps and scan_in.
    let mut fb_taps: Vec<GateId> = taps.iter().map(|&t| q[t]).collect();
    fb_taps.push(scan_in);
    let feedback = if fb_taps.len() == 1 {
        b.add_gate(GateKind::Buf, vec![fb_taps[0]])
    } else {
        b.add_gate(GateKind::Xor, fb_taps)
    };
    // Shift register: d_0 = feedback, d_i = q_{i-1}.
    let mut d = vec![feedback];
    for i in 1..bits {
        d.push(b.add_gate(GateKind::Buf, vec![q[i - 1]]));
    }
    let par = b.add_gate(GateKind::Xor, q.clone());
    b.add_output(q[bits - 1]);
    b.add_output(par);
    build_with_dff_fixup(b, &q, &d)
}

/// Generates a random Moore machine with `2^state_bits` states: random
/// next-state logic (two-level AND-OR over state and input bits) and
/// random output logic, all derived from `seed`. This is the scalable
/// workload standing in for the larger s-circuits (s1238, s9234, ...).
///
/// Inputs: `x0..x{inputs-1}`. Outputs: `z0..z{outputs-1}`.
///
/// # Panics
///
/// Panics if any dimension is zero.
///
/// # Example
///
/// ```
/// let n = incdx_gen::moore_machine(5, 4, 6, 99);
/// assert_eq!(n.dffs().len(), 5);
/// assert_eq!(n.outputs().len(), 6);
/// ```
pub fn moore_machine(state_bits: usize, inputs: usize, outputs: usize, seed: u64) -> Netlist {
    assert!(
        state_bits > 0 && inputs > 0 && outputs > 0,
        "dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Netlist::builder();
    let x: Vec<GateId> = (0..inputs).map(|i| b.add_input(format!("x{i}"))).collect();
    let q: Vec<GateId> = (0..state_bits)
        .map(|i| b.add_named_gate(GateKind::Dff, vec![GateId(0)], format!("s{i}")))
        .collect();
    // The conceptual literal table: index 2k is signal k, index 2k+1 its
    // complement. NOT gates are materialized on first use so that
    // literals the random SOPs never pick do not become dead gates (the
    // `NL004` lint keeps the generated suite clean).
    let signals: Vec<GateId> = x.iter().chain(&q).copied().collect();
    let num_literals = 2 * signals.len();
    let mut negations: Vec<Option<GateId>> = vec![None; signals.len()];
    let random_sop = |b: &mut incdx_netlist::NetlistBuilder,
                      rng: &mut StdRng,
                      negations: &mut Vec<Option<GateId>>|
     -> GateId {
        let num_terms = rng.random_range(2..=4);
        let terms: Vec<GateId> = (0..num_terms)
            .map(|_| {
                let width = rng.random_range(2..=3.min(num_literals));
                let lits: Vec<GateId> = (0..width)
                    .map(|_| {
                        let idx = rng.random_range(0..num_literals);
                        if idx % 2 == 0 {
                            signals[idx / 2]
                        } else {
                            *negations[idx / 2].get_or_insert_with(|| {
                                b.add_gate(GateKind::Not, vec![signals[idx / 2]])
                            })
                        }
                    })
                    .collect();
                b.add_gate(GateKind::And, lits)
            })
            .collect();
        b.add_gate(GateKind::Or, terms)
    };
    let d: Vec<GateId> = (0..state_bits)
        .map(|_| random_sop(&mut b, &mut rng, &mut negations))
        .collect();
    for _ in 0..outputs {
        let z = random_sop(&mut b, &mut rng, &mut negations);
        b.add_output(z);
    }
    build_with_dff_fixup(b, &q, &d)
}

/// Finalizes a builder whose DFFs were created with placeholder fanins,
/// rewiring DFF `q[i]` to data input `d[i]`.
fn build_with_dff_fixup(b: incdx_netlist::NetlistBuilder, q: &[GateId], d: &[GateId]) -> Netlist {
    let mut n = b.build().expect("sequential structure is valid");
    for (&qi, &di) in q.iter().zip(d) {
        n.replace_gate(qi, GateKind::Dff, vec![di])
            .expect("dff rewiring is valid");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::scan_convert;
    use incdx_sim::{PackedMatrix, SequentialSimulator};

    #[test]
    fn counter_counts_with_enable() {
        let n = counter(3);
        let mut sim = SequentialSimulator::new(&n, 1);
        let q: Vec<usize> = (0..3)
            .map(|i| n.find_by_name(&format!("q{i}")).unwrap().index())
            .collect();
        let read = |f: &PackedMatrix| -> u64 {
            q.iter()
                .enumerate()
                .fold(0, |acc, (i, &qi)| acc | (f.get(qi, 0) as u64) << i)
        };
        let mut en = PackedMatrix::new(1, 1);
        en.set(0, 0, true);
        let mut states = Vec::new();
        for _ in 0..10 {
            let f = sim.step(&n, &en);
            states.push(read(&f));
        }
        assert_eq!(states, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
        // Disable: state holds.
        let hold = PackedMatrix::new(1, 1);
        let f = sim.step(&n, &hold);
        let v = read(&f);
        let f = sim.step(&n, &hold);
        assert_eq!(read(&f), v);
    }

    #[test]
    fn counter_tc_fires_at_max() {
        let n = counter(2);
        let mut sim = SequentialSimulator::new(&n, 1);
        let tc_line = n.outputs()[2];
        let mut en = PackedMatrix::new(1, 1);
        en.set(0, 0, true);
        let mut tcs = Vec::new();
        for _ in 0..4 {
            let f = sim.step(&n, &en);
            tcs.push(f.get(tc_line.index(), 0));
        }
        assert_eq!(tcs, vec![false, false, false, true]);
    }

    #[test]
    fn lfsr_cycles_through_nonzero_states() {
        // x^3 + x + 1 LFSR shape: taps chosen so the state evolves.
        let n = lfsr(3, &[0, 2]);
        let mut sim = SequentialSimulator::new(&n, 1);
        // Seed via scan_in pulses.
        let mut one = PackedMatrix::new(1, 1);
        one.set(0, 0, true);
        sim.step(&n, &one);
        let zero = PackedMatrix::new(1, 1);
        let q: Vec<usize> = (0..3)
            .map(|i| n.find_by_name(&format!("q{i}")).unwrap().index())
            .collect();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            let f = sim.step(&n, &zero);
            let s: u64 = q
                .iter()
                .enumerate()
                .fold(0, |acc, (i, &qi)| acc | (f.get(qi, 0) as u64) << i);
            seen.insert(s);
        }
        assert!(
            seen.len() > 1,
            "lfsr must move through states, saw {seen:?}"
        );
    }

    #[test]
    fn moore_machine_is_deterministic_and_scan_convertible() {
        let a = moore_machine(6, 5, 8, 17);
        let b = moore_machine(6, 5, 8, 17);
        assert_eq!(a.len(), b.len());
        let (core, info) = scan_convert(&a).unwrap();
        assert!(core.is_combinational());
        assert_eq!(info.pseudo_inputs.len(), 6);
        assert_eq!(core.outputs().len(), 8 + 6);
    }
}
