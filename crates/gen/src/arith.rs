//! Arithmetic building blocks: ripple-carry adders, array multipliers and
//! magnitude comparators.

use incdx_netlist::{GateId, GateKind, Netlist, NetlistBuilder};

/// Builds one full adder: returns `(sum, carry_out)`.
pub(crate) fn full_adder(
    b: &mut NetlistBuilder,
    a: GateId,
    x: GateId,
    cin: GateId,
) -> (GateId, GateId) {
    let axb = b.add_gate(GateKind::Xor, vec![a, x]);
    let sum = b.add_gate(GateKind::Xor, vec![axb, cin]);
    let t1 = b.add_gate(GateKind::And, vec![a, x]);
    let t2 = b.add_gate(GateKind::And, vec![axb, cin]);
    let cout = b.add_gate(GateKind::Or, vec![t1, t2]);
    (sum, cout)
}

/// Builds one half adder: returns `(sum, carry_out)`.
pub(crate) fn half_adder(b: &mut NetlistBuilder, a: GateId, x: GateId) -> (GateId, GateId) {
    let sum = b.add_gate(GateKind::Xor, vec![a, x]);
    let cout = b.add_gate(GateKind::And, vec![a, x]);
    (sum, cout)
}

/// Generates a `width`-bit ripple-carry adder with carry-in.
///
/// Inputs (in order): `a0..a{w-1}`, `b0..b{w-1}`, `cin`; outputs:
/// `s0..s{w-1}`, `cout`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::ripple_adder(8);
/// assert_eq!(n.inputs().len(), 17);
/// assert_eq!(n.outputs().len(), 9);
/// ```
pub fn ripple_adder(width: usize) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = Netlist::builder();
    let a: Vec<GateId> = (0..width).map(|i| b.add_input(format!("a{i}"))).collect();
    let x: Vec<GateId> = (0..width).map(|i| b.add_input(format!("b{i}"))).collect();
    let mut carry = b.add_input("cin");
    for i in 0..width {
        let (s, c) = full_adder(&mut b, a[i], x[i], carry);
        b.add_output(s);
        carry = c;
    }
    b.add_output(carry);
    b.build().expect("adder structure is valid")
}

/// Generates a `width × width` array multiplier — the structural analog of
/// c6288 (which is a 16×16 array multiplier).
///
/// Inputs: `a0..a{w-1}`, `b0..b{w-1}`; outputs: `p0..p{2w-1}`.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::array_multiplier(4);
/// assert_eq!(n.inputs().len(), 8);
/// assert_eq!(n.outputs().len(), 8);
/// ```
pub fn array_multiplier(width: usize) -> Netlist {
    assert!(width >= 2, "width must be at least 2");
    let mut b = Netlist::builder();
    let a: Vec<GateId> = (0..width).map(|i| b.add_input(format!("a{i}"))).collect();
    let x: Vec<GateId> = (0..width).map(|i| b.add_input(format!("b{i}"))).collect();
    // Partial product AND(a_i, b_j) contributes to the column of weight
    // i + j; columns are then compressed with full/half adders, carries
    // rippling one column up — the classic adder-array reduction of c6288.
    let mut cols: Vec<Vec<GateId>> = vec![Vec::new(); 2 * width];
    for i in 0..width {
        for j in 0..width {
            let pp = b.add_gate(GateKind::And, vec![a[i], x[j]]);
            cols[i + j].push(pp);
        }
    }
    let top = cols.len() - 1;
    let mut outputs: Vec<GateId> = Vec::with_capacity(2 * width);
    for k in 0..cols.len() {
        if k == top {
            // The top column's carry out is provably 0 (the product fits in
            // 2w bits), so at most one of its bits is ever set and XOR is
            // the exact sum.
            let bits = std::mem::take(&mut cols[k]);
            let o = match bits.len() {
                0 => b.add_gate(GateKind::Const0, vec![]),
                1 => bits[0],
                _ => b.add_gate(GateKind::Xor, bits),
            };
            outputs.push(o);
            continue;
        }
        while cols[k].len() > 1 {
            if cols[k].len() >= 3 {
                let c2 = cols[k].pop().expect("len >= 3");
                let c1 = cols[k].pop().expect("len >= 2");
                let c0 = cols[k].pop().expect("len >= 1");
                let (s, c) = full_adder(&mut b, c0, c1, c2);
                cols[k].push(s);
                cols[k + 1].push(c);
            } else {
                let c1 = cols[k].pop().expect("len == 2");
                let c0 = cols[k].pop().expect("len == 1");
                let (s, c) = half_adder(&mut b, c0, c1);
                cols[k].push(s);
                cols[k + 1].push(c);
            }
        }
        let o = match cols[k].pop() {
            Some(bit) => bit,
            None => b.add_gate(GateKind::Const0, vec![]),
        };
        outputs.push(o);
    }
    for o in outputs {
        let out = b.add_gate(GateKind::Buf, vec![o]);
        b.add_output(out);
    }
    b.build().expect("multiplier structure is valid")
}

/// Generates a `width`-bit magnitude comparator with outputs
/// `lt`, `eq`, `gt` for unsigned operands.
///
/// Inputs: `a0..a{w-1}`, `b0..b{w-1}` (bit 0 = LSB).
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::comparator(4);
/// assert_eq!(n.outputs().len(), 3);
/// ```
pub fn comparator(width: usize) -> Netlist {
    assert!(width > 0, "width must be positive");
    let mut b = Netlist::builder();
    let a: Vec<GateId> = (0..width).map(|i| b.add_input(format!("a{i}"))).collect();
    let x: Vec<GateId> = (0..width).map(|i| b.add_input(format!("b{i}"))).collect();
    // Per-bit equality.
    let eqs: Vec<GateId> = (0..width)
        .map(|i| b.add_gate(GateKind::Xnor, vec![a[i], x[i]]))
        .collect();
    // gt = OR over i of (a_i AND !b_i AND all higher bits equal).
    let mut gt_terms = Vec::new();
    let mut lt_terms = Vec::new();
    for i in (0..width).rev() {
        let nb = b.add_gate(GateKind::Not, vec![x[i]]);
        let na = b.add_gate(GateKind::Not, vec![a[i]]);
        let mut gt_f = vec![a[i], nb];
        let mut lt_f = vec![na, x[i]];
        for &e in &eqs[i + 1..] {
            gt_f.push(e);
            lt_f.push(e);
        }
        gt_terms.push(b.add_gate(GateKind::And, gt_f));
        lt_terms.push(b.add_gate(GateKind::And, lt_f));
    }
    let gt = b.add_gate(GateKind::Or, gt_terms);
    let lt = b.add_gate(GateKind::Or, lt_terms);
    let eq = b.add_gate(GateKind::And, eqs);
    b.add_output(lt);
    b.add_output(eq);
    b.add_output(gt);
    b.build().expect("comparator structure is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_sim::{PackedMatrix, Simulator};

    /// Applies scalar inputs (one vector) and reads scalar outputs.
    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), n.inputs().len());
        let mut pi = PackedMatrix::new(inputs.len(), 1);
        for (i, &v) in inputs.iter().enumerate() {
            pi.set(i, 0, v);
        }
        let vals = Simulator::new().run(n, &pi);
        n.outputs().iter().map(|o| vals.get(o.index(), 0)).collect()
    }

    fn to_bits(x: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| x >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn adder_adds_exhaustively_4bit() {
        let n = ripple_adder(4);
        for a in 0..16u64 {
            for x in 0..16u64 {
                for cin in 0..2u64 {
                    let mut iv = to_bits(a, 4);
                    iv.extend(to_bits(x, 4));
                    iv.push(cin == 1);
                    let out = eval(&n, &iv);
                    assert_eq!(from_bits(&out), a + x + cin, "{a}+{x}+{cin}");
                }
            }
        }
    }

    #[test]
    fn multiplier_multiplies_exhaustively_4bit() {
        let n = array_multiplier(4);
        for a in 0..16u64 {
            for x in 0..16u64 {
                let mut iv = to_bits(a, 4);
                iv.extend(to_bits(x, 4));
                let out = eval(&n, &iv);
                assert_eq!(from_bits(&out), a * x, "{a}*{x}");
            }
        }
    }

    #[test]
    fn multiplier_multiplies_sampled_8bit() {
        let n = array_multiplier(8);
        for (a, x) in [
            (0u64, 0u64),
            (255, 255),
            (170, 85),
            (1, 255),
            (200, 3),
            (13, 17),
        ] {
            let mut iv = to_bits(a, 8);
            iv.extend(to_bits(x, 8));
            let out = eval(&n, &iv);
            assert_eq!(from_bits(&out), a * x, "{a}*{x}");
        }
    }

    #[test]
    fn multiplier_16bit_has_c6288_scale() {
        let n = array_multiplier(16);
        assert!(n.len() > 1400, "got {} gates", n.len());
        assert_eq!(n.outputs().len(), 32);
        // Spot-check a product.
        let (a, x) = (54321u64, 12345u64);
        let mut iv = to_bits(a, 16);
        iv.extend(to_bits(x, 16));
        let out = eval(&n, &iv);
        assert_eq!(from_bits(&out), a * x);
    }

    #[test]
    fn comparator_is_correct_exhaustively_3bit() {
        let n = comparator(3);
        for a in 0..8u64 {
            for x in 0..8u64 {
                let mut iv = to_bits(a, 3);
                iv.extend(to_bits(x, 3));
                let out = eval(&n, &iv);
                assert_eq!(out[0], a < x, "lt {a} {x}");
                assert_eq!(out[1], a == x, "eq {a} {x}");
                assert_eq!(out[2], a > x, "gt {a} {x}");
            }
        }
    }
}
