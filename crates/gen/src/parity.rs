//! Parity trees and single-error-correcting (SEC) circuits — the
//! structural analogs of c499/c1355 (32-bit SEC) and c1908 (16-bit SEC/DED).

use incdx_netlist::{GateId, GateKind, Netlist};

/// Generates a balanced XOR parity tree over `width` inputs with a single
/// output `p`.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::parity_tree(9);
/// assert_eq!(n.inputs().len(), 9);
/// assert_eq!(n.outputs().len(), 1);
/// ```
pub fn parity_tree(width: usize) -> Netlist {
    assert!(width >= 2, "width must be at least 2");
    let mut b = Netlist::builder();
    let mut layer: Vec<GateId> = (0..width).map(|i| b.add_input(format!("d{i}"))).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.add_gate(GateKind::Xor, vec![pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    b.add_output(layer[0]);
    b.build().expect("parity structure is valid")
}

/// Generates a Hamming-style single-error-correcting circuit over
/// `data_bits` data inputs: syndrome computation (XOR trees over the
/// received data and check bits) followed by a decode-and-correct stage
/// (AND decode, XOR correct) — the structure of c499/c1908.
///
/// Inputs: `d0..d{n-1}` (received data), `c0..c{r-1}` (received check
/// bits, where `r` is the number of Hamming positions needed). Outputs:
/// the corrected data word `o0..o{n-1}`.
///
/// The circuit corrects any single flipped *data* bit: if exactly one data
/// bit of a valid codeword is inverted, the output equals the original
/// word (see the tests).
///
/// # Panics
///
/// Panics if `data_bits < 2`.
///
/// # Example
///
/// ```
/// let n = incdx_gen::sec_circuit(32);
/// assert_eq!(n.outputs().len(), 32);
/// assert!(n.inputs().len() > 32); // data + check bits
/// ```
pub fn sec_circuit(data_bits: usize) -> Netlist {
    assert!(data_bits >= 2, "data_bits must be at least 2");
    let r = check_bits(data_bits);
    let mut b = Netlist::builder();
    let d: Vec<GateId> = (0..data_bits)
        .map(|i| b.add_input(format!("d{i}")))
        .collect();
    let c: Vec<GateId> = (0..r).map(|i| b.add_input(format!("c{i}"))).collect();
    // Data bit i sits at Hamming position `position(i)`; syndrome bit j is
    // the parity of every received bit whose position has bit j set,
    // including check bit j itself (at position 2^j).
    let mut syndrome = Vec::with_capacity(r);
    for (j, &cj) in c.iter().enumerate() {
        let mut taps = vec![cj];
        for (i, &di) in d.iter().enumerate() {
            if position(i) >> j & 1 == 1 {
                taps.push(di);
            }
        }
        // Balanced XOR tree (matches c499's tree shape better than a flat
        // wide XOR).
        syndrome.push(xor_tree(&mut b, &taps));
    }
    // Correct: output i = d_i XOR (syndrome == position(i)).
    for (i, &di) in d.iter().enumerate() {
        let pos = position(i);
        let mut terms = Vec::with_capacity(r);
        for (j, &s) in syndrome.iter().enumerate() {
            if pos >> j & 1 == 1 {
                terms.push(s);
            } else {
                terms.push(b.add_gate(GateKind::Not, vec![s]));
            }
        }
        let hit = b.add_gate(GateKind::And, terms);
        let o = b.add_gate(GateKind::Xor, vec![di, hit]);
        b.add_output(o);
    }
    b.build().expect("sec structure is valid")
}

/// Balanced XOR tree over `taps` inside an existing builder.
fn xor_tree(b: &mut incdx_netlist::NetlistBuilder, taps: &[GateId]) -> GateId {
    assert!(!taps.is_empty());
    let mut layer = taps.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.add_gate(GateKind::Xor, vec![pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// Number of Hamming check bits needed for `data_bits` data bits.
fn check_bits(data_bits: usize) -> usize {
    let mut r = 2;
    while (1usize << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

/// Hamming position (1-based, skipping powers of two) of data bit `i`.
fn position(i: usize) -> usize {
    let mut pos: usize = 1;
    let mut seen = 0;
    loop {
        if !pos.is_power_of_two() {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_sim::{PackedMatrix, Simulator};

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut pi = PackedMatrix::new(inputs.len(), 1);
        for (i, &v) in inputs.iter().enumerate() {
            pi.set(i, 0, v);
        }
        let vals = Simulator::new().run(n, &pi);
        n.outputs().iter().map(|o| vals.get(o.index(), 0)).collect()
    }

    /// Reference encoder: check bit j = parity of data bits whose Hamming
    /// position has bit j set.
    fn encode(data: &[bool]) -> Vec<bool> {
        let r = check_bits(data.len());
        (0..r)
            .map(|j| {
                data.iter()
                    .enumerate()
                    .filter(|(i, _)| position(*i) >> j & 1 == 1)
                    .fold(false, |acc, (_, &b)| acc ^ b)
            })
            .collect()
    }

    #[test]
    fn parity_tree_computes_parity() {
        for width in [2usize, 3, 5, 8, 9] {
            let n = parity_tree(width);
            for pattern in 0..(1u64 << width) {
                let iv: Vec<bool> = (0..width).map(|i| pattern >> i & 1 == 1).collect();
                let expect = iv.iter().fold(false, |a, &b| a ^ b);
                assert_eq!(eval(&n, &iv), vec![expect], "w={width} p={pattern:b}");
            }
        }
    }

    #[test]
    fn clean_codeword_passes_through() {
        let n = sec_circuit(8);
        for pattern in [0u64, 0xFF, 0xA5, 0x3C, 0x01] {
            let data: Vec<bool> = (0..8).map(|i| pattern >> i & 1 == 1).collect();
            let mut iv = data.clone();
            iv.extend(encode(&data));
            assert_eq!(eval(&n, &iv), data, "pattern {pattern:02x}");
        }
    }

    #[test]
    fn single_data_bit_error_is_corrected() {
        let n = sec_circuit(8);
        for pattern in [0x00u64, 0x5A, 0xFF] {
            let data: Vec<bool> = (0..8).map(|i| pattern >> i & 1 == 1).collect();
            let checks = encode(&data);
            for flip in 0..8 {
                let mut corrupted = data.clone();
                corrupted[flip] = !corrupted[flip];
                let mut iv = corrupted;
                iv.extend(checks.clone());
                assert_eq!(eval(&n, &iv), data, "pattern {pattern:02x} flip {flip}");
            }
        }
    }

    #[test]
    fn check_bit_error_does_not_corrupt_data() {
        let n = sec_circuit(8);
        let data: Vec<bool> = (0..8).map(|i| 0x96u64 >> i & 1 == 1).collect();
        let checks = encode(&data);
        for flip in 0..checks.len() {
            let mut bad_checks = checks.clone();
            bad_checks[flip] = !bad_checks[flip];
            let mut iv = data.clone();
            iv.extend(bad_checks);
            // Syndrome points at a check position (a power of two), which
            // is no data bit, so the data passes through unchanged.
            assert_eq!(eval(&n, &iv), data, "flip c{flip}");
        }
    }

    #[test]
    fn sec32_matches_c499_scale() {
        let n = sec_circuit(32);
        assert_eq!(n.inputs().len(), 32 + check_bits(32));
        assert!(n.len() > 150, "got {}", n.len());
    }

    #[test]
    fn hamming_positions_skip_powers_of_two() {
        assert_eq!(position(0), 3);
        assert_eq!(position(1), 5);
        assert_eq!(position(2), 6);
        assert_eq!(position(3), 7);
        assert_eq!(position(4), 9);
        assert_eq!(check_bits(4), 3);
        assert_eq!(check_bits(11), 4);
        assert_eq!(check_bits(32), 6);
    }
}
