//! Property tests of the benchmark generators: arithmetic circuits agree
//! with machine arithmetic across random widths and operands, and the
//! random-DAG generator stays structurally valid across its parameter
//! space.

use incdx_gen::{
    alu, array_multiplier, comparator, parity_tree, random_dag, ripple_adder, AluOp,
    RandomDagConfig,
};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Simulator};
use proptest::prelude::*;

fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
    let mut pi = PackedMatrix::new(inputs.len(), 1);
    for (i, &v) in inputs.iter().enumerate() {
        pi.set(i, 0, v);
    }
    let vals = Simulator::new().run(n, &pi);
    n.outputs().iter().map(|o| vals.get(o.index(), 0)).collect()
}

fn to_bits(x: u64, w: usize) -> Vec<bool> {
    (0..w).map(|i| x >> i & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn adder_matches_u64_addition(width in 1usize..16, a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64, cin in prop::bool::ANY) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let n = ripple_adder(width);
        let mut iv = to_bits(a, width);
        iv.extend(to_bits(b, width));
        iv.push(cin);
        let out = eval(&n, &iv);
        prop_assert_eq!(from_bits(&out), a + b + cin as u64);
    }

    #[test]
    fn multiplier_matches_u64_multiplication(width in 2usize..9, a in 0u64..256, b in 0u64..256) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let n = array_multiplier(width);
        let mut iv = to_bits(a, width);
        iv.extend(to_bits(b, width));
        let out = eval(&n, &iv);
        prop_assert_eq!(from_bits(&out), a * b);
    }

    #[test]
    fn comparator_matches_u64_ordering(width in 1usize..10, a in 0u64..1024, b in 0u64..1024) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let n = comparator(width);
        let mut iv = to_bits(a, width);
        iv.extend(to_bits(b, width));
        let out = eval(&n, &iv);
        prop_assert_eq!(out, vec![a < b, a == b, a > b]);
    }

    #[test]
    fn parity_tree_matches_popcount(width in 2usize..20, pattern in 0u64..u32::MAX as u64) {
        let n = parity_tree(width);
        let iv: Vec<bool> = (0..width).map(|i| pattern >> i & 1 == 1).collect();
        let expect = iv.iter().filter(|&&b| b).count() % 2 == 1;
        prop_assert_eq!(eval(&n, &iv), vec![expect]);
    }

    #[test]
    fn alu_matches_reference_across_ops(width in 1usize..9, a in 0u64..256, b in 0u64..256, cin in prop::bool::ANY, op in 0usize..6) {
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        let n = alu(width, &AluOp::DEFAULT_OPS);
        let opbits = n.inputs().len() - 2 * width - 1;
        let mut iv = to_bits(a, width);
        iv.extend(to_bits(b, width));
        iv.push(cin);
        iv.extend((0..opbits).map(|i| op >> i & 1 == 1));
        let out = eval(&n, &iv);
        let r = from_bits(&out[..width]);
        let expect = AluOp::DEFAULT_OPS[op].apply(a, b, cin, width);
        prop_assert_eq!(r, expect & mask, "{:?}", AluOp::DEFAULT_OPS[op]);
        prop_assert_eq!(out[width + 1], r == 0, "zero flag");
    }

    #[test]
    fn random_dag_is_valid_across_parameter_space(
        inputs in 2usize..12,
        gates in 1usize..120,
        outputs in 1usize..10,
        max_fanin in 2usize..5,
        xor_fraction in 0.0f64..0.5,
        window in 4usize..64,
        seed in 0u64..10_000,
    ) {
        let n = random_dag(&RandomDagConfig { inputs, gates, outputs, max_fanin, xor_fraction, window }, seed);
        prop_assert_eq!(n.len(), inputs + gates);
        prop_assert!(!n.outputs().is_empty());
        // Builder already validated acyclicity/arity; check the schedule.
        prop_assert_eq!(n.topo_order().len(), n.len());
    }
}
