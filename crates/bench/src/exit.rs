//! Shared process-exit conventions for the experiment binaries,
//! mirroring the lint binary's contract: **0** on success, **1** with a
//! structured one-line JSON error record when the engine rejects a
//! workload ([`IncdxError`]), **2** on usage errors (malformed flags or
//! unusable checkpoint files). The record schema is documented in
//! EXPERIMENTS.md so CI wrappers can key off it without scraping stderr.

use std::process::ExitCode;

use incdx_core::{escape_json, Checkpoint, IncdxError};

use crate::experiments::save_checkpoint;

/// The one-line record [`engine_error`] prints (separate for testing).
pub fn engine_error_record(label: &str, err: &IncdxError) -> String {
    format!(
        "{{\"error\":\"incdx\",\"label\":\"{}\",\"detail\":\"{}\"}}",
        escape_json(label),
        escape_json(&err.to_string())
    )
}

/// Terminates a binary on a failed engine run: prints the machine-readable
/// record on stdout (next to the run reports) and exits 1.
pub fn engine_error(label: &str, err: &IncdxError) -> ExitCode {
    println!("{}", engine_error_record(label, err));
    ExitCode::from(1)
}

/// Terminates a binary on a malformed invocation: message on stderr and
/// exit 2, matching `Args::parse`'s own flag errors.
pub fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// Final step of a checkpoint-aware binary: writes the captured
/// checkpoint (if any) to the `--checkpoint` path (if given) and turns
/// the outcome into the process exit code.
pub fn finish_with_checkpoint(path: Option<&str>, checkpoint: Option<&Checkpoint>) -> ExitCode {
    match (path, checkpoint) {
        (Some(path), Some(checkpoint)) => match save_checkpoint(path, checkpoint) {
            Ok(()) => {
                eprintln!("checkpoint written to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => usage_error(&e),
        },
        (Some(path), None) => {
            eprintln!("no checkpoint captured (run finished cleanly); {path} not written");
            ExitCode::SUCCESS
        }
        _ => ExitCode::SUCCESS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_error_record_is_one_escaped_json_line() {
        let err = IncdxError::WidthMismatch {
            expected: 3,
            got: 1,
        };
        let record = engine_error_record("table1/c432a/k2/t0 \"x\"", &err);
        assert!(
            record.starts_with("{\"error\":\"incdx\",\"label\":\"table1/c432a/k2/t0 \\\"x\\\"\"")
        );
        assert!(record.contains("\"detail\":\""));
        assert!(!record.contains('\n'));
        assert_eq!(record.matches('{').count(), record.matches('}').count());
    }
}
