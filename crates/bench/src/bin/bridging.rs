//! Extension experiment — the paper's conclusion: "we plan to apply this
//! approach to other types of physical faults ... by adopting a suitable
//! fault model in the correction stage." A wired bridge between two lines
//! is, on the correction side, exactly two `InsertGate` corrections (one
//! per bridged line), so the design-error engine diagnoses bridges with
//! no new machinery. This binary injects random wired bridges and
//! measures how often a 2-correction rectification is found and verified.
//!
//! `cargo run -p incdx-bench --release --bin bridging -- [--trials N]
//! [--circuits a,b] [--seed N]`

use incdx_bench::{run_parallel, scan_core, Args, Table};
use incdx_core::{Rectifier, RectifyConfig};
use incdx_fault::{BridgeKind, BridgingFault};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Trial {
    solved: bool,
    nodes: usize,
}

fn trial(golden: &Netlist, seed: u64, args: &Args) -> Option<Trial> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Draw a bridgeable random pair of logic lines.
    let lines: Vec<_> = golden
        .iter()
        .filter(|(_, g)| g.kind().is_logic())
        .map(|(id, _)| id)
        .collect();
    let mut bridged = golden.clone();
    let mut injected = None;
    for _ in 0..50 {
        let a = lines[rng.random_range(0..lines.len())];
        let b = lines[rng.random_range(0..lines.len())];
        if a == b {
            continue;
        }
        let kind = if rng.random_bool(0.5) {
            BridgeKind::WiredAnd
        } else {
            BridgeKind::WiredOr
        };
        let fault = BridgingFault::new(a, b, kind);
        let mut candidate = golden.clone();
        if fault.apply(&mut candidate).is_ok() {
            bridged = candidate;
            injected = Some(fault);
            break;
        }
    }
    let fault = injected?;
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0xB41D);
    let pi = PackedMatrix::random(golden.inputs().len(), args.vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &bridged,
        &sim.run_for_inputs(&bridged, golden.inputs(), &pi),
    );
    // The bridge must be excited on these vectors.
    {
        let vals = sim.run(golden, &pi);
        if Response::compare(golden, &vals, &device).matches() {
            return None;
        }
    }
    // Rectify the *correct* netlist toward the bridged device using the
    // design-error correction model (two InsertGate fixes max).
    let mut config = RectifyConfig::dedc(2);
    config.time_limit = Some(args.time_limit);
    config.sparse = args.sparse;
    config.hierarchical = args.hierarchical;
    config.prune = args.prune;
    config.batch_obs = args.batch_obs;
    config.dispatch = args.dispatch;
    if args.dispatch {
        config.jobs = args.jobs;
    }
    let result = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
        .ok()?
        .run();
    let solved = match result.solutions.first() {
        Some(solution) => {
            let mut modeled = golden.clone();
            solution
                .corrections
                .iter()
                .all(|c| c.apply(&mut modeled).is_ok())
                && Response::compare(
                    &modeled,
                    &sim.run_for_inputs(&modeled, golden.inputs(), &pi),
                    &device,
                )
                .matches()
        }
        None => false,
    };
    let _ = fault;
    Some(Trial {
        solved,
        nodes: result.stats.nodes,
    })
}

fn main() {
    let args = Args::parse();
    // --dispatch hands the cores to the engine's node dispatcher, so
    // trials serialize; otherwise the harness fans out across trials.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec!["c432a".into(), "c880a".into(), "c1908a".into()]
    } else {
        args.circuits.clone()
    };
    println!(
        "Extension — wired-bridge diagnosis through the correction stage. \
         seed={} trials={}",
        args.seed, args.trials
    );
    let mut table = Table::new(["ckt", "modeled", "avg nodes"]);
    for circuit in &circuits {
        let golden = scan_core(circuit);
        let outcomes = run_parallel(args.trials, trial_jobs, |t| {
            for attempt in 0..20u64 {
                let seed = args.trial_seed("bridging", circuit, 1, t, attempt);
                if let Some(r) = trial(&golden, seed, &args) {
                    return Some(r);
                }
            }
            None
        });
        let done: Vec<Trial> = outcomes.into_iter().flatten().collect();
        if done.is_empty() {
            table.row([circuit.as_str(), "-", "-"]);
            continue;
        }
        let solved = done.iter().filter(|t| t.solved).count();
        let nodes = done.iter().map(|t| t.nodes).sum::<usize>() as f64 / done.len() as f64;
        table.row([
            circuit.clone(),
            format!("{}/{}", solved, done.len()),
            format!("{nodes:.0}"),
        ]);
    }
    println!("{table}");
}
