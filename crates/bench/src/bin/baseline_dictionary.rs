//! Baseline comparison: classic single-fault **fault dictionary**
//! diagnosis vs the paper's incremental engine, across 1–3 injected
//! faults. The dictionary matches single faults exactly but returns
//! nothing (or a wrong closest match) for multiples — the paper's §1
//! motivation; the incremental method keeps resolving.
//!
//! `cargo run -p incdx-bench --release --bin baseline_dictionary --
//! [--trials N] [--circuits a,b] [--seed N]`

use incdx_atpg::{all_stuck_at_faults, FaultDictionary};
use incdx_bench::{run_parallel, scan_core, Args, Table};
use incdx_core::{Rectifier, RectifyConfig};
use incdx_fault::{inject_stuck_at_faults, InjectionConfig, StuckAt};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Trial {
    dictionary_exact: bool,
    dictionary_closest_hits: bool,
    incremental_recovers: bool,
}

fn trial(
    golden: &Netlist,
    dict: &FaultDictionary,
    pi: &PackedMatrix,
    faults: usize,
    seed: u64,
    args: &Args,
) -> Option<Trial> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_stuck_at_faults(
        golden,
        &InjectionConfig {
            count: faults,
            require_individually_observable: false,
            check_vectors: pi.num_vectors(),
            max_attempts: 100,
        },
        &mut rng,
    )
    .ok()?;
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, golden.inputs(), pi),
    );
    let syndrome = dict.device_syndrome(golden, &device, pi);
    if syndrome.iter().all(|&w| w == 0) {
        return None; // not excited on these vectors
    }
    let mut injected: Vec<StuckAt> = injection.injected.clone();
    injected.sort();

    let exact = dict.diagnose(&syndrome);
    let dictionary_exact = !exact.is_empty() && faults == 1 && exact.contains(&injected[0]);
    let (closest, _) = dict.diagnose_closest(&syndrome);
    let dictionary_closest_hits = closest.iter().any(|f| injected.contains(f));

    let mut config = RectifyConfig::stuck_at_exhaustive(faults);
    config.time_limit = Some(args.time_limit);
    config.sparse = args.sparse;
    config.hierarchical = args.hierarchical;
    config.prune = args.prune;
    config.batch_obs = args.batch_obs;
    config.dispatch = args.dispatch;
    if args.dispatch {
        config.jobs = args.jobs;
    }
    let result = Rectifier::new(golden.clone(), pi.clone(), device, config)
        .ok()?
        .run();
    let incremental_recovers = result.solutions.iter().any(|s| {
        let t = s.stuck_at_tuple().expect("stuck-at mode");
        t == injected || (!t.is_empty() && t.iter().all(|f| injected.contains(f)))
    });
    Some(Trial {
        dictionary_exact,
        dictionary_closest_hits,
        incremental_recovers,
    })
}

fn main() {
    let args = Args::parse();
    // --dispatch hands the cores to the engine's node dispatcher, so
    // trials serialize; otherwise the harness fans out across trials.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec!["c432a".into(), "c880a".into()]
    } else {
        args.circuits.clone()
    };
    println!(
        "Baseline — fault dictionary vs incremental diagnosis. seed={} trials={}",
        args.seed, args.trials
    );
    let mut table = Table::new([
        "ckt",
        "faults",
        "dict exact",
        "dict closest hits a site",
        "incremental recovers",
    ]);
    for circuit in &circuits {
        let golden = scan_core(circuit);
        let mut vec_rng = StdRng::seed_from_u64(args.seed);
        let pi = PackedMatrix::random(golden.inputs().len(), args.vectors, &mut vec_rng);
        let dict = FaultDictionary::build(&golden, all_stuck_at_faults(&golden), &pi);
        for faults in [1usize, 2, 3] {
            let outcomes = run_parallel(args.trials, trial_jobs, |t| {
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("baseline_dictionary", circuit, faults, t, attempt);
                    if let Some(r) = trial(&golden, &dict, &pi, faults, seed, &args) {
                        return Some(r);
                    }
                }
                None
            });
            let done: Vec<Trial> = outcomes.into_iter().flatten().collect();
            if done.is_empty() {
                continue;
            }
            let n = done.len();
            table.row([
                circuit.clone(),
                faults.to_string(),
                format!("{}/{n}", done.iter().filter(|t| t.dictionary_exact).count()),
                format!(
                    "{}/{n}",
                    done.iter().filter(|t| t.dictionary_closest_hits).count()
                ),
                format!(
                    "{}/{n}",
                    done.iter().filter(|t| t.incremental_recovers).count()
                ),
            ]);
        }
    }
    println!("{table}");
    println!(
        "reading: the dictionary's exact match collapses beyond one fault; the \
         incremental engine keeps recovering the injected tuple — the paper's \
         central claim."
    );
}
