//! Ablation C — the §3.2 claims about the screening heuristics: the
//! `V_err` test (heuristic 2) "disqualifies the majority of inappropriate
//! corrections", and the `V_corr` test (heuristic 3) trims the rest while
//! the thresholds stay high. This binary sweeps `h2` and `h3` at the root
//! node of single-error DEDC runs, reporting the surviving candidate
//! count and whether a verified fix survives each setting.
//!
//! `cargo run -p incdx-bench --release --bin ablation_screening --
//! [--trials N] [--circuits a,b] [--seed N]`

use incdx_bench::{run_parallel, scan_core, Args, Table};
use incdx_core::{ParamLevel, Rectifier, RectifyConfig};
use incdx_fault::{inject_design_errors, InjectionConfig};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Sweep {
    survivors: usize,
    screened: usize,
    fix_survives: bool,
}

fn sweep_point(
    golden: &Netlist,
    vectors: usize,
    seed: u64,
    level: ParamLevel,
    sparse: bool,
    prune: bool,
) -> Option<Sweep> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_design_errors(
        golden,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 100,
        },
        &mut rng,
    )
    .ok()?;
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x5C4E);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    let mut config = RectifyConfig::dedc(1);
    config.max_candidates_per_node = usize::MAX;
    config.theorem_floor = false; // sweep the raw threshold
    config.sparse = sparse;
    config.prune = prune;
    let mut rect = Rectifier::new(
        injection.corrupted.clone(),
        pi.clone(),
        spec.clone(),
        config,
    )
    .ok()?;
    let candidates = rect.rank_candidates(&[], &level);
    let fix_survives = candidates.iter().any(|rc| {
        let mut fixed = injection.corrupted.clone();
        rc.correction.apply(&mut fixed).is_ok()
            && Response::compare(
                &fixed,
                &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
                &spec,
            )
            .matches()
    });
    Some(Sweep {
        survivors: candidates.len(),
        screened: 1, // per-trial marker; aggregated below
        fix_survives,
    })
}

fn main() {
    let args = Args::parse();
    // These ablations stop at the root node (rank_candidates), so the
    // node dispatcher never engages; still honour --dispatch's CPU
    // ownership convention by serializing trials when it is set.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec!["c432a".into(), "c880a".into()]
    } else {
        args.circuits.clone()
    };
    println!(
        "Ablation C — screening thresholds at the root node (single error). \
         seed={} trials={}",
        args.seed, args.trials
    );
    let mut table = Table::new(["ckt", "h2", "h3", "avg survivors", "fix survives"]);
    // Sweep h2 with h3 open, then h3 with h2 open.
    let mut points: Vec<(f64, f64)> = [0.9, 0.7, 0.5, 0.3, 0.1]
        .into_iter()
        .map(|h2| (h2, 0.0))
        .collect();
    points.extend([0.99, 0.95, 0.85, 0.5].into_iter().map(|h3| (0.0, h3)));
    for circuit in &circuits {
        let golden = scan_core(circuit);
        for &(h2, h3) in &points {
            let level = ParamLevel::new(0.0, h2, h3)
                .and_then(|l| l.with_promote(1.0))
                .expect("sweep points are in range");
            let results = run_parallel(args.trials, trial_jobs, |t| {
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("ablation_screening", circuit, 1, t, attempt);
                    if let Some(s) =
                        sweep_point(&golden, args.vectors, seed, level, args.sparse, args.prune)
                    {
                        return Some(s);
                    }
                }
                None
            });
            let done: Vec<Sweep> = results.into_iter().flatten().collect();
            if done.is_empty() {
                continue;
            }
            let n: usize = done.iter().map(|s| s.screened).sum();
            let survivors = done.iter().map(|s| s.survivors).sum::<usize>() as f64 / n as f64;
            let fix = done.iter().filter(|s| s.fix_survives).count();
            table.row([
                circuit.clone(),
                format!("{h2:.2}"),
                format!("{h3:.2}"),
                format!("{survivors:.0}"),
                format!("{}/{}", fix, done.len()),
            ]);
        }
    }
    println!("{table}");
    println!(
        "reading: higher h2 shrinks the candidate space sharply (heuristic 2's \
         job); overly strict h3 can screen out the true fix (the Fig. 1 \
         masking effect) — the paper's motivation for the relaxation ladder."
    );
}
