//! Workspace lint driver: run the `incdx-lint` analyses over `.bench`
//! files and/or the generated benchmark suite.
//!
//! ```text
//! cargo run -p incdx-bench --bin lint -- [FILES...] [--suite] [--json]
//!     [--deny error|warning|info|NLxxx]...
//! ```
//!
//! Each positional argument is parsed as an ISCAS-89 `.bench` file; a
//! parse failure is itself reported as an `NL000` diagnostic rather
//! than aborting the sweep. `--suite` appends every `incdx-gen` suite
//! circuit (s-circuits are linted as generated, *and* as their
//! full-scan cores, labelled `<name>/scan-core`). `--json` switches the
//! human layout for one JSON line per target (schema in
//! `EXPERIMENTS.md`); `--deny` makes findings fatal — by severity
//! (`error` denies `error` and above, `warning` denies `warning` and
//! above) or by individual code (`NL004`). The exit code is 0 when no
//! denied finding exists, 1 otherwise, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use incdx_lint::{lint_netlist, Diagnostic, LintCode, LintExt, Severity};

/// One `--deny` selector.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Deny {
    /// Deny findings at or above a severity.
    AtLeast(Severity),
    /// Deny one specific code.
    Code(LintCode),
}

impl Deny {
    fn matches(self, d: &Diagnostic) -> bool {
        match self {
            Deny::AtLeast(s) => d.severity >= s,
            Deny::Code(c) => d.code == c,
        }
    }
}

struct LintArgs {
    files: Vec<PathBuf>,
    suite: bool,
    json: bool,
    codes: bool,
    deny: Vec<Deny>,
}

fn parse_args<I: IntoIterator<Item = String>>(iter: I) -> Result<LintArgs, String> {
    let mut args = LintArgs {
        files: Vec::new(),
        suite: false,
        json: false,
        codes: false,
        deny: Vec::new(),
    };
    let mut it = iter.into_iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--suite" => args.suite = true,
            "--json" => args.json = true,
            "--codes" => args.codes = true,
            "--deny" => {
                let v = it.next().ok_or("missing value for --deny")?;
                let spec = match v.to_ascii_lowercase().as_str() {
                    "error" => Deny::AtLeast(Severity::Error),
                    "warning" | "warn" => Deny::AtLeast(Severity::Warning),
                    "info" => Deny::AtLeast(Severity::Info),
                    _ => Deny::Code(
                        LintCode::parse(&v)
                            .ok_or_else(|| format!("unknown --deny selector `{v}`"))?,
                    ),
                };
                args.deny.push(spec);
            }
            "--help" | "-h" => {
                return Err("usage: lint [FILES...] [--suite] [--json] [--codes] \
                     [--deny error|warning|info|NLxxx]..."
                    .to_string())
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}` (try --help)"))
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if args.files.is_empty() && !args.suite && !args.codes {
        return Err("nothing to lint: pass .bench files, --suite, or --codes".to_string());
    }
    Ok(args)
}

/// Prints every registered `NLxxx` code with its kebab-case name and
/// one-line description. `NL000` is listed first by hand: it is emitted
/// by tooling on parse failure, not by a registry analysis.
fn emit_codes() {
    println!("NL000 parse-error: the input could not be parsed at all");
    for lint in incdx_lint::registry() {
        let code = lint.code();
        println!("{} {}: {}", code.as_str(), code.name(), lint.description());
    }
}

/// Lints one target, already resolved to diagnostics.
struct TargetReport {
    label: String,
    diagnostics: Vec<Diagnostic>,
}

fn lint_file(path: &PathBuf) -> TargetReport {
    let label = path.display().to_string();
    let diagnostics = match std::fs::read_to_string(path) {
        Ok(text) => match incdx_netlist::parse_bench(&text) {
            Ok(netlist) => netlist.lint(),
            Err(e) => vec![Diagnostic::from_netlist_error(&e)],
        },
        Err(e) => vec![Diagnostic::global(
            LintCode::ParseError,
            Severity::Error,
            format!("cannot read `{label}`: {e}"),
            "check the path and permissions",
        )],
    };
    TargetReport { label, diagnostics }
}

fn lint_suite() -> Vec<TargetReport> {
    let mut out = Vec::new();
    for spec in incdx_gen::SUITE {
        let netlist = match incdx_gen::generate(spec.name) {
            Ok(n) => n,
            Err(e) => {
                out.push(TargetReport {
                    label: spec.name.to_string(),
                    diagnostics: vec![Diagnostic::global(
                        LintCode::ParseError,
                        Severity::Error,
                        format!("suite circuit failed to generate: {e}"),
                        "fix the generator",
                    )],
                });
                continue;
            }
        };
        let combinational = netlist.is_combinational();
        out.push(TargetReport {
            label: spec.name.to_string(),
            diagnostics: lint_netlist(&netlist),
        });
        if !combinational {
            if let Ok((core, _)) = incdx_netlist::scan_convert(&netlist) {
                out.push(TargetReport {
                    label: format!("{}/scan-core", spec.name),
                    diagnostics: lint_netlist(&core),
                });
            }
        }
    }
    out
}

fn emit_json(t: &TargetReport) {
    let mut line = String::with_capacity(128);
    line.push_str("{\"report\":\"lint\",\"target\":\"");
    // Labels are file paths or suite names; escape via the diagnostic
    // serializer's conventions (quotes/backslashes only realistically).
    for c in t.label.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            c => line.push(c),
        }
    }
    line.push_str(&format!("\",\"findings\":{}", t.diagnostics.len()));
    line.push_str(",\"diagnostics\":[");
    for (i, d) in t.diagnostics.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&d.to_json());
    }
    line.push_str("]}");
    println!("{line}");
}

fn emit_human(t: &TargetReport) {
    if t.diagnostics.is_empty() {
        println!("{}: clean", t.label);
        return;
    }
    println!("{}: {} finding(s)", t.label, t.diagnostics.len());
    for d in &t.diagnostics {
        println!("  {d}");
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.codes {
        emit_codes();
        if args.files.is_empty() && !args.suite {
            return ExitCode::SUCCESS;
        }
    }
    let mut targets: Vec<TargetReport> = args.files.iter().map(lint_file).collect();
    if args.suite {
        targets.extend(lint_suite());
    }
    let mut denied = 0usize;
    for t in &targets {
        if args.json {
            emit_json(t);
        } else {
            emit_human(t);
        }
        denied += t
            .diagnostics
            .iter()
            .filter(|d| args.deny.iter().any(|spec| spec.matches(d)))
            .count();
    }
    if denied > 0 {
        eprintln!("lint: {denied} denied finding(s)");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(flags: &[&str]) -> Result<LintArgs, String> {
        parse_args(flags.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_files_and_flags() {
        let a = parse(&["a.bench", "--suite", "--json", "--deny", "error"]).unwrap();
        assert_eq!(a.files, vec![PathBuf::from("a.bench")]);
        assert!(a.suite && a.json);
        assert_eq!(a.deny, vec![Deny::AtLeast(Severity::Error)]);
    }

    #[test]
    fn deny_accepts_codes_and_severities() {
        let a = parse(&["--suite", "--deny", "NL004", "--deny", "warning"]).unwrap();
        assert_eq!(
            a.deny,
            vec![
                Deny::Code(LintCode::DeadCone),
                Deny::AtLeast(Severity::Warning)
            ]
        );
        assert!(parse(&["--suite", "--deny", "bogus"]).is_err());
    }

    #[test]
    fn empty_invocation_is_a_usage_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--json"]).is_err());
    }

    #[test]
    fn codes_flag_needs_no_targets_and_covers_every_code() {
        let a = parse(&["--codes"]).unwrap();
        assert!(a.codes && a.files.is_empty() && !a.suite);
        // Every registry code resolves a name and description for the
        // listing, and the registry covers ALL_CODES exactly.
        let registry = incdx_lint::registry();
        assert_eq!(registry.len(), incdx_lint::ALL_CODES.len());
        for lint in &registry {
            assert!(!lint.description().is_empty());
            assert!(lint.code().as_str().starts_with("NL"));
        }
    }

    #[test]
    fn deny_matching_honours_severity_order() {
        let d = Diagnostic::global(LintCode::DeadCone, Severity::Warning, "m", "h");
        assert!(Deny::AtLeast(Severity::Info).matches(&d));
        assert!(Deny::AtLeast(Severity::Warning).matches(&d));
        assert!(!Deny::AtLeast(Severity::Error).matches(&d));
        assert!(Deny::Code(LintCode::DeadCone).matches(&d));
        assert!(!Deny::Code(LintCode::ScanChain).matches(&d));
    }
}
