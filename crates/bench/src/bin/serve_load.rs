//! Load generator and crash-recovery harness for the `incdx-serve`
//! daemon (`BENCH_MODE=serve` in `scripts/bench.sh`).
//!
//! ```text
//! cargo run -p incdx-bench --bin serve_load -- --daemon target/release/incdx-serve
//!     [--small N] [--giants N] [--threads N] [--workers N] [--spool DIR] [--json]
//! ```
//!
//! Two scenarios run back to back, both against real daemon processes
//! over the line-JSON TCP protocol (this binary deliberately shares no
//! code with `crates/serve` beyond the core JSON reader — it measures
//! the wire, not the internals):
//!
//! 1. **load** — `--threads` closed-loop clients push `--small` tiny
//!    jobs (c17, one slice each) through a shared daemon while
//!    `--giants` multi-slice c432a jobs grind in the background.
//!    Queue-full rejections are honoured by sleeping the daemon's
//!    `retry_after_ms` hint and retrying. Reported: p50/p99/max
//!    submit→terminal latency, throughput, the interned-artifact hit
//!    rate (basis points — nonzero is the sharing proof), rejections
//!    and retries.
//! 2. **recovery** — a control daemon runs one giant job uninterrupted
//!    and records its solution fingerprint; a second daemon is
//!    SIGKILLed mid-job (after >= 2 checkpointed slices), restarted
//!    over the same spool, and must auto-resume the interrupted job to
//!    the *identical* fingerprint. Reported: `jobs_recovered` and
//!    `recovery_identical`.
//!
//! The single-line JSON summary (`--json`) becomes `BENCH_serve.json`.
//! Exit code 0 on success, 1 when any scenario fails, 2 on usage
//! errors.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use incdx_core::json::{self, Json};

struct LoadArgs {
    daemon: PathBuf,
    spool_root: PathBuf,
    small: usize,
    giants: usize,
    threads: usize,
    workers: usize,
    json: bool,
}

fn parse_args<I: IntoIterator<Item = String>>(iter: I) -> Result<LoadArgs, String> {
    let mut args = LoadArgs {
        daemon: PathBuf::new(),
        spool_root: std::env::temp_dir().join(format!("incdx-serve-load-{}", std::process::id())),
        small: 1500,
        giants: 3,
        threads: 4,
        workers: 4,
        json: false,
    };
    let mut it = iter.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--daemon" => args.daemon = PathBuf::from(value("--daemon")?),
            "--spool" => args.spool_root = PathBuf::from(value("--spool")?),
            "--small" => args.small = value("--small")?.parse().map_err(|e| format!("{e}"))?,
            "--giants" => args.giants = value("--giants")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.daemon.as_os_str().is_empty() {
        // Default: the daemon binary built next to this one.
        let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        args.daemon = me
            .parent()
            .ok_or("current_exe has no parent".to_string())?
            .join("incdx-serve");
    }
    if !args.daemon.exists() {
        return Err(format!(
            "daemon binary {} not found (build incdx-serve or pass --daemon)",
            args.daemon.display()
        ));
    }
    args.threads = args.threads.max(1);
    Ok(args)
}

// ---------------------------------------------------------------------
// Wire client (mirrors the daemon integration tests, TCP only)
// ---------------------------------------------------------------------

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(port: u16) -> Result<Client, String> {
        let stream =
            TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .map_err(|e| format!("read timeout: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    fn request(&mut self, line: &str) -> Result<Json, String> {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut out = String::new();
        let n = self
            .reader
            .read_line(&mut out)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        json::parse(out.trim_end())
    }

    /// Polls `status` until the job reaches a terminal state.
    fn wait_terminal(&mut self, job: u64, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let s = self.request(&format!("{{\"req\":\"status\",\"job\":{job}}}"))?;
            let state = s.get("state").and_then(|v| v.as_str()).unwrap_or("");
            if matches!(state, "done" | "cancelled" | "failed") {
                return Ok(s);
            }
            if Instant::now() >= deadline {
                return Err(format!("timed out waiting on job {job} (state {state})"));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

struct Daemon {
    child: Child,
    port: u16,
    recovered: u64,
}

fn spawn_daemon(bin: &Path, spool: &Path, workers: usize, quantum: u64) -> Result<Daemon, String> {
    let mut child = Command::new(bin)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--spool",
            &spool.display().to_string(),
            "--workers",
            &workers.to_string(),
            "--quantum",
            &quantum.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().ok_or("daemon stdout missing")?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("ready line: {e}"))?;
    let ready = json::parse(line.trim()).map_err(|e| format!("ready line: {e}: {line}"))?;
    let addr = ready
        .get("addr")
        .and_then(|v| v.as_str())
        .map_err(|e| format!("ready line: {e}"))?;
    let port = addr
        .rsplit(':')
        .next()
        .and_then(|p| p.parse().ok())
        .ok_or(format!("no port in ready addr {addr}"))?;
    let recovered = ready.get("recovered").and_then(|v| v.as_u64()).unwrap_or(0);
    Ok(Daemon {
        child,
        port,
        recovered,
    })
}

fn shutdown(mut daemon: Daemon) {
    if let Ok(mut c) = Client::connect(daemon.port) {
        let _ = c.request("{\"req\":\"shutdown\"}");
    }
    let _ = daemon.child.wait();
}

const SMALL_SUBMIT: &str = "{\"req\":\"submit\",\"tenant\":\"load\",\"job\":{\"circuit\":\"c17\",\"model\":\"dedc\",\"k\":1,\"vectors\":32,\"seed\":1}}";
const GIANT_SUBMIT: &str = "{\"req\":\"submit\",\"tenant\":\"giant\",\"job\":{\"circuit\":\"c432a\",\"model\":\"stuck-at\",\"k\":2,\"vectors\":64,\"seed\":5}}";

/// Submits one job, honouring queue-full backpressure by sleeping the
/// daemon's `retry_after_ms` hint. Returns (job id, retries used).
fn submit_with_backoff(client: &mut Client, line: &str) -> Result<(u64, u64), String> {
    let mut retries = 0u64;
    loop {
        let r = client.request(line)?;
        if r.get("ok").and_then(|v| v.as_bool()) == Ok(true) {
            let id = r.get("job").and_then(|v| v.as_u64())?;
            return Ok((id, retries));
        }
        let code = r
            .get_opt("code")
            .and_then(|v| v.as_str().ok())
            .unwrap_or("");
        if code != "queue-full" {
            return Err(format!("submit rejected: {r:?}"));
        }
        let wait = r
            .get_opt("retry_after_ms")
            .and_then(|v| v.as_u64().ok())
            .unwrap_or(50);
        retries += 1;
        if retries > 10_000 {
            return Err("backpressure never cleared".to_string());
        }
        std::thread::sleep(Duration::from_millis(wait));
    }
}

struct LoadSummary {
    latencies_ms: Vec<f64>,
    wall: Duration,
    retries: u64,
    stats: Json,
}

/// The load scenario: closed-loop client threads over one daemon.
fn run_load(args: &LoadArgs) -> Result<LoadSummary, String> {
    let spool = args.spool_root.join("load");
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).map_err(|e| format!("spool dir: {e}"))?;
    let daemon = spawn_daemon(&args.daemon, &spool, args.workers, 400)?;
    let port = daemon.port;

    // Giants first, so the small-job latencies are measured against a
    // daemon that is genuinely busy with multi-slice work.
    let mut main_client = Client::connect(port)?;
    let mut giant_ids = Vec::new();
    for _ in 0..args.giants {
        let (id, _) = submit_with_backoff(&mut main_client, GIANT_SUBMIT)?;
        giant_ids.push(id);
    }

    let retries_total = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for t in 0..args.threads {
        let share = args.small / args.threads + usize::from(t < args.small % args.threads);
        let retries_total = Arc::clone(&retries_total);
        handles.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut client = Client::connect(port)?;
            let mut lat = Vec::with_capacity(share);
            for _ in 0..share {
                let t0 = Instant::now();
                let (id, retries) = submit_with_backoff(&mut client, SMALL_SUBMIT)?;
                retries_total.fetch_add(retries, Ordering::Relaxed);
                let s = client.wait_terminal(id, Duration::from_secs(120))?;
                let state = s.get("state").and_then(|v| v.as_str()).unwrap_or("");
                if state != "done" {
                    return Err(format!("small job {id} ended {state}"));
                }
                lat.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            Ok(lat)
        }));
    }
    let mut latencies_ms = Vec::with_capacity(args.small);
    for h in handles {
        latencies_ms.extend(
            h.join()
                .map_err(|_| "client thread panicked".to_string())??,
        );
    }
    for id in giant_ids {
        let s = main_client.wait_terminal(id, Duration::from_secs(600))?;
        let state = s.get("state").and_then(|v| v.as_str()).unwrap_or("");
        if state != "done" {
            return Err(format!("giant job {id} ended {state}"));
        }
    }
    let wall = t0.elapsed();
    let stats = main_client.request("{\"req\":\"stats\"}")?;
    shutdown(daemon);
    let _ = std::fs::remove_dir_all(&spool);
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Ok(LoadSummary {
        latencies_ms,
        wall,
        retries: retries_total.load(Ordering::Relaxed),
        stats,
    })
}

struct RecoverySummary {
    control_fp: u64,
    recovered_fp: u64,
    jobs_recovered: u64,
    slices_before_kill: u64,
    identical: bool,
}

/// The recovery scenario: control fingerprint, SIGKILL mid-job,
/// restart, compare.
fn run_recovery(args: &LoadArgs) -> Result<RecoverySummary, String> {
    // Control: one giant job, uninterrupted.
    let spool = args.spool_root.join("control");
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).map_err(|e| format!("spool dir: {e}"))?;
    let daemon = spawn_daemon(&args.daemon, &spool, 1, 50)?;
    let mut client = Client::connect(daemon.port)?;
    let (id, _) = submit_with_backoff(&mut client, GIANT_SUBMIT)?;
    let s = client.wait_terminal(id, Duration::from_secs(600))?;
    let control_fp = s
        .get("solutions_fp")
        .and_then(|v| v.as_u64())
        .map_err(|e| format!("control fp: {e}"))?;
    shutdown(daemon);
    let _ = std::fs::remove_dir_all(&spool);

    // Crash run: same job, SIGKILL after >= 2 checkpointed slices.
    let spool = args.spool_root.join("crash");
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).map_err(|e| format!("spool dir: {e}"))?;
    let daemon = spawn_daemon(&args.daemon, &spool, 1, 50)?;
    let mut client = Client::connect(daemon.port)?;
    let (id, _) = submit_with_backoff(&mut client, GIANT_SUBMIT)?;
    let deadline = Instant::now() + Duration::from_secs(120);
    let slices_before_kill = loop {
        let s = client.request(&format!("{{\"req\":\"status\",\"job\":{id}}}"))?;
        let state = s.get("state").and_then(|v| v.as_str()).unwrap_or("");
        let slices = s.get("slices").and_then(|v| v.as_u64()).unwrap_or(0);
        if matches!(state, "done" | "cancelled" | "failed") {
            return Err(format!(
                "giant finished (after {slices} slices) before the kill landed"
            ));
        }
        if slices >= 2 {
            break slices;
        }
        if Instant::now() >= deadline {
            return Err("job never reached 2 slices".to_string());
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    let mut child = daemon.child;
    child.kill().map_err(|e| format!("kill -9: {e}"))?; // SIGKILL on unix
    let _ = child.wait();

    // Restart over the same spool: the ready line counts the recovered
    // job and auto-resume carries it to completion.
    let daemon = spawn_daemon(&args.daemon, &spool, 1, 50)?;
    let jobs_recovered = daemon.recovered;
    let mut client = Client::connect(daemon.port)?;
    let s = client.wait_terminal(id, Duration::from_secs(600))?;
    let state = s.get("state").and_then(|v| v.as_str()).unwrap_or("");
    if state != "done" {
        return Err(format!("recovered job ended {state}: {s:?}"));
    }
    let recovered_fp = s
        .get("solutions_fp")
        .and_then(|v| v.as_u64())
        .map_err(|e| format!("recovered fp: {e}"))?;
    shutdown(daemon);
    let _ = std::fs::remove_dir_all(&spool);
    Ok(RecoverySummary {
        control_fp,
        recovered_fp,
        jobs_recovered,
        slices_before_kill,
        identical: control_fp == recovered_fp,
    })
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn stat_u64(stats: &Json, path: &[&str]) -> u64 {
    let mut v = stats;
    for key in path {
        match v.get_opt(key) {
            Some(inner) => v = inner,
            None => return 0,
        }
    }
    v.as_u64().unwrap_or(0)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve_load: {e}");
            eprintln!(
                "usage: serve_load [--daemon BIN] [--spool DIR] [--small N] [--giants N] \
                 [--threads N] [--workers N] [--json]"
            );
            return ExitCode::from(2);
        }
    };
    let _ = std::fs::create_dir_all(&args.spool_root);

    eprintln!(
        "==> load: {} small + {} giant jobs, {} client threads, {} workers",
        args.small, args.giants, args.threads, args.workers
    );
    let load = match run_load(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_load: load scenario failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let p50 = percentile(&load.latencies_ms, 0.50);
    let p99 = percentile(&load.latencies_ms, 0.99);
    let max = load.latencies_ms.last().copied().unwrap_or(0.0);
    let jobs = load.latencies_ms.len() + args.giants;
    let throughput = jobs as f64 / load.wall.as_secs_f64();
    let hit_rate_bp = stat_u64(&load.stats, &["intern", "hit_rate_bp"]);
    eprintln!(
        "    p50 {p50:.1} ms, p99 {p99:.1} ms, max {max:.1} ms; {throughput:.1} jobs/s; \
         intern hit rate {hit_rate_bp} bp; {} retries",
        load.retries
    );

    eprintln!("==> recovery: kill -9 mid-job, restart, compare fingerprints");
    let rec = match run_recovery(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_load: recovery scenario failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "    killed after {} slices; {} job(s) recovered; identical: {}",
        rec.slices_before_kill, rec.jobs_recovered, rec.identical
    );
    let _ = std::fs::remove_dir_all(&args.spool_root);

    if args.json {
        println!(
            "{{\"bench\":\"serve\",\"workers\":{},\"client_threads\":{},\"small_jobs\":{},\"giant_jobs\":{},\
             \"latency_ms\":{{\"p50\":{p50:.3},\"p99\":{p99:.3},\"max\":{max:.3}}},\
             \"throughput_jobs_per_s\":{throughput:.3},\
             \"intern\":{{\"hits\":{},\"misses\":{},\"hit_rate_bp\":{hit_rate_bp}}},\
             \"rejected\":{},\"retries\":{},\"checkpoint_repairs\":{},\
             \"recovery\":{{\"control_fp\":{},\"recovered_fp\":{},\"jobs_recovered\":{},\
             \"slices_before_kill\":{},\"identical\":{}}}}}",
            args.workers,
            args.threads,
            load.latencies_ms.len(),
            args.giants,
            stat_u64(&load.stats, &["intern", "hits"]),
            stat_u64(&load.stats, &["intern", "misses"]),
            stat_u64(&load.stats, &["rejected"]),
            load.retries,
            stat_u64(&load.stats, &["checkpoint_repairs"]),
            rec.control_fp,
            rec.recovered_fp,
            rec.jobs_recovered,
            rec.slices_before_kill,
            rec.identical,
        );
    }

    if !rec.identical || rec.jobs_recovered != 1 || hit_rate_bp == 0 {
        eprintln!(
            "serve_load: acceptance failed (identical recovery + nonzero intern hit rate required)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
