//! Regenerates the **Figure 2** illustration: the round-based BFS/DFS
//! trade-off. A multi-error DEDC run is repeated with an increasing round
//! budget; the node count per budget shows the tree growing in both depth
//! and breadth while staying within the `≤ 2^rounds` doubling envelope,
//! and the round in which the first solution lands.
//!
//! `cargo run -p incdx-bench --release --bin fig2_rounds -- [--seed N]
//! [--vectors N] [--circuits NAME] [--jobs N] [--dispatch]
//! [--deadline-ms N] [--max-nodes N] [--chaos SEED,RATE]
//! [--checkpoint PATH] [--resume PATH]`
//!
//! Exit codes follow the lint convention: 0 success, 1 engine error
//! (with a one-line JSON record on stdout), 2 usage error.

use std::process::ExitCode;

use incdx_bench::{
    engine_error, finish_with_checkpoint, load_checkpoint, try_scan_core, usage_error, Args, Table,
};
use incdx_core::{Checkpoint, Rectifier, RectifyConfig, RectifyReport};
use incdx_fault::{inject_design_errors, InjectionConfig};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerates the figure's 3-error DEDC workload from a (seed, vector
/// count) pair — shared by fresh runs and `--resume`, which must rebuild
/// the exact checkpointed netlist/vector set.
fn build_workload(
    golden: &Netlist,
    seed: u64,
    vectors: usize,
) -> Option<(Netlist, PackedMatrix, Response)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_design_errors(
        golden,
        &InjectionConfig {
            count: 3,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 300,
        },
        &mut rng,
    )
    .ok()?;
    for e in &injection.injected {
        println!("  injected: {e}");
    }
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0xF16);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    Some((injection.corrupted, pi, spec))
}

/// Builds the per-budget engine config from the flags.
fn budget_config(args: &Args, budget: usize) -> RectifyConfig {
    let mut config = RectifyConfig::dedc(3);
    config.max_rounds = budget;
    config.time_limit = Some(args.time_limit);
    config.incremental = args.incremental;
    config.sparse = args.sparse;
    config.hierarchical = args.hierarchical;
    config.prune = args.prune;
    config.batch_obs = args.batch_obs;
    config.traversal = args.traversal;
    config.audit = args.audit;
    config.limits = args.limits();
    config.chaos = args.chaos;
    // A single engine run at a time — parallelism goes inside the
    // engine (screening workers, or the speculative node dispatcher
    // under --dispatch) rather than across trials.
    config.jobs = args.jobs;
    config.dispatch = args.dispatch;
    config
}

/// `--resume PATH`: finishes exactly one checkpointed budget run.
fn resume_run(args: &Args, path: &str) -> ExitCode {
    let checkpoint = match load_checkpoint(path) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let label = checkpoint.label.clone();
    let budget = label
        .strip_prefix("fig2/")
        .and_then(|rest| rest.split_once('/'))
        .and_then(|(_, b)| b.strip_prefix("budget"))
        .and_then(|b| b.parse::<usize>().ok());
    let circuit = label
        .strip_prefix("fig2/")
        .and_then(|rest| rest.split_once('/').map(|(circuit, _)| circuit.to_string()));
    let (Some(budget), Some(circuit)) = (budget, circuit) else {
        return usage_error(&format!("checkpoint label `{label}` is not a fig2 run"));
    };
    let golden = match try_scan_core(&circuit) {
        Ok(g) => g,
        Err(e) => return usage_error(&e),
    };
    let Some((corrupted, pi, spec)) =
        build_workload(&golden, checkpoint.trial_seed, checkpoint.vectors)
    else {
        return usage_error(&format!("checkpoint workload `{label}` did not regenerate"));
    };
    let mut engine = match Rectifier::new(corrupted, pi, spec, budget_config(args, budget)) {
        Ok(engine) => engine,
        Err(e) => return engine_error(&label, &e),
    };
    engine.set_checkpoint_meta(label.clone(), checkpoint.trial_seed);
    let result = match engine.resume(&checkpoint) {
        Ok(result) => result,
        Err(e) => return engine_error(&label, &e),
    };
    println!(
        "{}",
        RectifyReport::new(&label, args.jobs, &result).to_json()
    );
    finish_with_checkpoint(args.checkpoint.as_deref(), result.checkpoint.as_ref())
}

fn main() -> ExitCode {
    let args = Args::parse();
    if let Some(path) = args.resume.clone() {
        return resume_run(&args, &path);
    }
    let circuit = args.circuits.first().map(String::as_str).unwrap_or("c432a");
    let golden = match try_scan_core(circuit) {
        Ok(g) => g,
        Err(e) => return usage_error(&e),
    };
    println!(
        "Fig. 2 — decision-tree rounds on {circuit} with 3 design errors (seed={})",
        args.seed
    );
    let Some((corrupted, pi, spec)) = build_workload(&golden, args.seed, args.vectors) else {
        return usage_error(&format!(
            "seed {} is not injectable on {circuit}",
            args.seed
        ));
    };
    let mut captured: Option<Checkpoint> = None;

    let mut table = Table::new(["round budget", "nodes", "2^budget", "rounds used", "solved"]);
    for budget in 1..=10usize {
        let label = format!("fig2/{circuit}/budget{budget}");
        let mut engine = match Rectifier::new(
            corrupted.clone(),
            pi.clone(),
            spec.clone(),
            budget_config(&args, budget),
        ) {
            Ok(engine) => engine,
            Err(e) => return engine_error(&label, &e),
        };
        engine.set_checkpoint_meta(label.clone(), args.seed);
        let result = engine.run();
        if captured.is_none() {
            captured = result.checkpoint.clone();
        }
        if args.json {
            println!(
                "{}",
                RectifyReport::new(&label, args.jobs, &result).to_json()
            );
        }
        table.row([
            budget.to_string(),
            result.stats.nodes.to_string(),
            (1usize << budget).to_string(),
            result.stats.rounds.to_string(),
            (!result.solutions.is_empty()).to_string(),
        ]);
        if !result.solutions.is_empty() {
            println!(
                "first solution within a {budget}-round budget (ladder level {})",
                result.stats.deepest_ladder_level
            );
            break;
        }
    }
    println!("\n{table}");
    println!(
        "note: per parameter-ladder level the node count honours the ≤ 2^rounds \
         doubling envelope of Fig. 2; budgets are per level, so cumulative \
         node counts may exceed a single level's envelope."
    );
    finish_with_checkpoint(args.checkpoint.as_deref(), captured.as_ref())
}
