//! Regenerates the **Figure 2** illustration: the round-based BFS/DFS
//! trade-off. A multi-error DEDC run is repeated with an increasing round
//! budget; the node count per budget shows the tree growing in both depth
//! and breadth while staying within the `≤ 2^rounds` doubling envelope,
//! and the round in which the first solution lands.
//!
//! `cargo run -p incdx-bench --release --bin fig2_rounds -- [--seed N]
//! [--vectors N] [--circuits NAME]`

use incdx_bench::{scan_core, Args, Table};
use incdx_core::{Rectifier, RectifyConfig, RectifyReport};
use incdx_fault::{inject_design_errors, InjectionConfig};
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let circuit = args.circuits.first().map(String::as_str).unwrap_or("c432a");
    let golden = scan_core(circuit);
    println!(
        "Fig. 2 — decision-tree rounds on {circuit} with 3 design errors (seed={})",
        args.seed
    );
    let mut rng = StdRng::seed_from_u64(args.seed);
    let injection = inject_design_errors(
        &golden,
        &InjectionConfig {
            count: 3,
            require_individually_observable: true,
            check_vectors: args.vectors,
            max_attempts: 300,
        },
        &mut rng,
    )
    .expect("injectable");
    for e in &injection.injected {
        println!("  injected: {e}");
    }
    let mut vec_rng = StdRng::seed_from_u64(args.seed ^ 0xF16);
    let pi = PackedMatrix::random(golden.inputs().len(), args.vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &pi));

    let mut table = Table::new(["round budget", "nodes", "2^budget", "rounds used", "solved"]);
    for budget in 1..=10usize {
        let mut config = RectifyConfig::dedc(3);
        config.max_rounds = budget;
        config.time_limit = Some(args.time_limit);
        config.incremental = args.incremental;
        config.traversal = args.traversal;
        config.audit = args.audit;
        // A single engine run at a time — parallelism goes inside the
        // screening stage rather than across trials.
        config.jobs = args.jobs;
        let result = Rectifier::new(
            injection.corrupted.clone(),
            pi.clone(),
            spec.clone(),
            config,
        )
        .expect("well-formed workload")
        .run();
        if args.json {
            let label = format!("fig2/{circuit}/budget{budget}");
            println!(
                "{}",
                RectifyReport::new(&label, args.jobs, &result).to_json()
            );
        }
        table.row([
            budget.to_string(),
            result.stats.nodes.to_string(),
            (1usize << budget).to_string(),
            result.stats.rounds.to_string(),
            (!result.solutions.is_empty()).to_string(),
        ]);
        if !result.solutions.is_empty() {
            println!(
                "first solution within a {budget}-round budget (ladder level {})",
                result.stats.deepest_ladder_level
            );
            break;
        }
    }
    println!("\n{table}");
    println!(
        "note: per parameter-ladder level the node count honours the ≤ 2^rounds \
         doubling envelope of Fig. 2; budgets are per level, so cumulative \
         node counts may exceed a single level's envelope."
    );
}
