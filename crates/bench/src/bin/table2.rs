//! Regenerates **Table 2** of the paper: design error diagnosis and
//! correction with 3 and 4 injected errors on the original
//! (redundancy-bearing) circuits. Reports, per circuit and error count,
//! the average per-node diagnosis and correction times, the number of
//! decision-tree nodes, the total time, and the success rate.
//!
//! `cargo run -p incdx-bench --release --bin table2 -- [--trials N]
//! [--vectors N] [--circuits a,b,c] [--seed N] [--time-limit SECS]`

use incdx_bench::{
    dedc_trial, run_parallel, scan_core, Args, Table, DEFAULT_COMB_CIRCUITS, DEFAULT_SEQ_CIRCUITS,
};
use incdx_core::RectifyReport;

fn main() {
    let args = Args::parse();
    let error_counts = [3usize, 4];
    let circuits: Vec<String> = if args.circuits.is_empty() {
        DEFAULT_COMB_CIRCUITS
            .iter()
            .chain(DEFAULT_SEQ_CIRCUITS)
            .map(|s| s.to_string())
            .collect()
    } else {
        args.circuits.clone()
    };
    println!(
        "Table 2 — design error diagnosis & correction. seed={} trials={} vectors={} \
         time-limit={:?}",
        args.seed, args.trials, args.vectors, args.time_limit
    );
    let mut header = vec!["ckt".to_string()];
    for k in error_counts {
        header.push(format!("{k}e:diag_s"));
        header.push(format!("{k}e:corr_s"));
        header.push(format!("{k}e:nodes"));
        header.push(format!("{k}e:total_s"));
        header.push(format!("{k}e:solved"));
    }
    let mut table = Table::new(header);

    for circuit in &circuits {
        // §4.2: original (unoptimized) netlists, observable errors.
        let golden = scan_core(circuit);
        let mut row = vec![circuit.clone()];
        for k in error_counts {
            let outcomes = run_parallel(args.trials, args.jobs, |trial| {
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("table2", circuit, k, trial, attempt);
                    if let Some(out) = dedc_trial(
                        &golden,
                        k,
                        args.vectors,
                        seed,
                        args.time_limit,
                        args.incremental,
                        args.traversal,
                        args.audit,
                    ) {
                        return Some(out);
                    }
                }
                None
            });
            let done: Vec<_> = outcomes.into_iter().flatten().collect();
            if args.json {
                // Trials parallelize above, so the engine itself runs with
                // jobs = 1 (`RectifyConfig` default) — reported as such.
                for (trial, out) in done.iter().enumerate() {
                    let label = format!("table2/{circuit}/k{k}/t{trial}");
                    let report = RectifyReport::from_parts(
                        &label,
                        1,
                        out.solutions,
                        out.sites,
                        out.stats.clone(),
                    );
                    println!("{}", report.to_json());
                }
            }
            if done.is_empty() {
                row.extend(["-".into(), "-".into(), "-".into(), "-".into(), "-".into()]);
                continue;
            }
            let n = done.len() as f64;
            // The paper's diag./corr. columns are per-execution (per-node)
            // averages of the two stages.
            let nodes_total: usize = done.iter().map(|o| o.stats.nodes).sum();
            let diag_per_node = done
                .iter()
                .map(|o| o.stats.diagnosis_time.as_secs_f64())
                .sum::<f64>()
                / nodes_total.max(1) as f64;
            let corr_per_node = done
                .iter()
                .map(|o| o.stats.correction_time.as_secs_f64())
                .sum::<f64>()
                / nodes_total.max(1) as f64;
            let nodes = nodes_total as f64 / n;
            let total = done.iter().map(|o| o.total.as_secs_f64()).sum::<f64>() / n;
            let solved = done.iter().filter(|o| o.solved).count();
            row.push(format!("{diag_per_node:.4}"));
            row.push(format!("{corr_per_node:.4}"));
            row.push(format!("{nodes:.1}"));
            row.push(format!("{total:.2}"));
            row.push(format!("{}/{}", solved, done.len()));
        }
        table.row(row);
        println!("{}", table.render().lines().last().unwrap_or(""));
    }
    println!("\n{table}");
}
