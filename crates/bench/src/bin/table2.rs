//! Regenerates **Table 2** of the paper: design error diagnosis and
//! correction with 3 and 4 injected errors on the original
//! (redundancy-bearing) circuits. Reports, per circuit and error count,
//! the average per-node diagnosis and correction times, the number of
//! decision-tree nodes, the total time, and the success rate.
//!
//! `cargo run -p incdx-bench --release --bin table2 -- [--trials N]
//! [--vectors N] [--circuits a,b,c] [--seed N] [--time-limit SECS]
//! [--jobs N] [--dispatch] [--deadline-ms N] [--max-nodes N]
//! [--chaos SEED,RATE] [--checkpoint PATH] [--resume PATH]`
//!
//! `--jobs` normally parallelizes across trials; with `--dispatch` the
//! trials run one at a time and the jobs go to the engine's speculative
//! node dispatcher instead (results stay bit-identical either way).
//!
//! Exit codes follow the lint convention: 0 success, 1 engine error
//! (with a one-line JSON record on stdout), 2 usage error.

use std::process::ExitCode;

use incdx_bench::{
    dedc_trial, engine_error, finish_with_checkpoint, load_checkpoint, parse_run_label,
    run_parallel, try_scan_core, usage_error, Args, Table, TrialOptions, DEFAULT_COMB_CIRCUITS,
    DEFAULT_SEQ_CIRCUITS,
};
use incdx_core::{Checkpoint, RectifyReport};

/// `--resume PATH`: re-runs exactly one checkpointed trial (to completion,
/// or to the next armed limit) and reports it.
fn resume_run(args: &Args, path: &str) -> ExitCode {
    let checkpoint = match load_checkpoint(path) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let Some((experiment, circuit, k, _trial)) = parse_run_label(&checkpoint.label) else {
        return usage_error(&format!(
            "unrecognized checkpoint label `{}`",
            checkpoint.label
        ));
    };
    if experiment != "table2" {
        return usage_error(&format!(
            "checkpoint label `{}` is not a table2 run",
            checkpoint.label
        ));
    }
    // §4.2: table2 diagnoses the original (unoptimized) netlists.
    let golden = match try_scan_core(circuit) {
        Ok(g) => g,
        Err(e) => return usage_error(&e),
    };
    let label = checkpoint.label.clone();
    let (seed, vectors) = (checkpoint.trial_seed, checkpoint.vectors);
    let mut opts = TrialOptions::from_args(args).labelled(label.clone());
    opts.resume = Some(checkpoint);
    match dedc_trial(&golden, k, vectors, seed, args.time_limit, &opts) {
        Err(e) => engine_error(&label, &e),
        Ok(None) => usage_error(&format!("checkpoint workload `{label}` did not regenerate")),
        Ok(Some(out)) => {
            let report = RectifyReport::from_parts(
                &label,
                1,
                out.solutions,
                out.sites,
                out.verdict,
                out.partials,
                out.stats,
            );
            println!("{}", report.to_json());
            finish_with_checkpoint(args.checkpoint.as_deref(), out.checkpoint.as_ref())
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    if let Some(path) = args.resume.clone() {
        return resume_run(&args, &path);
    }
    let base_opts = TrialOptions::from_args(&args);
    // Under --dispatch the engine owns the cores, so trials serialize;
    // otherwise the harness fans out across trials with serial engines.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let engine_jobs = if args.dispatch { args.jobs } else { 1 };
    let mut captured: Option<Checkpoint> = None;
    let error_counts = [3usize, 4];
    let circuits: Vec<String> = if args.circuits.is_empty() {
        DEFAULT_COMB_CIRCUITS
            .iter()
            .chain(DEFAULT_SEQ_CIRCUITS)
            .map(|s| s.to_string())
            .collect()
    } else {
        args.circuits.clone()
    };
    println!(
        "Table 2 — design error diagnosis & correction. seed={} trials={} vectors={} \
         time-limit={:?}",
        args.seed, args.trials, args.vectors, args.time_limit
    );
    let mut header = vec!["ckt".to_string()];
    for k in error_counts {
        header.push(format!("{k}e:diag_s"));
        header.push(format!("{k}e:corr_s"));
        header.push(format!("{k}e:nodes"));
        header.push(format!("{k}e:total_s"));
        header.push(format!("{k}e:solved"));
    }
    let mut table = Table::new(header);

    for circuit in &circuits {
        // §4.2: original (unoptimized) netlists, observable errors.
        let golden = match try_scan_core(circuit) {
            Ok(g) => g,
            Err(e) => return usage_error(&e),
        };
        let mut row = vec![circuit.clone()];
        for k in error_counts {
            let outcomes = run_parallel(args.trials, trial_jobs, |trial| {
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("table2", circuit, k, trial, attempt);
                    let opts = base_opts.labelled(format!("table2/{circuit}/k{k}/t{trial}"));
                    match dedc_trial(&golden, k, args.vectors, seed, args.time_limit, &opts) {
                        Ok(Some(out)) => return Ok(Some(out)),
                        Ok(None) => continue,
                        Err(e) => return Err((trial, e)),
                    }
                }
                Ok(None)
            });
            let mut done = Vec::new();
            for outcome in outcomes {
                match outcome {
                    Ok(Some(out)) => done.push(out),
                    Ok(None) => {}
                    Err((trial, e)) => {
                        return engine_error(&format!("table2/{circuit}/k{k}/t{trial}"), &e)
                    }
                }
            }
            if captured.is_none() {
                captured = done.iter().find_map(|o| o.checkpoint.clone());
            }
            if args.json {
                // Without --dispatch trials parallelize above and each
                // engine runs with jobs = 1; with it the engine itself
                // gets the jobs — reported accordingly.
                for (trial, out) in done.iter().enumerate() {
                    let label = format!("table2/{circuit}/k{k}/t{trial}");
                    let report = RectifyReport::from_parts(
                        &label,
                        engine_jobs,
                        out.solutions,
                        out.sites,
                        out.verdict,
                        out.partials,
                        out.stats.clone(),
                    );
                    println!("{}", report.to_json());
                }
            }
            if done.is_empty() {
                row.extend(["-".into(), "-".into(), "-".into(), "-".into(), "-".into()]);
                continue;
            }
            let n = done.len() as f64;
            // The paper's diag./corr. columns are per-execution (per-node)
            // averages of the two stages.
            let nodes_total: usize = done.iter().map(|o| o.stats.nodes).sum();
            let diag_per_node = done
                .iter()
                .map(|o| o.stats.diagnosis_time.as_secs_f64())
                .sum::<f64>()
                / nodes_total.max(1) as f64;
            let corr_per_node = done
                .iter()
                .map(|o| o.stats.correction_time.as_secs_f64())
                .sum::<f64>()
                / nodes_total.max(1) as f64;
            let nodes = nodes_total as f64 / n;
            let total = done.iter().map(|o| o.total.as_secs_f64()).sum::<f64>() / n;
            let solved = done.iter().filter(|o| o.solved).count();
            row.push(format!("{diag_per_node:.4}"));
            row.push(format!("{corr_per_node:.4}"));
            row.push(format!("{nodes:.1}"));
            row.push(format!("{total:.2}"));
            row.push(format!("{}/{}", solved, done.len()));
        }
        table.row(row);
        println!("{}", table.render().lines().last().unwrap_or(""));
    }
    println!("\n{table}");
    finish_with_checkpoint(args.checkpoint.as_deref(), captured.as_ref())
}
