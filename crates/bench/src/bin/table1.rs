//! Regenerates **Table 1** of the paper: exact multiple stuck-at fault
//! diagnosis on area-optimized circuits. For each (circuit, k) cell the
//! harness injects k random stuck-at faults, captures the faulty device's
//! responses, runs the exhaustive diagnosis, and reports the averages over
//! the trials: distinct suspect sites, time per trial, and equivalent
//! tuples — the paper's `# sites / time / # tuples` columns — plus the
//! masking rate the paper discusses for the 4-fault s-circuit runs.
//!
//! `cargo run -p incdx-bench --release --bin table1 -- [--trials N]
//! [--vectors N] [--circuits a,b,c] [--seed N] [--time-limit SECS]
//! [--jobs N] [--dispatch] [--deadline-ms N] [--max-nodes N]
//! [--chaos SEED,RATE] [--checkpoint PATH] [--resume PATH]`
//!
//! `--jobs` normally parallelizes across trials; with `--dispatch` the
//! trials run one at a time and the jobs go to the engine's speculative
//! node dispatcher instead (results stay bit-identical either way).
//!
//! Exit codes follow the lint convention: 0 success, 1 engine error
//! (with a one-line JSON record on stdout), 2 usage error.

use std::process::ExitCode;

use incdx_bench::{
    engine_error, finish_with_checkpoint, load_checkpoint, optimize_for_table1, parse_run_label,
    run_parallel, stuck_at_trial, try_scan_core, usage_error, Args, Table, TrialOptions,
    DEFAULT_COMB_CIRCUITS, DEFAULT_SEQ_CIRCUITS,
};
use incdx_core::{Checkpoint, RectifyReport};

/// `--resume PATH`: re-runs exactly one checkpointed trial (to completion,
/// or to the next armed limit) and reports it.
fn resume_run(args: &Args, path: &str) -> ExitCode {
    let checkpoint = match load_checkpoint(path) {
        Ok(c) => c,
        Err(e) => return usage_error(&e),
    };
    let Some((experiment, circuit, k, _trial)) = parse_run_label(&checkpoint.label) else {
        return usage_error(&format!(
            "unrecognized checkpoint label `{}`",
            checkpoint.label
        ));
    };
    if experiment != "table1" {
        return usage_error(&format!(
            "checkpoint label `{}` is not a table1 run",
            checkpoint.label
        ));
    }
    let golden = match try_scan_core(circuit) {
        Ok(g) => optimize_for_table1(&g),
        Err(e) => return usage_error(&e),
    };
    let label = checkpoint.label.clone();
    let (seed, vectors) = (checkpoint.trial_seed, checkpoint.vectors);
    let mut opts = TrialOptions::from_args(args).labelled(label.clone());
    opts.resume = Some(checkpoint);
    match stuck_at_trial(&golden, k, vectors, seed, args.time_limit, &opts) {
        Err(e) => engine_error(&label, &e),
        Ok(None) => usage_error(&format!("checkpoint workload `{label}` did not regenerate")),
        Ok(Some(out)) => {
            let report = RectifyReport::from_parts(
                &label,
                1,
                out.tuples,
                out.sites,
                out.verdict,
                out.partials,
                out.stats,
            );
            println!("{}", report.to_json());
            finish_with_checkpoint(args.checkpoint.as_deref(), out.checkpoint.as_ref())
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    if let Some(path) = args.resume.clone() {
        return resume_run(&args, &path);
    }
    let base_opts = TrialOptions::from_args(&args);
    // Under --dispatch the engine owns the cores, so trials serialize;
    // otherwise the harness fans out across trials with serial engines.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let engine_jobs = if args.dispatch { args.jobs } else { 1 };
    let mut captured: Option<Checkpoint> = None;
    let fault_counts = [1usize, 2, 3, 4];
    let circuits: Vec<String> = if args.circuits.is_empty() {
        DEFAULT_COMB_CIRCUITS
            .iter()
            .chain(DEFAULT_SEQ_CIRCUITS)
            .map(|s| s.to_string())
            .collect()
    } else {
        args.circuits.clone()
    };
    println!(
        "Table 1 — multiple stuck-at fault diagnosis (exhaustive). \
         seed={} trials={} vectors={} time-limit={:?}",
        args.seed, args.trials, args.vectors, args.time_limit
    );
    let mut header = vec!["ckt".to_string(), "lines".to_string()];
    for k in fault_counts {
        header.push(format!("{k}f:sites"));
        header.push(format!("{k}f:time_s"));
        header.push(format!("{k}f:tuples"));
    }
    header.push("masked@4".to_string());
    let mut table = Table::new(header);

    for circuit in &circuits {
        // §4.1: optimize for area first (stuck-at experiments).
        let golden = match try_scan_core(circuit) {
            Ok(g) => optimize_for_table1(&g),
            Err(e) => return usage_error(&e),
        };
        let lines = golden.stats().lines;
        let mut row = vec![circuit.clone(), lines.to_string()];
        let mut masked_at_4 = String::from("-");
        for k in fault_counts {
            let outcomes = run_parallel(args.trials, trial_jobs, |trial| {
                // Each trial gets a derived seed; re-draw on un-injectable
                // seeds so every cell reports `trials` real runs.
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("table1", circuit, k, trial, attempt);
                    let opts = base_opts.labelled(format!("table1/{circuit}/k{k}/t{trial}"));
                    match stuck_at_trial(&golden, k, args.vectors, seed, args.time_limit, &opts) {
                        Ok(Some(out)) => return Ok(Some(out)),
                        Ok(None) => continue,
                        Err(e) => return Err((trial, e)),
                    }
                }
                Ok(None)
            });
            let mut done = Vec::new();
            for outcome in outcomes {
                match outcome {
                    Ok(Some(out)) => done.push(out),
                    Ok(None) => {}
                    Err((trial, e)) => {
                        return engine_error(&format!("table1/{circuit}/k{k}/t{trial}"), &e)
                    }
                }
            }
            if captured.is_none() {
                captured = done.iter().find_map(|o| o.checkpoint.clone());
            }
            if args.json {
                // Without --dispatch trials parallelize above and each
                // engine runs with jobs = 1; with it the engine itself
                // gets the jobs — reported accordingly.
                for (trial, out) in done.iter().enumerate() {
                    let label = format!("table1/{circuit}/k{k}/t{trial}");
                    let report = RectifyReport::from_parts(
                        &label,
                        engine_jobs,
                        out.tuples,
                        out.sites,
                        out.verdict,
                        out.partials,
                        out.stats.clone(),
                    );
                    println!("{}", report.to_json());
                }
            }
            if done.is_empty() {
                row.extend(["-".into(), "-".into(), "-".into()]);
                continue;
            }
            let n = done.len() as f64;
            let sites = done.iter().map(|o| o.sites).sum::<usize>() as f64 / n;
            let time = done.iter().map(|o| o.total.as_secs_f64()).sum::<f64>() / n;
            let tuples = done.iter().map(|o| o.tuples).sum::<usize>() as f64 / n;
            let recovered = done.iter().filter(|o| o.recovered).count();
            let truncated = done.iter().filter(|o| o.stats.truncated).count();
            let mut cell_sites = format!("{sites:.1}");
            if recovered < done.len() {
                cell_sites.push('!'); // injected tuple missed in ≥1 trial
            }
            if truncated > 0 {
                cell_sites.push('*'); // ≥1 trial hit a budget
            }
            row.push(cell_sites);
            row.push(format!("{time:.3}"));
            row.push(format!("{tuples:.1}"));
            if k == 4 {
                let masked = done.iter().filter(|o| o.masked).count();
                masked_at_4 = format!("{}/{}", masked, done.len());
            }
        }
        row.push(masked_at_4);
        table.row(row);
        // Stream rows as they complete (long experiment).
        println!("{}", table.render().lines().last().unwrap_or(""));
    }
    println!("\n{table}");
    println!("legend: '!' = an injected tuple was missed; '*' = a budget truncated ≥1 trial");
    finish_with_checkpoint(args.checkpoint.as_deref(), captured.as_ref())
}
