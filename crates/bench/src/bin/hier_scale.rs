//! Scale benchmark for two-level hierarchical diagnosis: flat vs
//! hierarchical runs of the same multiple-fault trials under one shared
//! node budget, on c6288-scale circuits from `incdx_gen`. Flat diagnosis
//! must search the concrete netlist directly; the hierarchical engine
//! first diagnoses the fanout-free-cone abstraction and then expands only
//! the implicated super-gates, so on circuits with abstraction leverage
//! it reaches a validated solution well inside a budget the flat search
//! exhausts.
//!
//! Both modes run per trial (pairwise, identical injection and vectors),
//! so `--hierarchical`/`--flat` are ignored here — the binary *is* the
//! comparison. Circuits accept suite names (`c6288a`) plus the generated
//! scale circuits `parity<N>` ([`incdx_gen::parity_tree`]) and `sec<N>`
//! ([`incdx_gen::sec_circuit`]).
//!
//! Fault sites are drawn on super-gate **stem** lines — lines that stay
//! visible in the abstraction. This is the classic hierarchical-diagnosis
//! fault model (a faulty module observed at its port): the abstract
//! search can express the fault exactly, so phase 1 localizes the
//! suspect modules instead of exhausting its budget on an inexpressible
//! syndrome. Faults buried strictly inside a collapsed cone degrade
//! hierarchical mode to the flat engine's phase-3 pass (correctness is
//! pinned by the property suite); this benchmark measures the leverage
//! case.
//!
//! `cargo run -p incdx-bench --release --bin hier_scale -- [--trials N]
//! [--circuits c6288a,parity2048,sec256] [--max-nodes N] [--json]`

use std::time::Instant;

use std::process::ExitCode;

use incdx_bench::{run_parallel, try_scan_core, usage_error, Args, Table};
use incdx_core::{Rectifier, RectifyConfig, Verdict};
use incdx_fault::StuckAt;
use incdx_netlist::{Abstraction, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Faults injected per trial. Two faults force the tree past depth one,
/// where the flat candidate cross-product dwarfs the focused phase-2
/// search.
const FAULTS: usize = 2;

/// Default shared node budget when `--max-nodes` is absent.
const DEFAULT_BUDGET: u64 = 2_000;

/// One engine run of a prepared trial in one mode.
struct Run {
    solved: bool,
    nodes: usize,
    verdict: &'static str,
    wall_ms: u128,
    abstract_gates: usize,
    collapse_ratio: f64,
}

/// Paired flat + hierarchical outcome of one trial.
struct Trial {
    flat: Run,
    hier: Run,
}

/// Resolves a circuit name: suite entries via [`try_scan_core`], plus
/// `parity<N>` / `sec<N>` generated at the requested width.
fn circuit(name: &str) -> Result<Netlist, String> {
    if let Some(n) = name.strip_prefix("parity").and_then(|s| s.parse().ok()) {
        return Ok(incdx_gen::parity_tree(n));
    }
    if let Some(n) = name.strip_prefix("sec").and_then(|s| s.parse().ok()) {
        return Ok(incdx_gen::sec_circuit(n));
    }
    try_scan_core(name)
}

fn run_mode(
    golden: &Netlist,
    pi: &PackedMatrix,
    device: &Response,
    hierarchical: bool,
    budget: u64,
    args: &Args,
) -> Option<Run> {
    // First-solution stuck-at search: exhaustive mode would always run
    // the unrestricted phase-3 merge (identical solution sets by
    // construction), so the node savings only show where the paper's
    // engine normally operates — stop at the first validated tuple.
    let mut config = RectifyConfig::stuck_at_exhaustive(FAULTS);
    config.exhaustive = false;
    config.max_solutions = 1;
    config.max_nodes = budget as usize;
    config.time_limit = Some(args.time_limit);
    config.limits.max_total_nodes = Some(budget);
    config.incremental = args.incremental;
    config.sparse = args.sparse;
    config.traversal = args.traversal;
    config.hierarchical = hierarchical;
    config.prune = args.prune;
    config.batch_obs = args.batch_obs;
    let started = Instant::now();
    let result = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
        .ok()?
        .run();
    let wall_ms = started.elapsed().as_millis();
    let (abstract_gates, collapse_ratio) = result
        .stats
        .abstraction
        .as_ref()
        .map_or((0, 1.0), |a| (a.abstract_gates, a.collapse_ratio));
    Some(Run {
        solved: !result.solutions.is_empty(),
        nodes: result.stats.nodes,
        verdict: result.verdict.tag(),
        wall_ms,
        abstract_gates,
        collapse_ratio,
    })
}

fn trial(
    golden: &Netlist,
    stems: &[incdx_netlist::GateId],
    seed: u64,
    budget: u64,
    args: &Args,
) -> Option<Trial> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Draw FAULTS distinct stuck-at sites among the abstraction-visible
    // stem lines (see the module docs for why).
    let mut corrupted = golden.clone();
    let mut sites = Vec::new();
    for _ in 0..100 {
        if sites.len() == FAULTS {
            break;
        }
        let line = stems[rng.random_range(0..stems.len())];
        if sites.contains(&line) {
            continue;
        }
        let fault = StuckAt::new(line, rng.random_bool(0.5));
        if fault.apply(&mut corrupted).is_ok() {
            sites.push(line);
        }
    }
    if sites.len() != FAULTS {
        return None;
    }
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x5CA1E);
    let pi = PackedMatrix::random(golden.inputs().len(), args.vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &corrupted,
        &sim.run_for_inputs(&corrupted, golden.inputs(), &pi),
    );
    {
        let vals = sim.run(golden, &pi);
        if Response::compare(golden, &vals, &device).matches() {
            return None; // not excited on these vectors
        }
    }
    let flat = run_mode(golden, &pi, &device, false, budget, args)?;
    let hier = run_mode(golden, &pi, &device, true, budget, args)?;
    Some(Trial { flat, hier })
}

fn main() -> ExitCode {
    let args = Args::parse();
    let budget = args.max_nodes.unwrap_or(DEFAULT_BUDGET);
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec!["c6288a".into(), "parity2048".into(), "sec256".into()]
    } else {
        args.circuits.clone()
    };
    println!(
        "Hierarchical scale benchmark — flat vs two-level diagnosis under a \
         shared node budget. seed={} trials={} budget={}",
        args.seed, args.trials, budget
    );
    let mut table = Table::new([
        "ckt",
        "gates",
        "abs gates",
        "ratio",
        "flat solved",
        "flat nodes",
        "hier solved",
        "hier nodes",
    ]);
    for name in &circuits {
        let golden = match circuit(name) {
            Ok(n) => n,
            Err(e) => return usage_error(&format!("{name}: {e}")),
        };
        // Static leverage summary, independent of any trial.
        let abs = Abstraction::build(&golden);
        // Fault sites: logic lines visible in the abstraction, preferring
        // stems of actually-collapsed super-gates (module ports). Too few
        // such stems (a near-degenerate abstraction, e.g. the multiplier)
        // leaves every logic line eligible — the comparison is then
        // flat-vs-flat, honest.
        let map = abs.map();
        let mut stems: Vec<_> = golden
            .ids()
            .filter(|&c| {
                golden.gate(c).kind().is_logic()
                    && map.concrete_of(map.abstract_of(c)) == c
                    && map.members(map.abstract_of(c)).len() >= 2
            })
            .collect();
        if stems.len() < FAULTS.max(8) {
            stems = golden
                .ids()
                .filter(|&c| golden.gate(c).kind().is_logic())
                .collect();
        }
        let outcomes = run_parallel(args.trials, args.jobs, |t| {
            for attempt in 0..20u64 {
                let seed = args.trial_seed("hier_scale", name, FAULTS, t, attempt);
                if let Some(r) = trial(&golden, &stems, seed, budget, &args) {
                    return Some(r);
                }
            }
            None
        });
        let done: Vec<Trial> = outcomes.into_iter().flatten().collect();
        if args.json {
            for (t, tr) in done.iter().enumerate() {
                for (mode, run) in [("flat", &tr.flat), ("hierarchical", &tr.hier)] {
                    println!(
                        "{{\"report\":\"hier_scale\",\"circuit\":\"{}\",\"trial\":{},\
                         \"mode\":\"{}\",\"gates\":{},\"faults\":{},\"budget\":{},\
                         \"solved\":{},\"nodes\":{},\"verdict\":\"{}\",\"wall_ms\":{},\
                         \"abstract_gates\":{},\"collapse_ratio\":{:.4}}}",
                        name,
                        t,
                        mode,
                        golden.len(),
                        FAULTS,
                        budget,
                        run.solved,
                        run.nodes,
                        run.verdict,
                        run.wall_ms,
                        run.abstract_gates,
                        run.collapse_ratio,
                    );
                }
            }
        }
        if done.is_empty() {
            table.row([name.as_str(), "-", "-", "-", "-", "-", "-", "-"]);
            continue;
        }
        let n = done.len();
        let flat_solved = done.iter().filter(|t| t.flat.solved).count();
        let hier_solved = done.iter().filter(|t| t.hier.solved).count();
        let flat_nodes = done.iter().map(|t| t.flat.nodes).sum::<usize>() as f64 / n as f64;
        let hier_nodes = done.iter().map(|t| t.hier.nodes).sum::<usize>() as f64 / n as f64;
        table.row([
            name.clone(),
            golden.len().to_string(),
            abs.netlist().len().to_string(),
            format!("{:.3}", abs.map().collapse_ratio()),
            format!("{flat_solved}/{n}"),
            format!("{flat_nodes:.0}"),
            format!("{hier_solved}/{n}"),
            format!("{hier_nodes:.0}"),
        ]);
    }
    println!("{table}");
    println!(
        "reading: where the abstraction collapses cones (ratio < 1), the \
         hierarchical run reaches a validated tuple inside a node budget the \
         flat search exhausts ({}).",
        Verdict::BudgetExhausted.tag()
    );
    ExitCode::SUCCESS
}
