//! Ablation B — the §3 claim that the round-based traversal "overcomes
//! the pitfalls of BFS and DFS". The same multi-error DEDC workload runs
//! under the three traversal strategies with identical node budgets;
//! success rate and nodes-to-solution are compared.
//!
//! `cargo run -p incdx-bench --release --bin ablation_traversal --
//! [--trials N] [--circuits a,b] [--seed N]`

use incdx_bench::{run_parallel, scan_core, Args, Table};
use incdx_core::Traversal;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec!["c432a".into(), "c880a".into(), "c1908a".into()]
    } else {
        args.circuits.clone()
    };
    let errors = 3usize;
    println!(
        "Ablation B — traversal strategies on {errors}-error DEDC. seed={} trials={}",
        args.seed, args.trials
    );
    let mut table = Table::new(["ckt", "traversal", "solved", "avg nodes", "avg time_s"]);
    for circuit in &circuits {
        let golden = scan_core(circuit);
        for (label, traversal) in [
            ("rounds", Traversal::Rounds),
            ("dfs", Traversal::Dfs),
            ("bfs", Traversal::Bfs),
        ] {
            let outcomes = run_parallel(args.trials, args.jobs, |t| {
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("ablation_traversal", circuit, errors, t, attempt);
                    if let Some(out) = dedc_trial_with(
                        &golden,
                        errors,
                        args.vectors,
                        seed,
                        args.time_limit,
                        traversal,
                        args.incremental,
                    ) {
                        return Some(out);
                    }
                }
                None
            });
            let done: Vec<_> = outcomes.into_iter().flatten().collect();
            if done.is_empty() {
                table.row([circuit.as_str(), label, "-", "-", "-"]);
                continue;
            }
            let n = done.len() as f64;
            let solved = done.iter().filter(|o| o.solved).count();
            let nodes = done.iter().map(|o| o.stats.nodes).sum::<usize>() as f64 / n;
            let time = done.iter().map(|o| o.total.as_secs_f64()).sum::<f64>() / n;
            table.row([
                circuit.clone(),
                label.to_string(),
                format!("{}/{}", solved, done.len()),
                format!("{nodes:.0}"),
                format!("{time:.2}"),
            ]);
        }
    }
    println!("{table}");
}

/// `dedc_trial` with an overridden traversal strategy: re-implemented here
/// because the shared helper pins the engine default.
fn dedc_trial_with(
    golden: &incdx_netlist::Netlist,
    errors: usize,
    vectors: usize,
    seed: u64,
    time_limit: Duration,
    traversal: Traversal,
    incremental: bool,
) -> Option<incdx_bench::DedcOutcome> {
    use incdx_core::{Rectifier, RectifyConfig};
    use incdx_fault::{inject_design_errors, InjectionConfig};
    use incdx_sim::{PackedMatrix, Response, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Instant;

    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_design_errors(
        golden,
        &InjectionConfig {
            count: errors,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 300,
        },
        &mut rng,
    )
    .ok()?;
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x0DED_C000);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    let mut config = RectifyConfig::dedc(errors);
    config.time_limit = Some(time_limit);
    config.traversal = traversal;
    config.incremental = incremental;
    let started = Instant::now();
    let result = Rectifier::new(injection.corrupted.clone(), pi.clone(), spec.clone(), config).run();
    let total = started.elapsed();
    let solved = match result.solutions.first() {
        Some(solution) => {
            let mut fixed = injection.corrupted.clone();
            solution.corrections.iter().all(|c| c.apply(&mut fixed).is_ok())
                && Response::compare(
                    &fixed,
                    &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
                    &spec,
                )
                .matches()
        }
        None => false,
    };
    Some(incdx_bench::DedcOutcome {
        solved,
        solutions: result.solutions.len(),
        sites: result.distinct_sites(),
        total,
        stats: result.stats,
    })
}
