//! Ablation B — the §3 claim that the round-based traversal "overcomes
//! the pitfalls of BFS and DFS". The same multi-error DEDC workload runs
//! under the built-in traversal strategies with identical node budgets;
//! success rate and nodes-to-solution are compared.
//!
//! `cargo run -p incdx-bench --release --bin ablation_traversal --
//! [--trials N] [--circuits a,b] [--seed N] [--traversal bfs|dfs|naive-bfs|best-first]`
//!
//! Without `--traversal` every strategy runs (the ablation); with it only
//! the requested one does (a single-strategy measurement run). `--json`
//! additionally emits one `RectifyReport` record per engine run, tagged
//! `ablation_traversal/<circuit>/<strategy>/t<trial>`.

use std::process::ExitCode;

use incdx_bench::{
    dedc_trial, engine_error, run_parallel, try_scan_core, usage_error, Args, Table, TrialOptions,
};
use incdx_core::{RectifyReport, TraversalKind};

fn main() -> ExitCode {
    let args = Args::parse();
    let base_opts = TrialOptions::from_args(&args);
    // --dispatch hands the cores to the engine's node dispatcher, so
    // trials serialize; otherwise the harness fans out across trials.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let engine_jobs = if args.dispatch { args.jobs } else { 1 };
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec!["c432a".into(), "c880a".into(), "c1908a".into()]
    } else {
        args.circuits.clone()
    };
    // `--traversal` narrows the ablation to a single strategy; the flag's
    // default value means "compare all of them".
    let strategies: Vec<TraversalKind> = if std::env::args().any(|a| a == "--traversal") {
        vec![args.traversal]
    } else {
        TraversalKind::ALL.to_vec()
    };
    let errors = 3usize;
    println!(
        "Ablation B — traversal strategies on {errors}-error DEDC. seed={} trials={}",
        args.seed, args.trials
    );
    let mut table = Table::new(["ckt", "traversal", "solved", "avg nodes", "avg time_s"]);
    for circuit in &circuits {
        let golden = match try_scan_core(circuit) {
            Ok(g) => g,
            Err(e) => return usage_error(&e),
        };
        for &traversal in &strategies {
            let label = traversal.as_str();
            let outcomes = run_parallel(args.trials, trial_jobs, |t| {
                for attempt in 0..20u64 {
                    let seed = args.trial_seed("ablation_traversal", circuit, errors, t, attempt);
                    let mut opts =
                        base_opts.labelled(format!("ablation_traversal/{circuit}/{label}/t{t}"));
                    opts.traversal = traversal;
                    match dedc_trial(&golden, errors, args.vectors, seed, args.time_limit, &opts) {
                        Ok(Some(out)) => return Ok(Some(out)),
                        Ok(None) => continue,
                        Err(e) => return Err((t, e)),
                    }
                }
                Ok(None)
            });
            let mut done = Vec::new();
            for outcome in outcomes {
                match outcome {
                    Ok(Some(out)) => done.push(out),
                    Ok(None) => {}
                    Err((t, e)) => {
                        return engine_error(
                            &format!("ablation_traversal/{circuit}/{label}/t{t}"),
                            &e,
                        )
                    }
                }
            }
            if args.json {
                for (trial, out) in done.iter().enumerate() {
                    let tag = format!("ablation_traversal/{circuit}/{label}/t{trial}");
                    let report = RectifyReport::from_parts(
                        &tag,
                        engine_jobs,
                        out.solutions,
                        out.sites,
                        out.verdict,
                        out.partials,
                        out.stats.clone(),
                    );
                    println!("{}", report.to_json());
                }
            }
            if done.is_empty() {
                table.row([circuit.as_str(), label, "-", "-", "-"]);
                continue;
            }
            let n = done.len() as f64;
            let solved = done.iter().filter(|o| o.solved).count();
            let nodes = done.iter().map(|o| o.stats.nodes).sum::<usize>() as f64 / n;
            let time = done.iter().map(|o| o.total.as_secs_f64()).sum::<f64>() / n;
            table.row([
                circuit.clone(),
                label.to_string(),
                format!("{}/{}", solved, done.len()),
                format!("{nodes:.0}"),
                format!("{time:.2}"),
            ]);
        }
    }
    println!("{table}");
    ExitCode::SUCCESS
}
