//! Ablation A — the §3.3 claim "in all of the cases valid corrections
//! rank in the top 5% in their respective node". For single-error trials
//! this binary computes every screened candidate at the root node, applies
//! each in rank order, and reports the rank position of the first
//! candidate that fully rectifies the design.
//!
//! `cargo run -p incdx-bench --release --bin ablation_rank -- [--trials N]
//! [--circuits a,b] [--seed N] [--vectors N]`

use incdx_bench::{run_parallel, scan_core, Args, Table};
use incdx_core::{default_ladder, Rectifier, RectifyConfig};
use incdx_fault::{inject_design_errors, InjectionConfig};
use incdx_netlist::Netlist;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trial(
    golden: &Netlist,
    vectors: usize,
    seed: u64,
    sparse: bool,
    prune: bool,
) -> Option<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_design_errors(
        golden,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 100,
        },
        &mut rng,
    )
    .ok()?;
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    let mut config = RectifyConfig::dedc(1);
    config.max_candidates_per_node = usize::MAX;
    config.sparse = sparse;
    config.prune = prune;
    let mut rect = Rectifier::new(
        injection.corrupted.clone(),
        pi.clone(),
        spec.clone(),
        config,
    )
    .ok()?;
    // First ladder level with any candidates (the level the engine's run
    // would operate at).
    for level in default_ladder() {
        let candidates = rect.rank_candidates(&[], &level);
        if candidates.is_empty() {
            continue;
        }
        let total = candidates.len();
        for (pos, rc) in candidates.iter().enumerate() {
            let mut fixed = injection.corrupted.clone();
            if rc.correction.apply(&mut fixed).is_err() {
                continue;
            }
            let check = Response::compare(
                &fixed,
                &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
                &spec,
            );
            if check.matches() {
                return Some((pos + 1, total));
            }
        }
        // No candidate at this level rectifies — relax like the engine.
    }
    None
}

fn main() {
    let args = Args::parse();
    // These ablations stop at the root node (rank_candidates), so the
    // node dispatcher never engages; still honour --dispatch's CPU
    // ownership convention by serializing trials when it is set.
    let trial_jobs = if args.dispatch { 1 } else { args.jobs };
    let circuits: Vec<String> = if args.circuits.is_empty() {
        vec![
            "c432a".into(),
            "c880a".into(),
            "c1355a".into(),
            "c499a".into(),
        ]
    } else {
        args.circuits.clone()
    };
    println!(
        "Ablation A — rank position of the first valid correction at the root node \
         (single error; paper claims top 5%). seed={} trials={}",
        args.seed, args.trials
    );
    let mut table = Table::new([
        "ckt",
        "trials",
        "median rank",
        "worst rank",
        "median list",
        "top-5% rate",
    ]);
    for circuit in &circuits {
        let golden = scan_core(circuit);
        let results = run_parallel(args.trials, trial_jobs, |t| {
            for attempt in 0..20u64 {
                let seed = args.trial_seed("ablation_rank", circuit, 1, t, attempt);
                if let Some(r) = trial(&golden, args.vectors, seed, args.sparse, args.prune) {
                    return Some(r);
                }
            }
            None
        });
        let mut done: Vec<(usize, usize)> = results.into_iter().flatten().collect();
        if done.is_empty() {
            table.row([circuit.as_str(), "0", "-", "-", "-", "-"]);
            continue;
        }
        done.sort();
        let ranks: Vec<usize> = done.iter().map(|r| r.0).collect();
        let lists: Vec<usize> = done.iter().map(|r| r.1).collect();
        let median_rank = ranks[ranks.len() / 2];
        let worst = *ranks.iter().max().expect("non-empty");
        let mut sorted_lists = lists.clone();
        sorted_lists.sort();
        let median_list = sorted_lists[sorted_lists.len() / 2];
        let top5 = done
            .iter()
            .filter(|(r, n)| (*r as f64) <= (*n as f64 * 0.05).max(1.0))
            .count();
        table.row([
            circuit.clone(),
            done.len().to_string(),
            median_rank.to_string(),
            worst.to_string(),
            median_list.to_string(),
            format!("{}/{}", top5, done.len()),
        ]);
    }
    println!("{table}");
}
