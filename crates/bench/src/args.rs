//! Minimal flag parsing shared by the experiment binaries (no external
//! dependency; flags are `--name value`).

use std::time::Duration;

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct Args {
    /// Master seed; every trial derives its own seed from it.
    pub seed: u64,
    /// Trials per (circuit, fault-count) cell.
    pub trials: usize,
    /// Test vectors per run.
    pub vectors: usize,
    /// Circuits to run (suite names); empty = the binary's default list.
    pub circuits: Vec<String>,
    /// Per-run wall-clock limit.
    pub time_limit: Duration,
    /// Worker threads (0 = all cores).
    pub jobs: usize,
}

impl Default for Args {
    /// The paper's setup scaled to a few seconds per cell: 10 trials,
    /// 1024 vectors, 30 s per-run limit.
    fn default() -> Self {
        Args {
            seed: 2002,
            trials: 10,
            vectors: 1024,
            circuits: Vec::new(),
            time_limit: Duration::from_secs(30),
            jobs: 0,
        }
    }
}

impl Args {
    /// Parses `std::env::args`, exiting with usage text on `--help` or a
    /// malformed flag.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| die(&format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--seed" => args.seed = parse_num(&value("--seed")),
                "--trials" => args.trials = parse_num(&value("--trials")) as usize,
                "--vectors" => args.vectors = parse_num(&value("--vectors")) as usize,
                "--jobs" => args.jobs = parse_num(&value("--jobs")) as usize,
                "--time-limit" => {
                    args.time_limit = Duration::from_secs(parse_num(&value("--time-limit")))
                }
                "--circuits" => {
                    args.circuits = value("--circuits")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --seed N --trials N --vectors N --circuits a,b,c \
                         --time-limit SECONDS --jobs N"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag `{other}` (try --help)")),
            }
        }
        args
    }
}

fn parse_num(s: &str) -> u64 {
    s.parse()
        .unwrap_or_else(|_| die(&format!("`{s}` is not a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let a = Args::parse_from(
            ["--seed", "7", "--trials", "3", "--circuits", "c17,c432a", "--time-limit", "5"]
                .map(String::from),
        );
        assert_eq!(a.seed, 7);
        assert_eq!(a.trials, 3);
        assert_eq!(a.circuits, vec!["c17", "c432a"]);
        assert_eq!(a.time_limit, Duration::from_secs(5));
    }

    #[test]
    fn defaults_match_paper_scale() {
        let a = Args::default();
        assert_eq!(a.trials, 10);
        assert_eq!(a.vectors, 1024);
    }
}
