//! Minimal flag parsing shared by the experiment binaries (no external
//! dependency; flags are `--name value`).

use std::time::Duration;

use incdx_core::{ChaosConfig, RectifyLimits, TraversalKind};

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct Args {
    /// Master seed; every trial derives its own seed from it.
    pub seed: u64,
    /// Trials per (circuit, fault-count) cell.
    pub trials: usize,
    /// Test vectors per run.
    pub vectors: usize,
    /// Circuits to run (suite names); empty = the binary's default list.
    pub circuits: Vec<String>,
    /// Per-run wall-clock limit.
    pub time_limit: Duration,
    /// Worker threads (0 = all cores).
    pub jobs: usize,
    /// Arm the speculative node dispatcher (`--dispatch`): `--jobs`
    /// workers evaluate predicted tree expansions concurrently while
    /// the serial master loop keeps the search deterministic
    /// (`--no-dispatch` reverts to per-node parallel screening).
    pub dispatch: bool,
    /// Emit a one-line `RectifyReport` JSON record per engine run
    /// (`--no-json` disables; see EXPERIMENTS.md for the schema).
    pub json: bool,
    /// Use the event-driven incremental resimulation engine
    /// (`--no-incremental` reverts to full cone resimulation and disables
    /// the node-matrix cache; results are bit-identical either way).
    pub incremental: bool,
    /// Use the hierarchical sparse simulation kernel (`--no-sparse`
    /// reverts to the dense per-row kernels; results are bit-identical
    /// either way — only the sparse work counters and wall time move).
    pub sparse: bool,
    /// Two-level hierarchical diagnosis (`--hierarchical`): diagnose the
    /// cone-collapsed abstract netlist first, then resume on the
    /// concrete netlist restricted to the implicated regions (`--flat`
    /// reverts to single-level search; exhaustive solution sets are
    /// identical either way).
    pub hierarchical: bool,
    /// Arm the static-analysis pruning layer (`--prune`): candidate
    /// lines provably unable to repair every failing output are dropped
    /// before ranking (`--no-prune` reverts; solution sets are identical
    /// either way — the pruning rules are sound by construction).
    pub prune: bool,
    /// Share one batched path-trace pass across all failing vectors
    /// (`--batch-obs`; `--no-batch-obs` reverts to the per-vector walk;
    /// marking counts are bit-identical either way).
    pub batch_obs: bool,
    /// Decision-tree traversal strategy (`--traversal
    /// bfs|dfs|naive-bfs|best-first`; `bfs` is the paper's round-robin
    /// default).
    pub traversal: TraversalKind,
    /// Run the engine invariant audit (`--audit`): sampled from-scratch
    /// replays of incremental node preparations plus end-of-run solution
    /// verification, reported as the `audit` object of the JSON records.
    pub audit: bool,
    /// Per-engine-run wall-clock deadline in milliseconds
    /// (`--deadline-ms N`). Unlike `--time-limit` (the legacy per-level
    /// budget), this drives [`RectifyLimits::deadline`]: the run stops at
    /// a clean plan boundary with a typed verdict, ranked partial
    /// solutions, and a resumable checkpoint.
    pub deadline_ms: Option<u64>,
    /// Total decision-tree node budget per engine run (`--max-nodes N`),
    /// driving [`RectifyLimits::max_total_nodes`].
    pub max_nodes: Option<u64>,
    /// Deterministic chaos fault injection (`--chaos SEED,RATE`), parsed
    /// by [`ChaosConfig::parse`]. Arms worker panics, cached-matrix bit
    /// flips, and spurious width errors; the resilience layer must
    /// recover to the chaos-off solution set.
    pub chaos: Option<ChaosConfig>,
    /// Write the first captured engine checkpoint (an early-stopped run)
    /// to this path as one line of JSON (`--checkpoint PATH`).
    pub checkpoint: Option<String>,
    /// Resume a single checkpointed run from this path (`--resume PATH`)
    /// instead of sweeping the full experiment grid.
    pub resume: Option<String>,
}

impl Default for Args {
    /// The paper's setup scaled to a few seconds per cell: 10 trials,
    /// 1024 vectors, 30 s per-run limit.
    fn default() -> Self {
        Args {
            seed: 2002,
            trials: 10,
            vectors: 1024,
            circuits: Vec::new(),
            time_limit: Duration::from_secs(30),
            jobs: 0,
            dispatch: false,
            json: true,
            incremental: true,
            sparse: true,
            hierarchical: false,
            prune: false,
            batch_obs: false,
            traversal: TraversalKind::default(),
            audit: false,
            deadline_ms: None,
            max_nodes: None,
            chaos: None,
            checkpoint: None,
            resume: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args`, exiting with usage text on `--help` or a
    /// malformed flag.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| die(&format!("missing value for {name}")))
            };
            match flag.as_str() {
                "--seed" => args.seed = parse_num(&value("--seed")),
                "--trials" => args.trials = parse_num(&value("--trials")) as usize,
                "--vectors" => args.vectors = parse_num(&value("--vectors")) as usize,
                "--jobs" => args.jobs = parse_num(&value("--jobs")) as usize,
                "--dispatch" => args.dispatch = true,
                "--no-dispatch" => args.dispatch = false,
                "--json" => args.json = true,
                "--no-json" => args.json = false,
                "--incremental" => args.incremental = true,
                "--no-incremental" => args.incremental = false,
                "--sparse" => args.sparse = true,
                "--no-sparse" => args.sparse = false,
                "--hierarchical" => args.hierarchical = true,
                "--flat" => args.hierarchical = false,
                "--prune" => args.prune = true,
                "--no-prune" => args.prune = false,
                "--batch-obs" => args.batch_obs = true,
                "--no-batch-obs" => args.batch_obs = false,
                "--audit" => args.audit = true,
                "--deadline-ms" => args.deadline_ms = Some(parse_num(&value("--deadline-ms"))),
                "--max-nodes" => args.max_nodes = Some(parse_num(&value("--max-nodes"))),
                "--chaos" => {
                    let v = value("--chaos");
                    args.chaos =
                        Some(ChaosConfig::parse(&v).unwrap_or_else(|e| die(&format!("{e}"))));
                }
                "--checkpoint" => args.checkpoint = Some(value("--checkpoint")),
                "--resume" => args.resume = Some(value("--resume")),
                "--traversal" => {
                    let v = value("--traversal");
                    args.traversal = v.parse().unwrap_or_else(|e| die(&format!("{e}")));
                }
                "--time-limit" => {
                    args.time_limit = Duration::from_secs(parse_num(&value("--time-limit")))
                }
                "--circuits" => {
                    args.circuits = value("--circuits")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --seed N --trials N --vectors N --circuits a,b,c \
                         --time-limit SECONDS --jobs N --dispatch|--no-dispatch \
                         --json|--no-json \
                         --incremental|--no-incremental --sparse|--no-sparse \
                         --hierarchical|--flat --prune|--no-prune \
                         --batch-obs|--no-batch-obs --audit \
                         --traversal bfs|dfs|naive-bfs|best-first \
                         --deadline-ms N --max-nodes N --chaos SEED,RATE \
                         --checkpoint PATH --resume PATH"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag `{other}` (try --help)")),
            }
        }
        args
    }
}

impl Args {
    /// The [`RectifyLimits`] implied by `--deadline-ms` / `--max-nodes`
    /// (unset flags leave the corresponding limit disarmed).
    pub fn limits(&self) -> RectifyLimits {
        RectifyLimits {
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_total_nodes: self.max_nodes,
            ..RectifyLimits::default()
        }
    }

    /// Derives the RNG seed of one experiment trial. Every binary routes
    /// through here (instead of hand-rolled XOR formulas) so trial
    /// streams are decorrelated across experiments, circuits, fault
    /// counts, trials and re-injection attempts, while staying fully
    /// reproducible from `--seed`.
    pub fn trial_seed(
        &self,
        experiment: &str,
        circuit: &str,
        k: usize,
        trial: usize,
        attempt: u64,
    ) -> u64 {
        let mut h = mix(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        for part in [
            hash_label(experiment),
            hash_label(circuit),
            k as u64,
            trial as u64,
            attempt,
        ] {
            h = mix(h ^ part);
        }
        h
    }
}

/// FNV-1a over a label, for folding strings into [`Args::trial_seed`].
pub fn hash_label(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// SplitMix64 finalizer: diffuses every input bit over the whole word, so
/// small field values (trial 0/1/2…) produce unrelated seeds.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn parse_num(s: &str) -> u64 {
    s.parse()
        .unwrap_or_else(|_| die(&format!("`{s}` is not a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let a = Args::parse_from(
            [
                "--seed",
                "7",
                "--trials",
                "3",
                "--circuits",
                "c17,c432a",
                "--time-limit",
                "5",
            ]
            .map(String::from),
        );
        assert_eq!(a.seed, 7);
        assert_eq!(a.trials, 3);
        assert_eq!(a.circuits, vec!["c17", "c432a"]);
        assert_eq!(a.time_limit, Duration::from_secs(5));
    }

    #[test]
    fn defaults_match_paper_scale() {
        let a = Args::default();
        assert_eq!(a.trials, 10);
        assert_eq!(a.vectors, 1024);
        assert!(a.json);
    }

    #[test]
    fn json_flag_round_trips() {
        assert!(!Args::parse_from(["--no-json".to_string()]).json);
        assert!(Args::parse_from(["--json".to_string()]).json);
    }

    #[test]
    fn incremental_flag_round_trips() {
        assert!(Args::default().incremental, "incremental is the default");
        assert!(!Args::parse_from(["--no-incremental".to_string()]).incremental);
        assert!(Args::parse_from(["--incremental".to_string()]).incremental);
    }

    #[test]
    fn sparse_flag_round_trips() {
        assert!(Args::default().sparse, "sparse is the default");
        assert!(!Args::parse_from(["--no-sparse".to_string()]).sparse);
        assert!(Args::parse_from(["--sparse".to_string()]).sparse);
    }

    #[test]
    fn hierarchical_flag_round_trips() {
        assert!(!Args::default().hierarchical, "flat search is the default");
        assert!(Args::parse_from(["--hierarchical".to_string()]).hierarchical);
        assert!(
            !Args::parse_from(["--hierarchical".to_string(), "--flat".to_string()]).hierarchical
        );
    }

    #[test]
    fn prune_flag_round_trips() {
        assert!(!Args::default().prune, "pruning is opt-in");
        assert!(Args::parse_from(["--prune".to_string()]).prune);
        assert!(!Args::parse_from(["--prune".to_string(), "--no-prune".to_string()]).prune);
    }

    #[test]
    fn batch_obs_flag_round_trips() {
        assert!(!Args::default().batch_obs, "per-vector path-trace default");
        assert!(Args::parse_from(["--batch-obs".to_string()]).batch_obs);
        assert!(
            !Args::parse_from(["--batch-obs".to_string(), "--no-batch-obs".to_string()]).batch_obs
        );
    }

    #[test]
    fn dispatch_flag_round_trips() {
        assert!(!Args::default().dispatch, "dispatch is opt-in");
        assert!(Args::parse_from(["--dispatch".to_string()]).dispatch);
        assert!(
            !Args::parse_from(["--dispatch".to_string(), "--no-dispatch".to_string()]).dispatch
        );
    }

    #[test]
    fn audit_flag_is_opt_in() {
        assert!(!Args::default().audit, "audit is off by default");
        assert!(Args::parse_from(["--audit".to_string()]).audit);
    }

    #[test]
    fn traversal_flag_parses_every_strategy() {
        assert_eq!(Args::default().traversal, TraversalKind::RoundRobinBfs);
        for kind in TraversalKind::ALL {
            let a = Args::parse_from(["--traversal".to_string(), kind.as_str().to_string()]);
            assert_eq!(a.traversal, kind);
        }
        let a = Args::parse_from(["--traversal".to_string(), "rounds".to_string()]);
        assert_eq!(a.traversal, TraversalKind::RoundRobinBfs);
    }

    #[test]
    fn resilience_flags_parse_and_map_to_limits() {
        let a = Args::parse_from(
            [
                "--deadline-ms",
                "50",
                "--max-nodes",
                "200",
                "--chaos",
                "7,0.05",
                "--checkpoint",
                "/tmp/ckpt.json",
                "--resume",
                "/tmp/old.json",
            ]
            .map(String::from),
        );
        assert_eq!(a.deadline_ms, Some(50));
        assert_eq!(a.max_nodes, Some(200));
        let chaos = a.chaos.expect("chaos parsed");
        assert_eq!(chaos.seed, 7);
        assert!((chaos.rate - 0.05).abs() < 1e-12);
        assert_eq!(a.checkpoint.as_deref(), Some("/tmp/ckpt.json"));
        assert_eq!(a.resume.as_deref(), Some("/tmp/old.json"));
        let limits = a.limits();
        assert_eq!(limits.deadline, Some(Duration::from_millis(50)));
        assert_eq!(limits.max_total_nodes, Some(200));
        assert_eq!(limits.max_words, None);
        assert_eq!(limits.max_retained_bytes, None);
    }

    #[test]
    fn default_limits_are_disarmed() {
        let limits = Args::default().limits();
        assert_eq!(limits, RectifyLimits::default());
    }

    #[test]
    fn trial_seeds_are_deterministic_and_distinct() {
        let a = Args::default();
        let s = a.trial_seed("table1", "c432a", 2, 5, 0);
        assert_eq!(s, a.trial_seed("table1", "c432a", 2, 5, 0));
        // Any single field change moves the seed.
        assert_ne!(s, a.trial_seed("table2", "c432a", 2, 5, 0));
        assert_ne!(s, a.trial_seed("table1", "c880a", 2, 5, 0));
        assert_ne!(s, a.trial_seed("table1", "c432a", 3, 5, 0));
        assert_ne!(s, a.trial_seed("table1", "c432a", 2, 6, 0));
        assert_ne!(s, a.trial_seed("table1", "c432a", 2, 5, 1));
        let mut b = a.clone();
        b.seed = 1;
        assert_ne!(s, b.trial_seed("table1", "c432a", 2, 5, 0));
    }
}
