//! Tiny parallel map over independent trials (crossbeam scoped threads;
//! results collected under a `parking_lot` mutex, returned in input
//! order).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(i)` for `i in 0..n` across `jobs` worker threads
/// (0 = available parallelism) and returns the results in index order.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn run_parallel<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        jobs
    }
    .min(n.max(1));
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                results.lock()[i] = Some(value);
            });
        }
    })
    .expect("worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|v| v.expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_all_indices_in_order() {
        let out = run_parallel(100, 4, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert_eq!(run_parallel(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = run_parallel(0, 2, |i| i);
        assert!(out.is_empty());
    }
}
