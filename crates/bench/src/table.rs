//! Plain-text table rendering in the style of the paper's tables.

/// A simple left-padded column table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}"));
            }
            line
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["ckt", "time"]);
        t.row(["c17", "0.1"]);
        t.row(["c6288a", "123.4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("0.1"));
        assert!(lines[3].ends_with("123.4"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }
}
