//! The experiment primitives behind the table binaries: one trial =
//! inject → diagnose/rectify → verify → measure.

use std::time::{Duration, Instant};

use crate::args::Args;
use incdx_core::{
    ChaosConfig, Checkpoint, IncdxError, Rectifier, RectifyConfig, RectifyLimits, RectifyStats,
    TraversalKind, Verdict,
};
use incdx_fault::{inject_design_errors, inject_stuck_at_faults, InjectionConfig, StuckAt};
use incdx_netlist::{scan_convert, Netlist};
use incdx_opt::{optimize_for_area, OptConfig};
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The combinational circuits of Table 1/2, in the paper's order.
pub const DEFAULT_COMB_CIRCUITS: &[&str] = &[
    "c432a", "c499a", "c880a", "c1355a", "c1908a", "c2670a", "c3540a", "c5315a", "c6288a", "c7552a",
];

/// The full-scan sequential circuits of Table 1/2.
pub const DEFAULT_SEQ_CIRCUITS: &[&str] = &["s298a", "s344a", "s641a", "s1238a", "s9234a"];

/// Generates a suite circuit, scan-converting s-circuits to their
/// combinational cores.
///
/// # Panics
///
/// Panics on unknown circuit names.
pub fn scan_core(name: &str) -> Netlist {
    try_scan_core(name).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`scan_core`], for binaries that map unknown circuit
/// names onto their usage-error exit path (code 2) instead of panicking.
pub fn try_scan_core(name: &str) -> Result<Netlist, String> {
    let n = incdx_gen::generate(name).map_err(|e| format!("{e}"))?;
    if n.is_combinational() {
        Ok(n)
    } else {
        Ok(scan_convert(&n).map_err(|e| format!("{e}"))?.0)
    }
}

/// Engine-facing options shared by every trial: backend/traversal
/// selection plus the resilience layer (limits, chaos, checkpointing).
/// Bundled so the trial signatures stay stable as knobs accrue.
#[derive(Debug, Clone, Default)]
pub struct TrialOptions {
    /// Event-driven incremental engine (see [`Args::incremental`]).
    pub incremental: bool,
    /// Hierarchical sparse simulation kernel (see [`Args::sparse`]).
    pub sparse: bool,
    /// Two-level hierarchical diagnosis (see [`Args::hierarchical`]):
    /// abstract-first search resumed on the implicated concrete regions.
    pub hierarchical: bool,
    /// Static-analysis candidate pruning (see [`Args::prune`]): sound
    /// filtering of candidate lines before ranking; solution sets are
    /// identical either way.
    pub prune: bool,
    /// Batched multi-observation path-trace (see [`Args::batch_obs`]).
    pub batch_obs: bool,
    /// Decision-tree scheduling policy.
    pub traversal: TraversalKind,
    /// Arm the speculative node dispatcher
    /// ([`RectifyConfig::dispatch`]): `jobs` workers evaluate predicted
    /// tree expansions while the serial master loop keeps results
    /// bit-identical. Binaries that normally parallelize across trials
    /// should drop to one trial at a time when this is set, so the
    /// dispatcher owns the cores.
    pub dispatch: bool,
    /// Engine worker threads when `dispatch` is armed (0 = all cores);
    /// ignored otherwise — non-dispatched trials keep the config's
    /// default and let the harness parallelize across trials instead.
    pub jobs: usize,
    /// Engine invariant audit ([`RectifyConfig::audit`]).
    pub audit: bool,
    /// Cooperative resource limits (deadline, node/word budgets); an
    /// exhausted limit yields a typed verdict, ranked partial solutions,
    /// and a resumable checkpoint on the outcome.
    pub limits: RectifyLimits,
    /// Deterministic chaos fault injection (`--chaos`).
    pub chaos: Option<ChaosConfig>,
    /// Run label stamped into reports and any captured checkpoint
    /// (`experiment/circuit/kN/tM`).
    pub label: String,
    /// Resume from this checkpoint instead of starting fresh. The trial
    /// seed must regenerate the checkpointed workload — pass
    /// [`Checkpoint::trial_seed`] and [`Checkpoint::vectors`] back in.
    pub resume: Option<Checkpoint>,
}

impl TrialOptions {
    /// Lifts the engine-relevant flags out of parsed [`Args`].
    pub fn from_args(args: &Args) -> Self {
        TrialOptions {
            incremental: args.incremental,
            sparse: args.sparse,
            hierarchical: args.hierarchical,
            prune: args.prune,
            batch_obs: args.batch_obs,
            traversal: args.traversal,
            dispatch: args.dispatch,
            jobs: args.jobs,
            audit: args.audit,
            limits: args.limits(),
            chaos: args.chaos,
            label: String::new(),
            resume: None,
        }
    }

    /// A copy of these options aimed at a specific run label.
    pub fn labelled(&self, label: String) -> Self {
        let mut opts = self.clone();
        opts.label = label;
        opts
    }
}

/// Splits an `experiment/circuit/kN/tM` run label (the scheme the table
/// binaries stamp into reports and checkpoints) into its fields, so
/// `--resume` can re-dispatch a checkpoint to the right workload.
pub fn parse_run_label(label: &str) -> Option<(&str, &str, usize, usize)> {
    let mut it = label.split('/');
    let experiment = it.next()?;
    let circuit = it.next()?;
    let k = it.next()?.strip_prefix('k')?.parse().ok()?;
    let trial = it.next()?.strip_prefix('t')?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((experiment, circuit, k, trial))
}

/// Reads and validates a checkpoint file written by `--checkpoint`,
/// delegating to the core loader so a truncated or garbled file
/// surfaces as the same typed [`IncdxError::CheckpointIo`] /
/// [`IncdxError::Checkpoint`] the daemon's spool reports — never a
/// panic, and never a half-parsed checkpoint handed to `resume`.
///
/// [`IncdxError::CheckpointIo`]: incdx_core::IncdxError::CheckpointIo
/// [`IncdxError::Checkpoint`]: incdx_core::IncdxError::Checkpoint
pub fn load_checkpoint(path: &str) -> Result<Checkpoint, String> {
    incdx_core::load_checkpoint_file(std::path::Path::new(path)).map_err(|e| e.to_string())
}

/// Writes a checkpoint for the `--checkpoint` flag via the core's
/// atomic temp-file+rename writer, so a crash mid-write leaves either
/// the previous complete checkpoint or none — never a torn line.
pub fn save_checkpoint(path: &str, checkpoint: &Checkpoint) -> Result<(), String> {
    incdx_core::save_checkpoint_file(std::path::Path::new(path), checkpoint)
        .map_err(|e| e.to_string())
}

/// One Table 1 trial.
#[derive(Debug, Clone)]
pub struct StuckAtOutcome {
    /// Minimal equivalent tuples found.
    pub tuples: usize,
    /// Distinct fault sites over all tuples.
    pub sites: usize,
    /// Whether the actually-injected tuple (or, under masking, a strict
    /// subset of it) is among the answers.
    pub recovered: bool,
    /// Whether the answers are smaller than the injected tuple (fault
    /// masking, §4.1).
    pub masked: bool,
    /// Wall-clock for the whole diagnosis.
    pub total: Duration,
    /// Typed run outcome ([`Verdict::Exact`] on a clean full search).
    pub verdict: Verdict,
    /// Ranked partial solutions reported on an early stop.
    pub partials: usize,
    /// Checkpoint captured when a limit or cancellation stopped the run.
    pub checkpoint: Option<Checkpoint>,
    /// Engine statistics.
    pub stats: RectifyStats,
}

/// Runs one stuck-at diagnosis trial on `golden` (already optimized /
/// scan-converted): inject `faults` random stuck-at faults, capture the
/// device responses, diagnose exhaustively and verify.
///
/// Returns `Ok(None)` when injection cannot produce an observable
/// corruption (tiny circuits) — the caller draws a new seed — and
/// `Err` when the engine itself rejects the workload, so binaries can
/// exit with a structured error record.
///
/// `opts` selects the evaluator backend and traversal policy and arms
/// the resilience layer; see [`TrialOptions`].
pub fn stuck_at_trial(
    golden: &Netlist,
    faults: usize,
    vectors: usize,
    seed: u64,
    time_limit: Duration,
    opts: &TrialOptions,
) -> Result<Option<StuckAtOutcome>, IncdxError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = match inject_stuck_at_faults(
        golden,
        &InjectionConfig {
            count: faults,
            require_individually_observable: false,
            check_vectors: vectors,
            max_attempts: 100,
        },
        &mut rng,
    ) {
        Ok(injection) => injection,
        Err(_) => return Ok(None),
    };
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x00D1_A600);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, golden.inputs(), &pi),
    );
    if device.po_values().rows() != golden.outputs().len() {
        return Ok(None);
    }
    // The device might not be excited on this vector set; that is a
    // legitimate "no failing behaviour" outcome the harness skips.
    {
        let vals = sim.run(golden, &pi);
        if Response::compare(golden, &vals, &device).matches() {
            return Ok(None);
        }
    }
    let mut config = RectifyConfig::stuck_at_exhaustive(faults);
    config.time_limit = Some(time_limit);
    config.incremental = opts.incremental;
    config.sparse = opts.sparse;
    config.hierarchical = opts.hierarchical;
    config.prune = opts.prune;
    config.batch_obs = opts.batch_obs;
    config.traversal = opts.traversal;
    config.dispatch = opts.dispatch;
    if opts.dispatch {
        config.jobs = opts.jobs;
    }
    config.audit = opts.audit;
    config.limits = opts.limits;
    config.chaos = opts.chaos;
    let started = Instant::now();
    let mut engine = Rectifier::new(golden.clone(), pi, device, config)?;
    engine.set_checkpoint_meta(opts.label.clone(), seed);
    let result = match &opts.resume {
        Some(checkpoint) => engine.resume(checkpoint)?,
        None => engine.run(),
    };
    let total = started.elapsed();
    let mut injected: Vec<StuckAt> = injection.injected.clone();
    injected.sort();
    let recovered = result.solutions.iter().any(|s| {
        let t = s.stuck_at_tuple().expect("stuck-at mode");
        t == injected || (!t.is_empty() && t.iter().all(|f| injected.contains(f)))
    });
    let masked = result
        .solutions
        .iter()
        .all(|s| s.corrections.len() < faults)
        && !result.solutions.is_empty();
    Ok(Some(StuckAtOutcome {
        tuples: result.solutions.len(),
        sites: result.distinct_sites(),
        recovered,
        masked,
        total,
        verdict: result.verdict,
        partials: result.partials.len(),
        checkpoint: result.checkpoint,
        stats: result.stats,
    }))
}

/// One Table 2 trial.
#[derive(Debug, Clone)]
pub struct DedcOutcome {
    /// Did the engine find a verified correction tuple?
    pub solved: bool,
    /// Correction tuples reported by the engine (0 or 1 in DEDC mode).
    pub solutions: usize,
    /// Distinct corrected lines over all solutions.
    pub sites: usize,
    /// Wall-clock for the whole rectification.
    pub total: Duration,
    /// Typed run outcome ([`Verdict::Exact`] on a clean full search).
    pub verdict: Verdict,
    /// Ranked partial solutions reported on an early stop.
    pub partials: usize,
    /// Checkpoint captured when a limit or cancellation stopped the run.
    pub checkpoint: Option<Checkpoint>,
    /// Engine statistics.
    pub stats: RectifyStats,
}

/// Runs one DEDC trial on `golden` (used as the specification): inject
/// `errors` observable design errors, rectify the corrupted design, and
/// verify any claimed solution. See [`stuck_at_trial`] for the
/// `Ok(None)` / `Err` split and [`TrialOptions`] for `opts`.
pub fn dedc_trial(
    golden: &Netlist,
    errors: usize,
    vectors: usize,
    seed: u64,
    time_limit: Duration,
    opts: &TrialOptions,
) -> Result<Option<DedcOutcome>, IncdxError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = match inject_design_errors(
        golden,
        &InjectionConfig {
            count: errors,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 300,
        },
        &mut rng,
    ) {
        Ok(injection) => injection,
        Err(_) => return Ok(None),
    };
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x0DED_C000);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    let mut config = RectifyConfig::dedc(errors);
    config.time_limit = Some(time_limit);
    config.incremental = opts.incremental;
    config.sparse = opts.sparse;
    config.hierarchical = opts.hierarchical;
    config.prune = opts.prune;
    config.batch_obs = opts.batch_obs;
    config.traversal = opts.traversal;
    config.dispatch = opts.dispatch;
    if opts.dispatch {
        config.jobs = opts.jobs;
    }
    config.audit = opts.audit;
    config.limits = opts.limits;
    config.chaos = opts.chaos;
    let started = Instant::now();
    let mut engine = Rectifier::new(
        injection.corrupted.clone(),
        pi.clone(),
        spec.clone(),
        config,
    )?;
    engine.set_checkpoint_meta(opts.label.clone(), seed);
    let result = match &opts.resume {
        Some(checkpoint) => engine.resume(checkpoint)?,
        None => engine.run(),
    };
    let total = started.elapsed();
    let solved = match result.solutions.first() {
        Some(solution) => {
            let mut fixed = injection.corrupted.clone();
            let applies = solution
                .corrections
                .iter()
                .all(|c| c.apply(&mut fixed).is_ok());
            applies
                && Response::compare(
                    &fixed,
                    &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
                    &spec,
                )
                .matches()
        }
        None => false,
    };
    Ok(Some(DedcOutcome {
        solved,
        solutions: result.solutions.len(),
        sites: result.distinct_sites(),
        total,
        verdict: result.verdict,
        partials: result.partials.len(),
        checkpoint: result.checkpoint,
        stats: result.stats,
    }))
}

/// Optimizes a circuit the way §4.1 prescribes for the stuck-at
/// experiments (bounded redundancy removal so large circuits stay fast).
pub fn optimize_for_table1(netlist: &Netlist) -> Netlist {
    optimize_for_area(
        netlist,
        &OptConfig {
            redundancy_rounds: 2,
            backtrack_limit: 500,
            prefilter_vectors: 256,
        },
    )
    .netlist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_opts() -> TrialOptions {
        TrialOptions {
            incremental: true,
            sparse: true,
            traversal: TraversalKind::default(),
            ..TrialOptions::default()
        }
    }

    #[test]
    fn stuck_at_trial_on_small_circuit() {
        let golden = scan_core("c432a");
        let out = stuck_at_trial(&golden, 1, 256, 3, Duration::from_secs(20), &base_opts())
            .expect("well-formed workload")
            .expect("injectable");
        assert!(out.tuples >= 1);
        assert!(out.recovered);
        assert!(!out.masked);
        assert!(out.sites >= out.tuples.min(1));
        assert_eq!(out.verdict, Verdict::Exact);
        assert_eq!(out.partials, 0);
        assert!(out.checkpoint.is_none(), "clean run captures no checkpoint");
    }

    #[test]
    fn hierarchical_trial_matches_flat_solution_counts() {
        let golden = scan_core("c432a");
        let mut hier = base_opts();
        hier.hierarchical = true;
        hier.batch_obs = true;
        let h = stuck_at_trial(&golden, 1, 256, 3, Duration::from_secs(20), &hier)
            .expect("well-formed workload")
            .expect("injectable");
        let f = stuck_at_trial(&golden, 1, 256, 3, Duration::from_secs(20), &base_opts())
            .expect("well-formed workload")
            .expect("injectable");
        assert_eq!(h.tuples, f.tuples);
        assert_eq!(h.sites, f.sites);
        assert_eq!(h.recovered, f.recovered);
        assert_eq!(h.verdict, f.verdict);
        assert!(
            h.stats.abstraction.is_some(),
            "hierarchical run reports abstraction stats"
        );
    }

    #[test]
    fn dedc_trial_on_small_circuit() {
        let golden = scan_core("c432a");
        let mut opts = base_opts();
        opts.audit = true;
        let out = dedc_trial(&golden, 1, 256, 5, Duration::from_secs(20), &opts)
            .expect("well-formed workload")
            .expect("injectable");
        assert!(out.solved);
        assert_eq!(out.verdict, Verdict::Exact);
        assert!(out.stats.audit_checks > 0, "audit layer ran");
        assert_eq!(out.stats.audit_violations, 0, "c432a audits clean");
    }

    #[test]
    fn deadline_trial_checkpoints_and_resumes_identically() {
        let golden = scan_core("c432a");
        // An impossible deadline stops the run at the first plan boundary.
        let mut limited = base_opts();
        limited.label = "table2/c432a/k2/t0".to_string();
        limited.limits.deadline = Some(Duration::ZERO);
        let out = dedc_trial(&golden, 2, 256, 5, Duration::from_secs(20), &limited)
            .expect("well-formed workload")
            .expect("injectable");
        assert_eq!(out.verdict, Verdict::DeadlineExceeded);
        assert!(out.partials > 0, "ranked partials on early stop");
        let checkpoint = out.checkpoint.expect("early stop captures a checkpoint");
        assert_eq!(checkpoint.label, "table2/c432a/k2/t0");
        assert_eq!(checkpoint.trial_seed, 5);
        assert_eq!(checkpoint.vectors, 256);

        // Resume without limits and compare against the unlimited run.
        let mut resume = base_opts();
        resume.resume = Some(checkpoint);
        let resumed = dedc_trial(&golden, 2, 256, 5, Duration::from_secs(20), &resume)
            .expect("resume accepted")
            .expect("injectable");
        let fresh = dedc_trial(&golden, 2, 256, 5, Duration::from_secs(20), &base_opts())
            .expect("well-formed workload")
            .expect("injectable");
        assert_eq!(resumed.verdict, fresh.verdict);
        assert_eq!(resumed.solutions, fresh.solutions);
        assert_eq!(resumed.sites, fresh.sites);
        assert_eq!(resumed.solved, fresh.solved);
    }

    #[test]
    fn checkpoint_file_round_trips() {
        let golden = scan_core("c432a");
        let mut limited = base_opts();
        limited.label = "table2/c432a/k2/t1".to_string();
        limited.limits.max_total_nodes = Some(1);
        let out = dedc_trial(&golden, 2, 256, 5, Duration::from_secs(20), &limited)
            .expect("well-formed workload")
            .expect("injectable");
        let checkpoint = out.checkpoint.expect("budget stop captures a checkpoint");
        let path = std::env::temp_dir().join("incdx_bench_ckpt_roundtrip.json");
        let path = path.to_str().expect("utf-8 temp path");
        save_checkpoint(path, &checkpoint).expect("writable temp dir");
        let loaded = load_checkpoint(path).expect("round trip");
        assert_eq!(loaded.label, checkpoint.label);
        assert_eq!(loaded.plan_pos, checkpoint.plan_pos);
        assert_eq!(loaded.nodes.len(), checkpoint.nodes.len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncated_checkpoint_file_is_a_typed_error_not_a_resume() {
        let golden = scan_core("c432a");
        let mut limited = base_opts();
        limited.label = "table2/c432a/k2/t2".to_string();
        limited.limits.max_total_nodes = Some(1);
        let out = dedc_trial(&golden, 2, 256, 5, Duration::from_secs(20), &limited)
            .expect("well-formed workload")
            .expect("injectable");
        let checkpoint = out.checkpoint.expect("budget stop captures a checkpoint");
        let path = std::env::temp_dir().join("incdx_bench_ckpt_truncated.json");
        let path = path.to_str().expect("utf-8 temp path");
        save_checkpoint(path, &checkpoint).expect("writable temp dir");

        // Simulate a torn write: chop the file mid-line. The loader must
        // refuse with a typed error naming the problem — the `--resume`
        // path never even constructs an engine from it.
        let full = std::fs::read_to_string(path).expect("readable");
        std::fs::write(path, &full[..full.len() / 2]).expect("truncate");
        let err = load_checkpoint(path).expect_err("torn checkpoint rejected");
        assert!(
            err.contains("checkpoint"),
            "typed checkpoint error, got: {err}"
        );

        // Garbage that still parses as JSON but violates the schema is
        // equally refused.
        std::fs::write(path, "{\"version\":999}\n").expect("garbage");
        assert!(load_checkpoint(path).is_err(), "schema garbage rejected");
        let _ = std::fs::remove_file(path);

        // And a checkpoint edited to pin the wrong workload is refused
        // by `Rectifier::resume` itself (the last line of defence when
        // the file parses cleanly but lies).
        let mut wrong = checkpoint;
        wrong.base_hash ^= 1;
        let mut resume = base_opts();
        resume.resume = Some(wrong);
        let refused = dedc_trial(&golden, 2, 256, 5, Duration::from_secs(20), &resume);
        assert!(
            matches!(refused, Err(IncdxError::Checkpoint { .. })),
            "resume must refuse a checkpoint pinning a different netlist"
        );
    }

    #[test]
    fn run_labels_parse_and_reject_other_schemes() {
        assert_eq!(
            parse_run_label("table1/c432a/k3/t7"),
            Some(("table1", "c432a", 3, 7))
        );
        assert_eq!(parse_run_label("fig2/c432a/budget4"), None);
        assert_eq!(parse_run_label("table1/c432a/k3"), None);
        assert_eq!(parse_run_label("table1/c432a/k3/t7/extra"), None);
        assert_eq!(parse_run_label("table1/c432a/3/t7"), None);
    }

    #[test]
    fn scan_core_handles_both_families() {
        assert!(scan_core("c17").is_combinational());
        assert!(scan_core("s298a").is_combinational());
        assert!(try_scan_core("not-a-circuit").is_err());
    }
}
