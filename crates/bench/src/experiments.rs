//! The experiment primitives behind the table binaries: one trial =
//! inject → diagnose/rectify → verify → measure.

use std::time::{Duration, Instant};

use incdx_core::{Rectifier, RectifyConfig, RectifyStats, TraversalKind};
use incdx_fault::{inject_design_errors, inject_stuck_at_faults, InjectionConfig, StuckAt};
use incdx_netlist::{scan_convert, Netlist};
use incdx_opt::{optimize_for_area, OptConfig};
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The combinational circuits of Table 1/2, in the paper's order.
pub const DEFAULT_COMB_CIRCUITS: &[&str] = &[
    "c432a", "c499a", "c880a", "c1355a", "c1908a", "c2670a", "c3540a", "c5315a", "c6288a", "c7552a",
];

/// The full-scan sequential circuits of Table 1/2.
pub const DEFAULT_SEQ_CIRCUITS: &[&str] = &["s298a", "s344a", "s641a", "s1238a", "s9234a"];

/// Generates a suite circuit, scan-converting s-circuits to their
/// combinational cores.
///
/// # Panics
///
/// Panics on unknown circuit names.
pub fn scan_core(name: &str) -> Netlist {
    let n = incdx_gen::generate(name).unwrap_or_else(|e| panic!("{e}"));
    if n.is_combinational() {
        n
    } else {
        scan_convert(&n).expect("suite circuits scan-convert").0
    }
}

/// One Table 1 trial.
#[derive(Debug, Clone)]
pub struct StuckAtOutcome {
    /// Minimal equivalent tuples found.
    pub tuples: usize,
    /// Distinct fault sites over all tuples.
    pub sites: usize,
    /// Whether the actually-injected tuple (or, under masking, a strict
    /// subset of it) is among the answers.
    pub recovered: bool,
    /// Whether the answers are smaller than the injected tuple (fault
    /// masking, §4.1).
    pub masked: bool,
    /// Wall-clock for the whole diagnosis.
    pub total: Duration,
    /// Engine statistics.
    pub stats: RectifyStats,
}

/// Runs one stuck-at diagnosis trial on `golden` (already optimized /
/// scan-converted): inject `faults` random stuck-at faults, capture the
/// device responses, diagnose exhaustively and verify.
///
/// Returns `None` when injection cannot produce an observable corruption
/// (tiny circuits) — the caller draws a new seed.
///
/// `incremental` selects the event-driven incremental engine; `false`
/// reverts to full cone resimulation (bit-identical results, more
/// simulated words). `traversal` picks the decision-tree scheduling
/// policy ([`TraversalKind::default`] is the paper's round-robin BFS).
/// `audit` turns on the engine invariant audit
/// ([`RectifyConfig::audit`]): results are unchanged, and the run's
/// check/violation counts land in [`RectifyStats`].
#[allow(clippy::too_many_arguments)]
pub fn stuck_at_trial(
    golden: &Netlist,
    faults: usize,
    vectors: usize,
    seed: u64,
    time_limit: Duration,
    incremental: bool,
    traversal: TraversalKind,
    audit: bool,
) -> Option<StuckAtOutcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_stuck_at_faults(
        golden,
        &InjectionConfig {
            count: faults,
            require_individually_observable: false,
            check_vectors: vectors,
            max_attempts: 100,
        },
        &mut rng,
    )
    .ok()?;
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x00D1_A600);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, golden.inputs(), &pi),
    );
    if device.po_values().rows() != golden.outputs().len() {
        return None;
    }
    // The device might not be excited on this vector set; that is a
    // legitimate "no failing behaviour" outcome the harness skips.
    {
        let vals = sim.run(golden, &pi);
        if Response::compare(golden, &vals, &device).matches() {
            return None;
        }
    }
    let mut config = RectifyConfig::stuck_at_exhaustive(faults);
    config.time_limit = Some(time_limit);
    config.incremental = incremental;
    config.traversal = traversal;
    config.audit = audit;
    let started = Instant::now();
    let mut engine = Rectifier::new(golden.clone(), pi, device, config).ok()?;
    let result = engine.run();
    let total = started.elapsed();
    let mut injected: Vec<StuckAt> = injection.injected.clone();
    injected.sort();
    let recovered = result.solutions.iter().any(|s| {
        let t = s.stuck_at_tuple().expect("stuck-at mode");
        t == injected || (!t.is_empty() && t.iter().all(|f| injected.contains(f)))
    });
    let masked = result
        .solutions
        .iter()
        .all(|s| s.corrections.len() < faults)
        && !result.solutions.is_empty();
    Some(StuckAtOutcome {
        tuples: result.solutions.len(),
        sites: result.distinct_sites(),
        recovered,
        masked,
        total,
        stats: result.stats,
    })
}

/// One Table 2 trial.
#[derive(Debug, Clone)]
pub struct DedcOutcome {
    /// Did the engine find a verified correction tuple?
    pub solved: bool,
    /// Correction tuples reported by the engine (0 or 1 in DEDC mode).
    pub solutions: usize,
    /// Distinct corrected lines over all solutions.
    pub sites: usize,
    /// Wall-clock for the whole rectification.
    pub total: Duration,
    /// Engine statistics.
    pub stats: RectifyStats,
}

/// Runs one DEDC trial on `golden` (used as the specification): inject
/// `errors` observable design errors, rectify the corrupted design, and
/// verify any claimed solution. See [`stuck_at_trial`] for
/// `incremental` and `traversal`.
#[allow(clippy::too_many_arguments)]
pub fn dedc_trial(
    golden: &Netlist,
    errors: usize,
    vectors: usize,
    seed: u64,
    time_limit: Duration,
    incremental: bool,
    traversal: TraversalKind,
    audit: bool,
) -> Option<DedcOutcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let injection = inject_design_errors(
        golden,
        &InjectionConfig {
            count: errors,
            require_individually_observable: true,
            check_vectors: vectors,
            max_attempts: 300,
        },
        &mut rng,
    )
    .ok()?;
    let mut vec_rng = StdRng::seed_from_u64(seed ^ 0x0DED_C000);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(golden, &sim.run(golden, &pi));
    let mut config = RectifyConfig::dedc(errors);
    config.time_limit = Some(time_limit);
    config.incremental = incremental;
    config.traversal = traversal;
    config.audit = audit;
    let started = Instant::now();
    let mut engine = Rectifier::new(
        injection.corrupted.clone(),
        pi.clone(),
        spec.clone(),
        config,
    )
    .ok()?;
    let result = engine.run();
    let total = started.elapsed();
    let solved = match result.solutions.first() {
        Some(solution) => {
            let mut fixed = injection.corrupted.clone();
            let applies = solution
                .corrections
                .iter()
                .all(|c| c.apply(&mut fixed).is_ok());
            applies
                && Response::compare(
                    &fixed,
                    &sim.run_for_inputs(&fixed, golden.inputs(), &pi),
                    &spec,
                )
                .matches()
        }
        None => false,
    };
    Some(DedcOutcome {
        solved,
        solutions: result.solutions.len(),
        sites: result.distinct_sites(),
        total,
        stats: result.stats,
    })
}

/// Optimizes a circuit the way §4.1 prescribes for the stuck-at
/// experiments (bounded redundancy removal so large circuits stay fast).
pub fn optimize_for_table1(netlist: &Netlist) -> Netlist {
    optimize_for_area(
        netlist,
        &OptConfig {
            redundancy_rounds: 2,
            backtrack_limit: 500,
            prefilter_vectors: 256,
        },
    )
    .netlist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_trial_on_small_circuit() {
        let golden = scan_core("c432a");
        let out = stuck_at_trial(
            &golden,
            1,
            256,
            3,
            Duration::from_secs(20),
            true,
            TraversalKind::default(),
            false,
        )
        .expect("injectable");
        assert!(out.tuples >= 1);
        assert!(out.recovered);
        assert!(!out.masked);
        assert!(out.sites >= out.tuples.min(1));
    }

    #[test]
    fn dedc_trial_on_small_circuit() {
        let golden = scan_core("c432a");
        let out = dedc_trial(
            &golden,
            1,
            256,
            5,
            Duration::from_secs(20),
            true,
            TraversalKind::default(),
            true,
        )
        .expect("injectable");
        assert!(out.solved);
        assert!(out.stats.audit_checks > 0, "audit layer ran");
        assert_eq!(out.stats.audit_violations, 0, "c432a audits clean");
    }

    #[test]
    fn scan_core_handles_both_families() {
        assert!(scan_core("c17").is_combinational());
        assert!(scan_core("s298a").is_combinational());
    }
}
