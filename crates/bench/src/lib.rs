//! Shared experiment harness for the table/figure binaries that
//! regenerate the paper's evaluation (see DESIGN.md §4 for the
//! experiment ↔ binary map).
//!
//! Binaries:
//!
//! * `table1` — multiple stuck-at diagnosis (paper Table 1),
//! * `table2` — multiple design error DEDC (paper Table 2),
//! * `fig2_rounds` — the round-based traversal illustration (Fig. 2),
//! * `ablation_rank` — "valid corrections rank in the top 5%" (§3.3),
//! * `ablation_traversal` — rounds vs DFS vs BFS (§3),
//! * `ablation_screening` — candidate-space reduction by h2/h3 (§3.2).
//!
//! Every binary takes `--seed`, `--trials`, `--vectors`, `--circuits`
//! and `--time-limit` flags and prints the seed it used, so results are
//! reproducible.

mod args;
mod exit;
mod experiments;
mod table;

pub use args::Args;
pub use exit::{engine_error, engine_error_record, finish_with_checkpoint, usage_error};
pub use experiments::{
    dedc_trial, load_checkpoint, optimize_for_table1, parse_run_label, save_checkpoint, scan_core,
    stuck_at_trial, try_scan_core, DedcOutcome, StuckAtOutcome, TrialOptions,
    DEFAULT_COMB_CIRCUITS, DEFAULT_SEQ_CIRCUITS,
};
pub use incdx_core::run_parallel;
pub use table::Table;
