//! Criterion micro-benchmarks of the speculative dispatcher's shared
//! frontier: priority-ordered push/pop throughput on one thread, and
//! contended pop (steal) throughput with a producer racing consumers —
//! the structure every dispatched engine run hammers once per node.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use incdx_core::{Frontier, Prio};
use std::hint::black_box;

/// Deterministic pseudo-random priorities (SplitMix64), so the heap
/// sees an adversarial interleaving rather than sorted input.
fn priorities(n: usize) -> Vec<Prio> {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|seq| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Prio {
                primary: (z >> 11) as f64 / (1u64 << 53) as f64,
                seq: seq as u64,
            }
        })
        .collect()
}

fn bench_push_pop(c: &mut Criterion) {
    let prios = priorities(1024);
    c.bench_function("frontier_push_pop_1k", |b| {
        b.iter(|| {
            let frontier: Frontier<usize> = Frontier::new();
            for (i, p) in prios.iter().enumerate() {
                frontier.push(*p, Frontier::<usize>::MASTER_OWNER, i);
            }
            let mut drained = 0usize;
            while let Some(popped) = frontier.pop_timeout(0, Duration::ZERO) {
                drained += black_box(popped.item);
            }
            black_box(drained)
        });
    });
}

fn bench_contended_steal(c: &mut Criterion) {
    let prios = Arc::new(priorities(1024));
    c.bench_function("frontier_steal_1k_2workers", |b| {
        b.iter(|| {
            let frontier: Arc<Frontier<usize>> = Arc::new(Frontier::new());
            let consumed: usize = std::thread::scope(|scope| {
                let producer = {
                    let frontier = Arc::clone(&frontier);
                    let prios = Arc::clone(&prios);
                    scope.spawn(move || {
                        for (i, p) in prios.iter().enumerate() {
                            // Owner 0: pops by worker 1 count as steals.
                            frontier.push(*p, 0, i);
                        }
                        frontier.close();
                    })
                };
                let consumers: Vec<_> = (0..2usize)
                    .map(|worker| {
                        let frontier = Arc::clone(&frontier);
                        scope.spawn(move || {
                            let mut got = 0usize;
                            while let Some(popped) =
                                frontier.pop_timeout(worker, Duration::from_millis(1))
                            {
                                got += black_box(popped.item);
                            }
                            got
                        })
                    })
                    .collect();
                producer.join().expect("producer");
                consumers
                    .into_iter()
                    .map(|h| h.join().expect("consumer"))
                    .sum()
            });
            black_box(consumed)
        });
    });
}

criterion_group!(dispatch, bench_push_pop, bench_contended_steal);
criterion_main!(dispatch);
