//! Criterion micro-benchmarks of the hot kernels: bit-parallel
//! simulation, fanout-cone resimulation, path-trace, fault simulation and
//! PODEM.

use criterion::{criterion_group, criterion_main, Criterion};
use incdx_atpg::{fault_simulate, podem};
use incdx_core::path_trace_counts;
use incdx_fault::StuckAt;
use incdx_gen::generate;
use incdx_netlist::GateId;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_full");
    for name in ["c432a", "c880a", "c6288a"] {
        let n = generate(name).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let pi = PackedMatrix::random(n.inputs().len(), 1024, &mut rng);
        let mut sim = Simulator::new();
        group.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(&n, black_box(&pi))));
        });
    }
    group.finish();
}

fn bench_cone_resim(c: &mut Criterion) {
    let n = generate("c6288a").unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let pi = PackedMatrix::random(n.inputs().len(), 1024, &mut rng);
    let mut sim = Simulator::new();
    let mut vals = sim.run(&n, &pi);
    // A mid-circuit stem with a deep cone.
    let stem = GateId::from_index(n.len() / 3);
    let cone = n.fanout_cone_sorted(stem);
    c.bench_function("cone_resim_c6288a", |b| {
        b.iter(|| {
            sim.run_cone(&n, black_box(&mut vals), black_box(&cone));
        });
    });
}

fn bench_path_trace(c: &mut Criterion) {
    let golden = generate("c880a").unwrap();
    let mut corrupted = golden.clone();
    StuckAt::new(GateId::from_index(golden.len() / 2), true)
        .apply(&mut corrupted)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let pi = PackedMatrix::random(golden.inputs().len(), 1024, &mut rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &pi));
    let vals = sim.run_for_inputs(&corrupted, golden.inputs(), &pi);
    let resp = Response::compare(&corrupted, &vals, &spec);
    c.bench_function("path_trace_c880a_32vec", |b| {
        b.iter(|| black_box(path_trace_counts(&corrupted, &vals, &resp, &spec, 32)));
    });
}

fn bench_fault_simulation(c: &mut Criterion) {
    let n = generate("c880a").unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let pi = PackedMatrix::random(n.inputs().len(), 1024, &mut rng);
    let faults: Vec<StuckAt> = n
        .ids()
        .step_by(4)
        .flat_map(|id| [StuckAt::new(id, false), StuckAt::new(id, true)])
        .collect();
    c.bench_function("fault_simulate_c880a", |b| {
        b.iter(|| black_box(fault_simulate(&n, black_box(&faults), &pi)));
    });
}

fn bench_podem(c: &mut Criterion) {
    let n = generate("c880a").unwrap();
    let fault = StuckAt::new(GateId::from_index(n.len() / 2), false);
    c.bench_function("podem_c880a_single_fault", |b| {
        b.iter(|| black_box(podem(&n, black_box(fault), 10_000)));
    });
}

criterion_group!(
    kernels,
    bench_simulation,
    bench_cone_resim,
    bench_path_trace,
    bench_fault_simulation,
    bench_podem
);
criterion_main!(kernels);
