//! Criterion micro-benchmarks of the hierarchical sparse simulation
//! kernel: masked popcounts through a block summary versus the dense
//! word-by-word walk, mask construction, and sparse cone resimulation.

use criterion::{criterion_group, criterion_main, Criterion};
use incdx_gen::generate;
use incdx_netlist::GateId;
use incdx_sim::{xor_masked_count_ones, PackedBits, PackedMatrix, Simulator, SparseMask};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// A failing-vector pattern with `density` of its 256-vector blocks
/// occupied — the shape the rectifier sees on large vector sets where
/// few vectors expose the fault.
fn sparse_bits(num_vectors: usize, density: f64, rng: &mut StdRng) -> PackedBits {
    let mut bits = PackedBits::new(num_vectors);
    let blocks = num_vectors.div_ceil(256).max(1);
    for b in 0..blocks {
        if rng.random::<f64>() < density {
            let base = b * 256;
            for _ in 0..8 {
                let v = base + rng.random_range(0..256usize);
                if v < num_vectors {
                    bits.set(v, true);
                }
            }
        }
    }
    bits
}

fn bench_masked_popcount(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let nv = 16 * 1024;
    let bits = sparse_bits(nv, 0.05, &mut rng);
    let mask = SparseMask::from_bits(&bits);
    let mut a = PackedBits::new(nv);
    a.fill_random(&mut rng);
    let mut b2 = PackedBits::new(nv);
    b2.fill_random(&mut rng);
    let mut group = c.benchmark_group("masked_popcount_16k");
    group.bench_function("sparse", |b| {
        b.iter(|| black_box(mask.xor_count_ones(black_box(a.words()), black_box(b2.words()))));
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            black_box(xor_masked_count_ones(
                black_box(a.words()),
                black_box(b2.words()),
                black_box(bits.words()),
            ))
        });
    });
    group.finish();
}

fn bench_mask_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let bits = sparse_bits(16 * 1024, 0.05, &mut rng);
    c.bench_function("sparse_mask_from_bits_16k", |b| {
        b.iter(|| black_box(SparseMask::from_bits(black_box(&bits))));
    });
}

fn bench_cone_resim(c: &mut Criterion) {
    let n = generate("c880a").unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let pi = PackedMatrix::random(n.inputs().len(), 2048, &mut rng);
    let stem = GateId::from_index(n.len() / 3);
    let cone = n.fanout_cone_sorted(stem);
    let mut group = c.benchmark_group("cone_events_c880a_2k");
    for (label, sparse) in [("sparse", true), ("dense", false)] {
        let mut sim = Simulator::new();
        sim.set_sparse(sparse);
        let mut vals = sim.run(&n, &pi);
        // Flip one word of the stem so each pass propagates a narrow,
        // block-local change through the cone.
        group.bench_function(label, |b| {
            b.iter(|| {
                vals.row_mut(stem.index())[3] ^= u64::MAX;
                black_box(sim.run_cone_events(&n, black_box(&mut vals), &cone));
            });
        });
    }
    group.finish();
}

criterion_group!(
    sparse,
    bench_masked_popcount,
    bench_mask_build,
    bench_cone_resim
);
criterion_main!(sparse);
