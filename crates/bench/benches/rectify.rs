//! Criterion end-to-end benchmarks of the diagnosis engine: single-fault
//! exhaustive diagnosis and single-error DEDC — the kernels of Tables 1
//! and 2.

use criterion::{criterion_group, criterion_main, Criterion};
use incdx_core::{Rectifier, RectifyConfig};
use incdx_fault::{inject_design_errors, inject_stuck_at_faults, InjectionConfig};
use incdx_gen::generate;
use incdx_sim::{PackedMatrix, Response, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_stuck_at_single(c: &mut Criterion) {
    let golden = generate("c880a").unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let injection = inject_stuck_at_faults(
        &golden,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 1024,
            max_attempts: 100,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(11);
    let pi = PackedMatrix::random(golden.inputs().len(), 1024, &mut vec_rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &injection.corrupted,
        &sim.run_for_inputs(&injection.corrupted, golden.inputs(), &pi),
    );
    c.bench_function("diagnose_stuck_at_1_c880a", |b| {
        b.iter(|| {
            let r = Rectifier::new(
                golden.clone(),
                pi.clone(),
                device.clone(),
                RectifyConfig::stuck_at_exhaustive(1),
            )
            .unwrap()
            .run();
            black_box(r.solutions.len())
        });
    });
}

fn bench_dedc_single(c: &mut Criterion) {
    let golden = generate("c432a").unwrap();
    let mut rng = StdRng::seed_from_u64(20);
    let injection = inject_design_errors(
        &golden,
        &InjectionConfig {
            count: 1,
            require_individually_observable: true,
            check_vectors: 1024,
            max_attempts: 200,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(21);
    let pi = PackedMatrix::random(golden.inputs().len(), 1024, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &pi));
    c.bench_function("dedc_1_error_c432a", |b| {
        b.iter(|| {
            let r = Rectifier::new(
                injection.corrupted.clone(),
                pi.clone(),
                spec.clone(),
                RectifyConfig::dedc(1),
            )
            .unwrap()
            .run();
            black_box(r.solutions.len())
        });
    });
}

fn bench_heuristic1_ranking(c: &mut Criterion) {
    use incdx_core::{default_ladder, RectifyConfig};
    let golden = generate("c1908a").unwrap();
    let mut rng = StdRng::seed_from_u64(30);
    let injection = inject_design_errors(
        &golden,
        &InjectionConfig {
            count: 2,
            require_individually_observable: true,
            check_vectors: 1024,
            max_attempts: 200,
        },
        &mut rng,
    )
    .unwrap();
    let mut vec_rng = StdRng::seed_from_u64(31);
    let pi = PackedMatrix::random(golden.inputs().len(), 1024, &mut vec_rng);
    let mut sim = Simulator::new();
    let spec = Response::capture(&golden, &sim.run(&golden, &pi));
    let level = default_ladder()[2];
    c.bench_function("rank_candidates_root_c1908a", |b| {
        b.iter(|| {
            let mut rect = Rectifier::new(
                injection.corrupted.clone(),
                pi.clone(),
                spec.clone(),
                RectifyConfig::dedc(2),
            )
            .unwrap();
            black_box(rect.rank_candidates(&[], &level).len())
        });
    });
}

criterion_group!(
    rectify,
    bench_stuck_at_single,
    bench_dedc_single,
    bench_heuristic1_ranking
);
criterion_main!(rectify);
