//! Integration tests of the resilience layer: cooperative limits,
//! cancellation, checkpoint/resume identity, panic recovery, and the
//! chaos fault-injection harness.
//!
//! The load-bearing property throughout: an early stop (deadline,
//! budget, cancellation) happens only at a plan-item boundary, so the
//! captured checkpoint resumes to *exactly* the solution set of an
//! unlimited run, and every recovery the engine performs is visible as
//! a structured degradation event.

use std::sync::Once;
use std::time::Duration;

use incdx_core::{
    ChaosConfig, Checkpoint, DegradationKind, PartialSolution, Rectifier, RectifyConfig,
    RectifyLimits, Verdict,
};
use incdx_fault::StuckAt;
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::{GateId, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64, gates: usize) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 8,
            gates,
            outputs: 5,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        },
        seed,
    )
}

/// Injects stuck-at faults at `picks` and captures the faulty device's
/// responses; `None` when a fault fails to apply or is not excited.
fn stuck_at_workload(
    golden: &Netlist,
    picks: &[(usize, bool)],
    vectors: usize,
    seed: u64,
) -> Option<(PackedMatrix, Response)> {
    let mut device_nl = golden.clone();
    for &(pick, v) in picks {
        StuckAt::new(GateId::from_index(pick % golden.len()), v)
            .apply(&mut device_nl)
            .ok()?;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &device_nl,
        &sim.run_for_inputs(&device_nl, golden.inputs(), &pi),
    );
    let vals = sim.run(golden, &pi);
    if Response::compare(golden, &vals, &device).matches() {
        return None;
    }
    Some((pi, device))
}

/// Every reported partial must replay: applying its corrections to the
/// base netlist leaves exactly `remaining_failures` failing vectors.
fn assert_partials_replay(
    base: &Netlist,
    pi: &PackedMatrix,
    reference: &Response,
    partials: &[PartialSolution],
) {
    let mut sim = Simulator::new();
    for partial in partials {
        let mut fixed = base.clone();
        for c in &partial.corrections {
            c.apply(&mut fixed).expect("partial tuple applies");
        }
        let vals = sim.run_for_inputs(&fixed, base.inputs(), pi);
        let remaining = Response::compare(&fixed, &vals, reference).num_failing();
        assert_eq!(
            remaining, partial.remaining_failures,
            "partial {:?} does not replay",
            partial.corrections
        );
    }
}

/// The acceptance scenario: a Table-1-style exhaustive stuck-at run on a
/// large generated circuit with a 50 ms deadline stops with
/// [`Verdict::DeadlineExceeded`], non-empty ranked partials, and a
/// checkpoint that — resumed without limits, after a JSON round trip —
/// reproduces the exact unlimited solution set.
#[test]
fn deadline_stops_with_checkpoint_and_resume_matches_unlimited() {
    let golden = dag(11, 300);
    let (pi, device) =
        stuck_at_workload(&golden, &[(17, false), (123, true)], 192, 11).expect("excited faults");
    let config = RectifyConfig::stuck_at_exhaustive(2);

    let unlimited = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
        .expect("well-formed inputs")
        .run();
    assert!(
        !unlimited.solutions.is_empty(),
        "reference run finds the injected tuple"
    );

    let mut limited_config = config.clone();
    limited_config.limits = RectifyLimits {
        deadline: Some(Duration::from_millis(50)),
        ..RectifyLimits::default()
    };
    let mut engine = Rectifier::new(golden.clone(), pi.clone(), device.clone(), limited_config)
        .expect("well-formed inputs");
    engine.set_checkpoint_meta("resilience/deadline", 11);
    let limited = engine.run();
    assert_eq!(limited.verdict, Verdict::DeadlineExceeded);
    assert!(limited.stats.truncated);
    assert!(
        !limited.partials.is_empty(),
        "ranked partials on a deadline stop"
    );
    assert_partials_replay(&golden, &pi, &device, &limited.partials);

    let checkpoint = limited
        .checkpoint
        .expect("deadline stop captures a checkpoint");
    assert_eq!(checkpoint.label, "resilience/deadline");
    assert_eq!(checkpoint.trial_seed, 11);
    let restored = Checkpoint::from_json(&checkpoint.to_json()).expect("JSON round trip");

    let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
        .expect("well-formed inputs")
        .resume(&restored)
        .expect("checkpoint accepted");
    assert_eq!(resumed.solutions, unlimited.solutions);
    assert_eq!(resumed.verdict, unlimited.verdict);
}

/// A total-node budget stops the search with [`Verdict::BudgetExhausted`]
/// and resumes losslessly, even across several checkpoint hops.
#[test]
fn node_budget_stops_and_chained_resume_matches_unlimited() {
    let golden = dag(5, 40);
    let (pi, device) =
        stuck_at_workload(&golden, &[(9, true), (23, false)], 128, 5).expect("excited faults");
    let config = RectifyConfig::dedc(2);

    let unlimited = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
        .expect("well-formed inputs")
        .run();

    // Hop 1: stop after a single evaluated node.
    let mut budget_config = config.clone();
    budget_config.limits.max_total_nodes = Some(1);
    let first = Rectifier::new(golden.clone(), pi.clone(), device.clone(), budget_config)
        .expect("well-formed inputs")
        .run();
    assert_eq!(first.verdict, Verdict::BudgetExhausted);
    assert_partials_replay(&golden, &pi, &device, &first.partials);
    let checkpoint = first.checkpoint.expect("budget stop captures a checkpoint");

    // Hop 2: resume with a slightly larger budget — may stop again.
    let mut next_config = config.clone();
    next_config.limits.max_total_nodes = Some(3);
    let second = Rectifier::new(golden.clone(), pi.clone(), device.clone(), next_config)
        .expect("well-formed inputs")
        .resume(&checkpoint)
        .expect("checkpoint accepted");
    let final_result = match second.checkpoint {
        Some(checkpoint) => {
            assert_eq!(second.verdict, Verdict::BudgetExhausted);
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .resume(&checkpoint)
                .expect("checkpoint accepted")
        }
        None => second,
    };
    assert_eq!(final_result.solutions, unlimited.solutions);
    assert_eq!(final_result.verdict, unlimited.verdict);
}

/// A checkpoint is rejected when replayed against a different netlist —
/// the fingerprint guard, not silent wrong answers.
#[test]
fn checkpoint_rejects_mismatched_netlist() {
    let golden = dag(5, 40);
    let (pi, device) =
        stuck_at_workload(&golden, &[(9, true), (23, false)], 128, 5).expect("excited faults");
    let mut config = RectifyConfig::dedc(2);
    config.limits.max_total_nodes = Some(1);
    let result = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
        .expect("well-formed inputs")
        .run();
    let checkpoint = result
        .checkpoint
        .expect("budget stop captures a checkpoint");

    let other = dag(6, 40);
    let (other_pi, other_device) =
        stuck_at_workload(&other, &[(9, true), (23, false)], 128, 6).expect("excited faults");
    let err = Rectifier::new(other, other_pi, other_device, RectifyConfig::dedc(2))
        .expect("well-formed inputs")
        .resume(&checkpoint);
    assert!(err.is_err(), "foreign checkpoint must be rejected");
}

/// Silences the default panic printer for the *injected* chaos panics
/// (they are expected and recovered); anything else still prints.
fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !message.contains("chaos: injected") {
                default(info);
            }
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 3 — cancellation safety: a token tripped after an
    /// arbitrary number of limit polls stops the engine at a clean plan
    /// boundary. Wherever the trip lands: the decision tree passes its
    /// invariant audit, every reported partial replays, and a captured
    /// checkpoint resumes to the uncancelled run's exact solution set.
    #[test]
    fn cancellation_at_any_step_leaves_clean_resumable_state(
        seed in 0u64..24,
        trip in 1u64..40,
    ) {
        let golden = dag(seed, 40);
        let picks = [(7 + seed as usize, true), (19 + 2 * seed as usize, false)];
        let Some((pi, device)) = stuck_at_workload(&golden, &picks, 128, seed) else {
            return Ok(()); // fault not excited on this draw
        };
        let config = RectifyConfig::dedc(2);
        let reference = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
            .expect("well-formed inputs")
            .run();

        let mut engine = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
            .expect("well-formed inputs");
        let token = engine.cancel_token();
        token.trip_after(trip);
        let result = engine.run();

        prop_assert_eq!(result.stats.audit_violations, 0, "tree invariants hold");
        assert_partials_replay(&golden, &pi, &device, &result.partials);
        if result.verdict == Verdict::Cancelled {
            let checkpoint = result.checkpoint.expect("cancel stop captures a checkpoint");
            let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .resume(&checkpoint)
                .expect("checkpoint accepted");
            prop_assert_eq!(&resumed.solutions, &reference.solutions);
        } else {
            // The trip count outlived the search: results are untouched.
            prop_assert_eq!(&result.solutions, &reference.solutions);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The chaos harness contract: with deterministic fault injection at
    /// rate 0.05 (worker panics, cached-matrix bit flips, spurious width
    /// errors) the recovered solution set is bit-identical to the
    /// chaos-off run, and *every* injected fault is accounted for as a
    /// recovery — panics in the worker-panic degradation event, matrix
    /// corruptions in the audit repair/fallback events.
    #[test]
    fn chaos_recovery_matches_chaos_off(
        seed in 0u64..16,
        chaos_seed in 0u64..64,
        jobs in 1usize..3,
    ) {
        silence_injected_panics();
        let golden = dag(seed, 40);
        let picks = [(11 + seed as usize, false), (29 + 3 * seed as usize, true)];
        let Some((pi, device)) = stuck_at_workload(&golden, &picks, 128, seed) else {
            return Ok(()); // fault not excited on this draw
        };
        let run = |chaos: Option<ChaosConfig>| {
            let mut config = RectifyConfig::dedc(2);
            config.jobs = jobs;
            config.chaos = chaos;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let clean = run(None);
        let chaotic = run(Some(ChaosConfig { seed: chaos_seed, rate: 0.05 }));

        prop_assert_eq!(&clean.solutions, &chaotic.solutions, "recovery is lossless");
        prop_assert!(clean.stats.chaos.is_none());
        let summary = chaotic.stats.chaos.expect("chaos summary recorded");

        // Injected panics were each recovered exactly once…
        prop_assert_eq!(chaotic.stats.parallel.panics_recovered, summary.panics);
        let panic_events: u64 = chaotic
            .stats
            .degradations
            .iter()
            .filter(|d| d.kind == DegradationKind::WorkerPanic)
            .map(|d| d.count)
            .sum();
        prop_assert_eq!(panic_events, summary.panics);
        // …and every matrix corruption was caught and repaired by the
        // resilient audit layer.
        let repair_events: u64 = chaotic
            .stats
            .degradations
            .iter()
            .filter(|d| {
                matches!(
                    d.kind,
                    DegradationKind::AuditRepair | DegradationKind::EvaluatorFallback
                )
            })
            .map(|d| d.count)
            .sum();
        prop_assert_eq!(repair_events, summary.bit_flips + summary.width_errors);
        // …and every sparse-mask summary flip was caught by the
        // pipeline's verify/repair pair.
        let sparse_repairs: u64 = chaotic
            .stats
            .degradations
            .iter()
            .filter(|d| d.kind == DegradationKind::SparseRepair)
            .map(|d| d.count)
            .sum();
        prop_assert_eq!(sparse_repairs, summary.summary_flips);
        if summary.total() > 0 {
            prop_assert!(
                !chaotic.stats.degradations.is_empty(),
                "injected faults surface as degradation events"
            );
            prop_assert_eq!(chaotic.verdict, Verdict::Degraded);
        }
    }

    /// Satellite — the dispatcher chaos contract: a chaos-armed
    /// *dispatched* run (worker panics, matrix bit flips, width errors,
    /// and the dispatcher-specific steal-site injections all enabled)
    /// recovers to the exact solution set of a chaos-off *serial* run,
    /// and the fault-to-degradation accounting stays 1:1 — wasted
    /// speculations and panicked workers included. Steal-site panics
    /// land in the same `panics` ledger as screening-worker panics, so
    /// the identity `panics_recovered == summary.panics` pins both
    /// boundaries at once.
    #[test]
    fn chaos_dispatched_recovery_matches_serial_chaos_off(
        seed in 0u64..12,
        chaos_seed in 0u64..48,
        jobs in 2usize..5,
    ) {
        silence_injected_panics();
        let golden = dag(seed ^ 0xD5, 40);
        let picks = [(11 + seed as usize, false), (29 + 3 * seed as usize, true)];
        let Some((pi, device)) = stuck_at_workload(&golden, &picks, 128, seed) else {
            return Ok(()); // fault not excited on this draw
        };
        let run = |dispatch: bool, jobs: usize, chaos: Option<ChaosConfig>| {
            let mut config = RectifyConfig::dedc(2);
            config.dispatch = dispatch;
            config.jobs = jobs;
            config.chaos = chaos;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let clean = run(false, 1, None);
        let chaotic = run(true, jobs, Some(ChaosConfig { seed: chaos_seed, rate: 0.05 }));

        prop_assert_eq!(&clean.solutions, &chaotic.solutions, "recovery is lossless");
        let summary = chaotic.stats.chaos.expect("chaos summary recorded");

        // Every injected panic — screening worker or dispatcher
        // steal-site — was recovered exactly once and surfaced as a
        // worker-panic degradation.
        prop_assert_eq!(chaotic.stats.parallel.panics_recovered, summary.panics);
        let panic_events: u64 = chaotic
            .stats
            .degradations
            .iter()
            .filter(|d| d.kind == DegradationKind::WorkerPanic)
            .map(|d| d.count)
            .sum();
        prop_assert_eq!(panic_events, summary.panics);
        // Matrix corruptions caught by the audit layer, in workers and
        // master alike.
        let repair_events: u64 = chaotic
            .stats
            .degradations
            .iter()
            .filter(|d| {
                matches!(
                    d.kind,
                    DegradationKind::AuditRepair | DegradationKind::EvaluatorFallback
                )
            })
            .map(|d| d.count)
            .sum();
        prop_assert_eq!(repair_events, summary.bit_flips + summary.width_errors);
        if summary.total() > 0 {
            prop_assert_eq!(chaotic.verdict, Verdict::Degraded);
        }
    }

    /// Satellite — checkpoint/resume under dispatch: a dispatched run
    /// stopped by a node budget captures a checkpoint (speculations are
    /// never part of it) that resumes — still dispatched — to the exact
    /// solution set of an unlimited serial run. The node budget is
    /// master-side deterministic, so the stop point itself is
    /// schedule-independent.
    #[test]
    fn dispatched_budget_stop_resumes_to_unlimited_solutions(
        seed in 0u64..12,
        budget in 1u64..6,
        jobs in 2usize..5,
    ) {
        let golden = dag(seed ^ 0xB4, 40);
        let picks = [(9 + seed as usize, true), (23 + 2 * seed as usize, false)];
        let Some((pi, device)) = stuck_at_workload(&golden, &picks, 128, seed) else {
            return Ok(()); // fault not excited on this draw
        };
        let mut config = RectifyConfig::dedc(2);
        config.dispatch = true;
        config.jobs = jobs;

        let unlimited = Rectifier::new(
            golden.clone(),
            pi.clone(),
            device.clone(),
            RectifyConfig::dedc(2),
        )
        .expect("well-formed inputs")
        .run();

        let mut limited_config = config.clone();
        limited_config.limits.max_total_nodes = Some(budget);
        let limited = Rectifier::new(golden.clone(), pi.clone(), device.clone(), limited_config)
            .expect("well-formed inputs")
            .run();
        match limited.checkpoint {
            Some(checkpoint) => {
                prop_assert_eq!(limited.verdict, Verdict::BudgetExhausted);
                assert_partials_replay(&golden, &pi, &device, &limited.partials);
                let restored =
                    Checkpoint::from_json(&checkpoint.to_json()).expect("JSON round trip");
                let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                    .expect("well-formed inputs")
                    .resume(&restored)
                    .expect("checkpoint accepted");
                prop_assert_eq!(&resumed.solutions, &unlimited.solutions);
                prop_assert_eq!(resumed.verdict, unlimited.verdict);
            }
            None => {
                // The budget outlived the search: results are untouched.
                prop_assert_eq!(&limited.solutions, &unlimited.solutions);
            }
        }
    }

    /// The sparse-kernel chaos contract: a chaos-armed *sparse* run —
    /// block-summary flips included in the injection mix — recovers to
    /// the exact solution set of an undisturbed *dense* run. This pins
    /// both halves at once: sparse ≡ dense on results, and summary
    /// corruption ≡ repaired (1:1 with `SparseRepair` degradations).
    #[test]
    fn chaos_sparse_recovery_matches_dense_chaos_off(
        seed in 0u64..16,
        chaos_seed in 0u64..64,
    ) {
        silence_injected_panics();
        let golden = dag(seed ^ 0x51, 40);
        let picks = [(13 + seed as usize, true), (31 + 2 * seed as usize, false)];
        let Some((pi, device)) = stuck_at_workload(&golden, &picks, 320, seed) else {
            return Ok(()); // fault not excited on this draw
        };
        let run = |sparse: bool, chaos: Option<ChaosConfig>| {
            let mut config = RectifyConfig::dedc(2);
            config.sparse = sparse;
            config.chaos = chaos;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let dense_clean = run(false, None);
        prop_assert_eq!(dense_clean.stats.sparse_rows, 0, "dense mode runs dense");
        prop_assert_eq!(dense_clean.stats.blocks_skipped, 0);
        let sparse_chaotic = run(true, Some(ChaosConfig { seed: chaos_seed, rate: 0.2 }));

        prop_assert_eq!(&dense_clean.solutions, &sparse_chaotic.solutions,
            "sparse recovery is lossless against the dense reference");
        let summary = sparse_chaotic.stats.chaos.expect("chaos summary recorded");
        let sparse_repairs: u64 = sparse_chaotic
            .stats
            .degradations
            .iter()
            .filter(|d| d.kind == DegradationKind::SparseRepair)
            .map(|d| d.count)
            .sum();
        prop_assert_eq!(sparse_repairs, summary.summary_flips);
    }
}

/// Tentpole satellite — chaos abstraction-map corruption: a hierarchical
/// run whose [`AbstractionMap`](incdx_netlist::AbstractionMap) is
/// corrupted by the chaos layer detects it via the structural
/// self-check, rebuilds from the base netlist, records an
/// `abstraction-repair` degradation, and still reports the chaos-off
/// run's exact solution set.
#[test]
fn chaos_corrupted_abstraction_map_recovers_as_degradation() {
    let golden = dag(21, 200);
    let (pi, device) = [33usize, 57, 90, 120, 150]
        .iter()
        .find_map(|&pick| stuck_at_workload(&golden, &[(pick, pick % 2 == 0)], 96, 21))
        .expect("at least one candidate site is excited");
    let mut config = RectifyConfig::stuck_at_exhaustive(1);
    config.hierarchical = true;
    let clean = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
        .expect("well-formed inputs")
        .run();
    assert!(!clean.solutions.is_empty(), "reference run finds the fault");
    config.chaos = Some(ChaosConfig { seed: 7, rate: 1.0 });
    let chaotic = Rectifier::new(golden, pi, device, config)
        .expect("well-formed inputs")
        .run();
    assert_eq!(chaotic.solutions, clean.solutions, "recovery is lossless");
    let repairs: u64 = chaotic
        .stats
        .degradations
        .iter()
        .filter(|d| d.kind == DegradationKind::AbstractionRepair)
        .map(|d| d.count)
        .sum();
    assert!(
        repairs >= 1,
        "map corruption must surface as a structured degradation: {:?}",
        chaotic.stats.degradations
    );
    let summary = chaotic.stats.chaos.expect("chaos tally recorded");
    assert_eq!(
        summary.map_corruptions, repairs,
        "1:1 fault-to-repair accounting"
    );
    assert_eq!(chaotic.verdict, Verdict::Degraded);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole — hierarchical checkpoint/resume: a node-budget stop in
    /// *any* hierarchical phase (abstract, restricted, or unrestricted,
    /// depending on where the budget lands) captures a phase-stamped
    /// checkpoint that — after a JSON round trip — resumes to the
    /// uninterrupted hierarchical run's exact solution set.
    #[test]
    fn hierarchical_budget_stop_resumes_to_uninterrupted(
        seed in 1u64..400,
        pick in 0usize..400,
        budget in 3u64..40,
    ) {
        let golden = dag(seed, 160);
        if let Some((pi, device)) = stuck_at_workload(&golden, &[(pick, pick % 2 == 0)], 96, seed) {
            let mut config = RectifyConfig::stuck_at_exhaustive(1);
            config.hierarchical = true;
            let uninterrupted =
                Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
                    .expect("well-formed inputs")
                    .run();
            let mut limited = config.clone();
            limited.limits = RectifyLimits {
                max_total_nodes: Some(budget),
                ..RectifyLimits::default()
            };
            let stopped = Rectifier::new(golden.clone(), pi.clone(), device.clone(), limited)
                .expect("well-formed inputs")
                .run();
            if let Some(checkpoint) = stopped.checkpoint {
                prop_assert!(
                    checkpoint.phase >= 1,
                    "hierarchical checkpoints are phase-stamped, got phase {}",
                    checkpoint.phase
                );
                let restored = Checkpoint::from_json(&checkpoint.to_json()).expect("round trip");
                let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                    .expect("well-formed inputs")
                    .resume(&restored)
                    .expect("checkpoint accepted");
                prop_assert_eq!(&resumed.solutions, &uninterrupted.solutions);
            }
        }
    }
}

/// Every reported solution must replay: applying its corrections to the
/// base netlist makes the response match the reference on all vectors.
fn assert_solutions_replay(
    base: &Netlist,
    pi: &PackedMatrix,
    reference: &Response,
    solutions: &[incdx_core::Solution],
) {
    let mut sim = Simulator::new();
    for solution in solutions {
        let mut fixed = base.clone();
        for c in &solution.corrections {
            c.apply(&mut fixed).expect("solution tuple applies");
        }
        let vals = sim.run_for_inputs(&fixed, base.inputs(), pi);
        assert!(
            Response::compare(&fixed, &vals, reference).matches(),
            "solution {:?} does not replay",
            solution.corrections
        );
    }
}

/// Satellite — concurrent cancellation: `cancel()` fired from another
/// thread races the engine's own `check_limits` polling (and, when
/// dispatch is armed, the dispatcher workers polling the same shared
/// token). Wherever the asynchronous flag lands, the run ends at a
/// clean plan boundary: the tree passes its invariant audit, partials
/// and solutions replay, and any captured checkpoint is accepted by a
/// fresh engine whose resumed results are equally clean. (Identity with
/// the uncancelled run is *not* asserted here — an asynchronous cancel
/// may cut a node's screening short, which is exactly the caveat
/// `Rectifier::resume` documents; the deterministic-trip property test
/// above covers identity.)
#[test]
fn concurrent_cancel_races_limit_polling_cleanly() {
    let golden = dag(11, 300);
    let (pi, device) =
        stuck_at_workload(&golden, &[(17, false), (123, true)], 192, 11).expect("excited faults");
    let mut cancelled_runs = 0;
    for dispatch in [false, true] {
        for delay_us in [0u64, 80, 400, 2_000, 8_000] {
            let mut config = RectifyConfig::stuck_at_exhaustive(2);
            config.dispatch = dispatch;
            config.jobs = if dispatch { 4 } else { 1 };
            let mut engine =
                Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
                    .expect("well-formed inputs");
            let token = engine.cancel_token();
            let canceller = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(delay_us));
                token.cancel();
            });
            let result = engine.run();
            canceller.join().expect("canceller thread joins");

            assert_eq!(
                result.stats.audit_violations, 0,
                "tree invariants hold under a racing cancel (dispatch={dispatch}, delay={delay_us}us)"
            );
            assert_partials_replay(&golden, &pi, &device, &result.partials);
            assert_solutions_replay(&golden, &pi, &device, &result.solutions);
            if result.verdict == Verdict::Cancelled {
                cancelled_runs += 1;
                let checkpoint = result
                    .checkpoint
                    .expect("cancel stop captures a checkpoint");
                let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                    .expect("well-formed inputs")
                    .resume(&checkpoint)
                    .expect("asynchronously captured checkpoint is still accepted");
                assert_eq!(resumed.stats.audit_violations, 0);
                assert_solutions_replay(&golden, &pi, &device, &resumed.solutions);
            }
        }
    }
    // On a loaded machine every racing cancel can miss (the run finishes
    // before the canceller thread is scheduled). Deterministic backstop:
    // trip the token mid-search so the cancelled path is always exercised.
    if cancelled_runs == 0 {
        let config = RectifyConfig::stuck_at_exhaustive(2);
        let mut engine = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
            .expect("well-formed inputs");
        engine.cancel_token().trip_after(3);
        let result = engine.run();
        assert_eq!(result.verdict, Verdict::Cancelled);
        cancelled_runs += 1;
        let checkpoint = result
            .checkpoint
            .expect("cancel stop captures a checkpoint");
        let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
            .expect("well-formed inputs")
            .resume(&checkpoint)
            .expect("checkpoint accepted");
        assert_eq!(resumed.stats.audit_violations, 0);
        assert_solutions_replay(&golden, &pi, &device, &resumed.solutions);
    }
    assert!(cancelled_runs > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite — mid-phase hierarchical cancellation: a deterministic
    /// token trip landing inside the hierarchical orchestrator stops
    /// the run with a phase-stamped checkpoint (phase >= 1) that
    /// resumes — through the same orchestrator — to the uninterrupted
    /// hierarchical run's exact solution set.
    #[test]
    fn hierarchical_mid_phase_cancel_resumes_identically(
        seed in 1u64..200,
        pick in 0usize..400,
        trip in 1u64..30,
    ) {
        let golden = dag(seed, 160);
        if let Some((pi, device)) = stuck_at_workload(&golden, &[(pick, pick % 2 == 0)], 96, seed) {
            let mut config = RectifyConfig::stuck_at_exhaustive(1);
            config.hierarchical = true;
            let uninterrupted =
                Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
                    .expect("well-formed inputs")
                    .run();
            let mut engine =
                Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
                    .expect("well-formed inputs");
            engine.cancel_token().trip_after(trip);
            let stopped = engine.run();
            if stopped.verdict == Verdict::Cancelled {
                let checkpoint = stopped.checkpoint.expect("cancel stop captures a checkpoint");
                prop_assert!(
                    checkpoint.phase >= 1,
                    "hierarchical cancel checkpoints are phase-stamped, got phase {}",
                    checkpoint.phase
                );
                let restored = Checkpoint::from_json(&checkpoint.to_json()).expect("round trip");
                let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                    .expect("well-formed inputs")
                    .resume(&restored)
                    .expect("checkpoint accepted");
                prop_assert_eq!(&resumed.solutions, &uninterrupted.solutions);
            } else {
                prop_assert_eq!(&stopped.solutions, &uninterrupted.solutions);
            }
        }
    }
}
