//! The refactor's contract, property-tested: the layered engine
//! (Traversal + Evaluator + CandidatePipeline) with its default policy is
//! **bit-identical** to the frozen pre-refactor monolith in `legacy/` —
//! same solutions in the same order and the same deterministic counters;
//! only wall-clock timers and worker telemetry may differ. A second
//! property pins the alternative traversal strategies to the same
//! *solution set* as the default on exhaustive diagnosis.

mod legacy;

use incdx_core::{Rectifier, RectifyConfig, RectifyResult, TraversalKind};
use incdx_fault::{Correction, StuckAt};
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::{GateId, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use legacy::LegacyRectifier;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 6,
            gates: 40,
            outputs: 4,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        },
        seed,
    )
}

/// Builds a diagnosable (golden, vectors, device) workload with `faults`
/// injected stuck-at faults, or `None` when the faults are not excited.
fn workload(seed: u64, pick: usize, faults: usize) -> Option<(Netlist, PackedMatrix, Response)> {
    let golden = dag(seed);
    let mut device_nl = golden.clone();
    for f in 0..faults {
        let line = GateId::from_index((pick + 13 * f) % golden.len());
        if StuckAt::new(line, (pick + f).is_multiple_of(2))
            .apply(&mut device_nl)
            .is_err()
        {
            return None;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00E0_5EED);
    let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &device_nl,
        &sim.run_for_inputs(&device_nl, golden.inputs(), &pi),
    );
    let vals = sim.run(&golden, &pi);
    if Response::compare(&golden, &vals, &device).matches() {
        return None; // not excited
    }
    Some((golden, pi, device))
}

/// Every counter that must agree between the legacy and refactored
/// engines — everything except wall-clock timers, worker telemetry, and
/// the new `traversal`/`evaluator` name fields.
fn assert_stats_identical(old: &RectifyResult, new: &RectifyResult) {
    assert_eq!(old.solutions, new.solutions, "solutions (and their order)");
    let (o, n) = (&old.stats, &new.stats);
    assert_eq!(o.nodes, n.nodes, "nodes");
    assert_eq!(
        o.expansions_skipped, n.expansions_skipped,
        "expansions_skipped"
    );
    assert_eq!(o.rounds, n.rounds, "rounds");
    assert_eq!(o.corrections_screened, n.corrections_screened, "screened");
    assert_eq!(
        o.corrections_qualified, n.corrections_qualified,
        "qualified"
    );
    assert_eq!(
        o.lines_rejected_h1, n.lines_rejected_h1,
        "lines_rejected_h1"
    );
    assert_eq!(
        o.corrections_rejected_h2, n.corrections_rejected_h2,
        "rejected_h2"
    );
    assert_eq!(
        o.corrections_rejected_h3, n.corrections_rejected_h3,
        "rejected_h3"
    );
    assert_eq!(o.words_simulated, n.words_simulated, "words_simulated");
    assert_eq!(
        o.events_propagated, n.events_propagated,
        "events_propagated"
    );
    assert_eq!(o.words_skipped, n.words_skipped, "words_skipped");
    assert_eq!(o.cone_cache_hits, n.cone_cache_hits, "cone_cache_hits");
    assert_eq!(
        o.matrix_cache_hits, n.matrix_cache_hits,
        "matrix_cache_hits"
    );
    assert_eq!(
        o.matrix_cache_evictions, n.matrix_cache_evictions,
        "matrix_cache_evictions"
    );
    assert_eq!(
        o.wire_sources_truncated, n.wire_sources_truncated,
        "wire_sources_truncated"
    );
    assert_eq!(
        o.candidates_truncated, n.candidates_truncated,
        "candidates_truncated"
    );
    assert_eq!(o.lines_truncated, n.lines_truncated, "lines_truncated");
    assert_eq!(
        o.deepest_ladder_level, n.deepest_ladder_level,
        "deepest_ladder_level"
    );
    assert_eq!(o.truncated, n.truncated, "truncated");
}

/// A solution set (order-insensitive): each solution as its sorted
/// correction list, the whole collection sorted.
fn solution_set(result: &RectifyResult) -> Vec<Vec<Correction>> {
    let mut set: Vec<Vec<Correction>> = result
        .solutions
        .iter()
        .map(|s| {
            let mut c = s.corrections.clone();
            c.sort();
            c
        })
        .collect();
    set.sort();
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The refactored default engine (RoundRobinBfs + Incremental) is
    /// bit-identical to the pre-refactor monolith across the config
    /// matrix the old engine supported: DEDC/exhaustive, incremental
    /// on/off, serial/parallel screening.
    #[test]
    fn refactored_default_is_bit_identical_to_legacy(
        seed in 0u64..60,
        pick in 0usize..1000,
        faults in 1usize..3,
    ) {
        let Some((golden, pi, device)) = workload(seed, pick, faults) else {
            return Ok(());
        };
        let mut configs = vec![
            RectifyConfig::dedc(2),
            RectifyConfig::stuck_at_exhaustive(faults),
        ];
        let mut parallel = RectifyConfig::dedc(2);
        parallel.jobs = 2;
        configs.push(parallel);
        let mut from_scratch = RectifyConfig::dedc(2);
        from_scratch.incremental = false;
        configs.push(from_scratch);
        for config in configs {
            let old = LegacyRectifier::new(
                golden.clone(),
                pi.clone(),
                device.clone(),
                config.clone(),
            )
            .run();
            let new = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed workload")
                .run();
            assert_stats_identical(&old, &new);
        }
    }

    /// On exhaustive diagnosis with untruncated budgets, every traversal
    /// strategy enumerates the same *solution set* as the paper-default
    /// round-robin BFS — they only differ in visit order.
    #[test]
    fn every_traversal_finds_the_same_solution_set(
        seed in 0u64..60,
        pick in 0usize..1000,
        faults in 1usize..3,
    ) {
        let Some((golden, pi, device)) = workload(seed, pick, faults) else {
            return Ok(());
        };
        let run = |kind: TraversalKind| {
            let mut config = RectifyConfig::stuck_at_exhaustive(faults);
            config.traversal = kind;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed workload")
                .run()
        };
        let reference = run(TraversalKind::RoundRobinBfs);
        if reference.stats.truncated {
            return Ok(()); // budget-cut search: set equality is not promised
        }
        let expected = solution_set(&reference);
        for kind in [
            TraversalKind::DepthFirst,
            TraversalKind::NaiveBfs,
            TraversalKind::BestFirst,
        ] {
            let result = run(kind);
            prop_assert!(!result.stats.truncated, "{kind:?} hit a budget");
            prop_assert_eq!(
                &expected,
                &solution_set(&result),
                "{:?} diverged from RoundRobinBfs",
                kind
            );
        }
    }
}
