//! The static-pruning contract, property-tested: arming
//! [`RectifyConfig::prune`] never changes *what* the engine finds.
//!
//! Two strengths of the promise, matching the two pruning rules:
//!
//! * **DEDC / first-solution mode** runs only the reachability rule,
//!   which path-trace marking already guarantees — so a pruned run is
//!   **bit-identical** to an unpruned one: same solutions in the same
//!   order, same node and simulation counters. The prune layer is a
//!   verified no-op there, visible only in `prune_checks`.
//! * **Exhaustive mode** additionally drops last-slot candidates whose
//!   observable changes provably miss a failing output. Dropping dead
//!   work can reorder the visit sequence, so the promise weakens to
//!   *solution-set* equality — across every traversal strategy, and
//!   composed with the hierarchical, dispatched, and sparse engines and
//!   with checkpoint/resume.
//!
//! A final chaos test corrupts the dominator table and pins the
//! recover-by-rebuild path (`analysis-repair` degradation, 1:1 with the
//! injected corruption count, lossless solutions).

use incdx_core::{
    ChaosConfig, Checkpoint, DegradationKind, Rectifier, RectifyConfig, RectifyResult,
    TraversalKind, Verdict,
};
use incdx_fault::{Correction, StuckAt};
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::{GateId, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 6,
            gates: 40,
            outputs: 4,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        },
        seed,
    )
}

/// Builds a diagnosable (golden, vectors, device) workload with `faults`
/// injected stuck-at faults, or `None` when the faults are not excited.
fn workload(seed: u64, pick: usize, faults: usize) -> Option<(Netlist, PackedMatrix, Response)> {
    let golden = dag(seed);
    let mut device_nl = golden.clone();
    for f in 0..faults {
        let line = GateId::from_index((pick + 13 * f) % golden.len());
        if StuckAt::new(line, (pick + f).is_multiple_of(2))
            .apply(&mut device_nl)
            .is_err()
        {
            return None;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00E0_5EED);
    let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &device_nl,
        &sim.run_for_inputs(&device_nl, golden.inputs(), &pi),
    );
    let vals = sim.run(&golden, &pi);
    if Response::compare(&golden, &vals, &device).matches() {
        return None; // not excited
    }
    Some((golden, pi, device))
}

/// A solution set (order-insensitive): each solution as its sorted
/// correction list, the whole collection sorted.
fn solution_set(result: &RectifyResult) -> Vec<Vec<Correction>> {
    let mut set: Vec<Vec<Correction>> = result
        .solutions
        .iter()
        .map(|s| {
            let mut c = s.corrections.clone();
            c.sort();
            c
        })
        .collect();
    set.sort();
    set
}

fn run(
    golden: &Netlist,
    pi: &PackedMatrix,
    device: &Response,
    config: RectifyConfig,
) -> RectifyResult {
    Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
        .expect("well-formed workload")
        .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhaustive diagnosis: for every traversal strategy, the pruned
    /// run enumerates exactly the unpruned run's solution set, the
    /// pruning layer demonstrably ran (`prune_checks > 0`), and the
    /// analysis telemetry appears if and only if pruning was armed.
    #[test]
    fn pruned_exhaustive_matches_unpruned_on_every_traversal(
        seed in 0u64..60,
        pick in 0usize..1000,
        faults in 1usize..3,
    ) {
        let Some((golden, pi, device)) = workload(seed, pick, faults) else {
            return Ok(());
        };
        for kind in TraversalKind::ALL {
            let go = |prune: bool| {
                let mut config = RectifyConfig::stuck_at_exhaustive(faults);
                config.traversal = kind;
                config.prune = prune;
                run(&golden, &pi, &device, config)
            };
            let plain = go(false);
            if plain.stats.truncated {
                return Ok(()); // budget-cut search: set equality is not promised
            }
            let pruned = go(true);
            prop_assert!(!pruned.stats.truncated, "{kind:?} pruned run hit a budget");
            prop_assert_eq!(
                &solution_set(&plain),
                &solution_set(&pruned),
                "{:?}: pruning changed the solution set",
                kind
            );
            prop_assert!(pruned.stats.prune_checks > 0, "{kind:?}: pruning never ran");
            prop_assert!(pruned.stats.analysis.is_some(), "armed run reports tables");
            prop_assert!(plain.stats.analysis.is_none(), "unarmed run reports none");
            prop_assert!(plain.stats.prune_checks == 0 && plain.stats.static_pruned == 0);
            // Exhaustive stuck-at runs carry the structural
            // fault-equivalence summary, pruned or not.
            let classes = pruned.stats.fault_classes.as_ref().expect("fault classes");
            prop_assert!(classes.classes >= 1 && !classes.representatives.is_empty());
            prop_assert_eq!(&plain.stats.fault_classes, &pruned.stats.fault_classes);
        }
    }

    /// DEDC / first-solution diagnosis: pruning is a verified no-op —
    /// the pruned run is bit-identical to the unpruned run (solutions in
    /// order, node/round/simulation counters), not merely set-equal, and
    /// the observability rule never fires (`static_pruned == 0`).
    #[test]
    fn dedc_pruning_is_bit_identical(
        seed in 0u64..60,
        pick in 0usize..1000,
        faults in 1usize..3,
    ) {
        let Some((golden, pi, device)) = workload(seed, pick, faults) else {
            return Ok(());
        };
        let go = |prune: bool| {
            let mut config = RectifyConfig::dedc(2);
            config.prune = prune;
            run(&golden, &pi, &device, config)
        };
        let plain = go(false);
        let pruned = go(true);
        prop_assert_eq!(&plain.solutions, &pruned.solutions, "solutions and order");
        prop_assert_eq!(plain.stats.nodes, pruned.stats.nodes, "nodes");
        prop_assert_eq!(plain.stats.rounds, pruned.stats.rounds, "rounds");
        prop_assert_eq!(
            plain.stats.corrections_screened,
            pruned.stats.corrections_screened,
            "screened"
        );
        prop_assert_eq!(
            plain.stats.words_simulated,
            pruned.stats.words_simulated,
            "words_simulated"
        );
        prop_assert_eq!(pruned.stats.static_pruned, 0, "rule 2 is exhaustive-only");
        prop_assert!(pruned.stats.prune_checks > 0, "rule 1 still ran and counted");
    }

    /// Composition: pruning stacked on the hierarchical, dispatched, and
    /// sparse engines still reproduces the flat unpruned solution set on
    /// exhaustive diagnosis.
    #[test]
    fn pruning_composes_with_hierarchical_dispatch_and_sparse(
        seed in 0u64..40,
        pick in 0usize..1000,
    ) {
        let Some((golden, pi, device)) = workload(seed, pick, 1) else {
            return Ok(());
        };
        let reference = run(&golden, &pi, &device, RectifyConfig::stuck_at_exhaustive(1));
        if reference.stats.truncated {
            return Ok(());
        }
        let expected = solution_set(&reference);
        let variants: [&dyn Fn(&mut RectifyConfig); 3] = [
            &|c| c.hierarchical = true,
            &|c| {
                c.dispatch = true;
                c.jobs = 2;
            },
            &|c| c.sparse = true,
        ];
        for (i, tweak) in variants.iter().enumerate() {
            let mut config = RectifyConfig::stuck_at_exhaustive(1);
            config.prune = true;
            tweak(&mut config);
            let result = run(&golden, &pi, &device, config);
            prop_assert!(!result.stats.truncated, "variant {i} hit a budget");
            prop_assert_eq!(
                &expected,
                &solution_set(&result),
                "variant {} diverged from the flat unpruned run",
                i
            );
        }
    }

    /// Checkpoint/resume under pruning: a pruned run stopped by a node
    /// budget resumes — still pruned, after a JSON round trip — to the
    /// exact solution set of the unlimited pruned run (itself pinned to
    /// the unpruned set by the properties above).
    #[test]
    fn pruned_budget_stop_resumes_to_unlimited(
        seed in 0u64..24,
        pick in 0usize..1000,
        budget in 1u64..6,
    ) {
        let Some((golden, pi, device)) = workload(seed, pick, 2) else {
            return Ok(());
        };
        let mut config = RectifyConfig::dedc(2);
        config.prune = true;
        let unlimited = run(&golden, &pi, &device, config.clone());

        let mut limited_config = config.clone();
        limited_config.limits.max_total_nodes = Some(budget);
        let limited = run(&golden, &pi, &device, limited_config);
        match limited.checkpoint {
            Some(checkpoint) => {
                prop_assert_eq!(limited.verdict, Verdict::BudgetExhausted);
                let restored =
                    Checkpoint::from_json(&checkpoint.to_json()).expect("JSON round trip");
                let resumed = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                    .expect("well-formed workload")
                    .resume(&restored)
                    .expect("checkpoint accepted");
                prop_assert_eq!(&resumed.solutions, &unlimited.solutions);
            }
            None => {
                // The budget outlived the search: results are untouched.
                prop_assert_eq!(&limited.solutions, &unlimited.solutions);
            }
        }
    }
}

/// Chaos dominator-table corruption: a pruned run whose freshly built
/// dominator table is corrupted by the chaos layer detects it via the
/// structural self-check, rebuilds from the base netlist, records an
/// `analysis-repair` degradation (1:1 with the corruption tally), and
/// still reports the chaos-off pruned run's exact solution set.
#[test]
fn chaos_corrupted_dominator_table_recovers_as_degradation() {
    let (golden, pi, device) = (0..8u64)
        .find_map(|seed| workload(seed, 7 + seed as usize, 1))
        .expect("at least one seed excites a fault");
    let mut config = RectifyConfig::stuck_at_exhaustive(1);
    config.prune = true;
    let clean = run(&golden, &pi, &device, config.clone());
    assert!(!clean.solutions.is_empty(), "reference run finds the fault");
    assert!(
        clean.stats.degradations.is_empty(),
        "clean run degrades nothing"
    );
    assert_eq!(
        clean
            .stats
            .analysis
            .as_ref()
            .expect("tables armed")
            .table_rebuilds,
        0
    );

    config.chaos = Some(ChaosConfig { seed: 3, rate: 1.0 });
    let chaotic = run(&golden, &pi, &device, config);
    assert_eq!(chaotic.solutions, clean.solutions, "recovery is lossless");
    let repairs: u64 = chaotic
        .stats
        .degradations
        .iter()
        .filter(|d| d.kind == DegradationKind::AnalysisRepair)
        .map(|d| d.count)
        .sum();
    assert!(
        repairs >= 1,
        "table corruption must surface as a structured degradation: {:?}",
        chaotic.stats.degradations
    );
    let summary = chaotic.stats.chaos.expect("chaos tally recorded");
    assert!(summary.table_corruptions >= 1, "the corruption site fired");
    assert_eq!(
        chaotic
            .stats
            .analysis
            .as_ref()
            .expect("tables armed")
            .table_rebuilds,
        repairs,
        "1:1 corruption-to-rebuild accounting"
    );
    assert_eq!(chaotic.verdict, Verdict::Degraded);
}
