//! Property tests of the engine's screening primitives and small
//! end-to-end invariants on random circuits.

use incdx_core::{
    correction_output_row, default_ladder, path_trace_counts, Rectifier, RectifyConfig,
    TraversalKind,
};
use incdx_fault::{enumerate_corrections, CorrectionModel, StuckAt};
use incdx_gen::{random_dag, RandomDagConfig};
use incdx_netlist::{GateId, Netlist};
use incdx_sim::{PackedMatrix, Response, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dag(seed: u64) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs: 6,
            gates: 40,
            outputs: 4,
            max_fanin: 3,
            xor_fraction: 0.1,
            window: 16,
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The local heuristic-2 evaluator agrees with apply-and-resimulate
    /// for every enumerable correction on random circuits.
    #[test]
    fn screening_evaluator_matches_full_resimulation(seed in 0u64..200, pick in 0usize..1000) {
        let n = dag(seed);
        let line = GateId::from_index(pick % n.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(n.inputs().len(), 96, &mut rng);
        let mut sim = Simulator::new();
        let vals = sim.run(&n, &pi);
        let sources: Vec<GateId> = n.ids().step_by(7).collect();
        for model in [CorrectionModel::StuckAt, CorrectionModel::DesignErrors] {
            for c in enumerate_corrections(&n, line, model, &sources) {
                let local = correction_output_row(&n, &vals, &c).expect("full-width matrix");
                let mut m = n.clone();
                let reference = match c.apply(&mut m) {
                    Ok(()) => {
                        let mv = sim.run_for_inputs(&m, n.inputs(), &pi);
                        let mut bits = mv.to_bits(c.line().index());
                        bits.mask_tail();
                        Some(bits)
                    }
                    Err(_) => None,
                };
                match (&local, &reference) {
                    (Some(l), Some(r)) => prop_assert_eq!(l, r, "{}", c),
                    (None, None) => {}
                    // The local evaluator may be *more* conservative than
                    // apply (it has no cycle information for wire adds),
                    // but never the other way around.
                    (None, Some(_)) => {}
                    (Some(_), None) => {
                        // apply failed (cycle) where local evaluation
                        // succeeded — permitted: the engine only feeds
                        // cycle-safe sources.
                    }
                }
            }
        }
    }

    /// Path-trace marks at least one line of every *single-fault* valid
    /// correction set — the reference [10] guarantee, checked against the
    /// injected site.
    #[test]
    fn path_trace_guarantee_single_fault(seed in 0u64..200, pick in 0usize..1000, v in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        let vals = sim.run(&golden, &pi);
        let resp = Response::compare(&golden, &vals, &device);
        if resp.num_failing() == 0 {
            return Ok(());
        }
        let counts = path_trace_counts(&golden, &vals, &resp, &device, 32);
        prop_assert!(counts[line.index()] > 0, "injected site must be marked");
        // Stronger: it is marked on EVERY traced failing vector for a
        // single fault.
        let traced = resp.failing_vectors().count_ones().min(32) as u32;
        prop_assert_eq!(counts[line.index()], traced);
    }

    /// Exhaustive single-fault diagnosis returns only verified tuples and
    /// always includes the injected fault.
    #[test]
    fn exhaustive_single_fault_is_sound_and_complete(seed in 0u64..60, pick in 0usize..1000, v in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(()); // fault not excited
            }
        }
        let result = Rectifier::new(
            golden.clone(),
            pi.clone(),
            device.clone(),
            RectifyConfig::stuck_at_exhaustive(1),
        )
        .expect("well-formed inputs")
        .run();
        prop_assert!(!result.solutions.is_empty());
        let mut saw_injected = false;
        for s in &result.solutions {
            let tuple = s.stuck_at_tuple().expect("stuck-at mode");
            prop_assert_eq!(tuple.len(), 1);
            if tuple[0] == fault {
                saw_injected = true;
            }
            // Soundness: the tuple explains the device.
            let mut modeled = golden.clone();
            tuple[0].apply(&mut modeled).expect("applies");
            let vals = sim.run_for_inputs(&modeled, golden.inputs(), &pi);
            prop_assert!(Response::compare(&modeled, &vals, &device).matches());
        }
        prop_assert!(saw_injected, "completeness: injected fault among answers");
    }

    /// Parallel screening is bit-identical to serial: the same problem
    /// solved with `jobs = 1` and `jobs = 4` yields the same solutions
    /// and the same deterministic counters. (Wall-clock timers and
    /// worker telemetry are excluded — they are the only permitted
    /// divergence.)
    #[test]
    fn parallel_screening_matches_serial(seed in 0u64..40, pick in 0usize..1000, v in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9A11);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(()); // fault not excited
            }
        }
        let run = |jobs: usize| {
            let mut config = RectifyConfig::dedc(2);
            config.jobs = jobs;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let serial = run(1);
        let parallel = run(4);
        prop_assert_eq!(&serial.solutions, &parallel.solutions);
        let (s, p) = (&serial.stats, &parallel.stats);
        prop_assert_eq!(s.nodes, p.nodes);
        prop_assert_eq!(s.rounds, p.rounds);
        prop_assert_eq!(s.corrections_screened, p.corrections_screened);
        prop_assert_eq!(s.corrections_qualified, p.corrections_qualified);
        prop_assert_eq!(s.corrections_rejected_h2, p.corrections_rejected_h2);
        prop_assert_eq!(s.corrections_rejected_h3, p.corrections_rejected_h3);
        prop_assert_eq!(s.lines_rejected_h1, p.lines_rejected_h1);
        prop_assert_eq!(s.words_simulated, p.words_simulated);
        prop_assert_eq!(s.deepest_ladder_level, p.deepest_ladder_level);
        prop_assert_eq!(s.truncated, p.truncated);
    }

    /// The event-driven incremental engine (matrix reuse + change-bounded
    /// cone propagation) is bit-identical to from-scratch resimulation:
    /// same solutions and same screening counters, whether screening runs
    /// serially or across all cores — only the simulation-effort counters
    /// (`words_simulated`, `events_propagated`, `words_skipped`) may
    /// differ between the two engines, and the incremental engine never
    /// simulates more words than the full one.
    #[test]
    fn incremental_engine_matches_from_scratch(seed in 0u64..40, pick in 0usize..1000, v in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1AC5);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(()); // fault not excited
            }
        }
        let run = |incremental: bool, jobs: usize| {
            let mut config = RectifyConfig::dedc(2);
            config.incremental = incremental;
            config.jobs = jobs;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let full = run(false, 1);
        let inc = run(true, 1);
        let inc_par = run(true, 0);
        prop_assert_eq!(&full.solutions, &inc.solutions);
        prop_assert_eq!(&full.solutions, &inc_par.solutions);
        for other in [&inc.stats, &inc_par.stats] {
            let f = &full.stats;
            prop_assert_eq!(f.nodes, other.nodes);
            prop_assert_eq!(f.rounds, other.rounds);
            prop_assert_eq!(f.corrections_screened, other.corrections_screened);
            prop_assert_eq!(f.corrections_qualified, other.corrections_qualified);
            prop_assert_eq!(f.corrections_rejected_h2, other.corrections_rejected_h2);
            prop_assert_eq!(f.corrections_rejected_h3, other.corrections_rejected_h3);
            prop_assert_eq!(f.lines_rejected_h1, other.lines_rejected_h1);
            prop_assert_eq!(f.expansions_skipped, other.expansions_skipped);
            prop_assert_eq!(f.deepest_ladder_level, other.deepest_ladder_level);
            prop_assert_eq!(f.truncated, other.truncated);
        }
        // The two incremental runs meter identical simulation effort
        // regardless of worker count…
        prop_assert_eq!(inc.stats.words_simulated, inc_par.stats.words_simulated);
        prop_assert_eq!(inc.stats.events_propagated, inc_par.stats.events_propagated);
        prop_assert_eq!(inc.stats.words_skipped, inc_par.stats.words_skipped);
        // …and never exceed the from-scratch engine's word count.
        prop_assert!(
            inc.stats.words_simulated <= full.stats.words_simulated,
            "incremental {} > full {}",
            inc.stats.words_simulated,
            full.stats.words_simulated
        );
        // The full engine propagates no events and skips no words.
        prop_assert_eq!(full.stats.events_propagated, 0);
        prop_assert_eq!(full.stats.words_skipped, 0);
    }

    /// The sparse kernel's engine-level equivalence contract: with wide
    /// vector matrices (several summary blocks per row) the sparse and
    /// dense engines return identical solutions, walk identical trees,
    /// and screen identical candidate sets — in both evaluation
    /// backends. Only the sparse work counters may differ.
    #[test]
    fn sparse_engine_matches_dense(
        seed in 0u64..30,
        pick in 0usize..1000,
        v in prop::bool::ANY,
        incremental in prop::bool::ANY,
    ) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5BA5);
        // 640 vectors = 10 words = 3 summary blocks per row.
        let pi = PackedMatrix::random(golden.inputs().len(), 640, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(()); // fault not excited
            }
        }
        let run = |sparse: bool| {
            let mut config = RectifyConfig::dedc(2);
            config.incremental = incremental;
            config.sparse = sparse;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let dense = run(false);
        let sparse = run(true);
        prop_assert_eq!(&dense.solutions, &sparse.solutions);
        let d = &dense.stats;
        let s = &sparse.stats;
        prop_assert_eq!(d.nodes, s.nodes);
        prop_assert_eq!(d.rounds, s.rounds);
        prop_assert_eq!(d.corrections_screened, s.corrections_screened);
        prop_assert_eq!(d.corrections_qualified, s.corrections_qualified);
        prop_assert_eq!(d.corrections_rejected_h2, s.corrections_rejected_h2);
        prop_assert_eq!(d.corrections_rejected_h3, s.corrections_rejected_h3);
        prop_assert_eq!(d.lines_rejected_h1, s.lines_rejected_h1);
        prop_assert_eq!(d.truncated, s.truncated);
        // A dense run never touches the sparse machinery.
        prop_assert_eq!(d.blocks_skipped, 0);
        prop_assert_eq!(d.sparse_rows, 0);
        prop_assert_eq!(d.dense_fallbacks, 0);
        // A sparse run on a multi-fault search either skipped blocks or
        // accounted an explicit dense fallback — never silently neither.
        prop_assert!(
            s.blocks_skipped > 0 || s.dense_fallbacks > 0 || s.sparse_rows > 0,
            "sparse mode must meter its decisions"
        );
    }

    /// The speculative dispatcher never perturbs the search: a
    /// dispatched run (`dispatch = true` with several workers) finds the
    /// same solutions and walks the same tree as the plain serial
    /// engine, under every traversal policy. Schedule-dependent effort
    /// counters (`words_simulated`, cache hits) are the only permitted
    /// divergence, and the run must carry dispatcher telemetry whose
    /// hit/miss ledger covers every speculable expansion.
    #[test]
    fn dispatched_search_matches_serial(
        seed in 0u64..24,
        pick in 0usize..1000,
        v in prop::bool::ANY,
        t in 0usize..4,
        jobs in 2usize..5,
    ) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15B);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(()); // fault not excited
            }
        }
        let run = |dispatch: bool, jobs: usize| {
            let mut config = RectifyConfig::dedc(2);
            config.traversal = TraversalKind::ALL[t];
            config.dispatch = dispatch;
            config.jobs = jobs;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let serial = run(false, 1);
        let dispatched = run(true, jobs);
        prop_assert_eq!(&serial.solutions, &dispatched.solutions);
        prop_assert_eq!(serial.verdict, dispatched.verdict);
        let (s, d) = (&serial.stats, &dispatched.stats);
        prop_assert_eq!(s.nodes, d.nodes);
        prop_assert_eq!(s.rounds, d.rounds);
        prop_assert_eq!(s.expansions_skipped, d.expansions_skipped);
        prop_assert_eq!(s.corrections_screened, d.corrections_screened);
        prop_assert_eq!(s.corrections_qualified, d.corrections_qualified);
        prop_assert_eq!(s.corrections_rejected_h2, d.corrections_rejected_h2);
        prop_assert_eq!(s.corrections_rejected_h3, d.corrections_rejected_h3);
        prop_assert_eq!(s.lines_rejected_h1, d.lines_rejected_h1);
        prop_assert_eq!(s.deepest_ladder_level, d.deepest_ladder_level);
        prop_assert_eq!(s.truncated, d.truncated);
        prop_assert!(s.dispatch.is_none(), "serial runs carry no dispatcher telemetry");
        let tel = d.dispatch.as_ref().expect("dispatched run records telemetry");
        prop_assert!(tel.workers >= 1);
        // Every non-root expansion consults the speculation cache
        // exactly once: hit or miss, never unaccounted. The root node
        // and dead-leaf re-visits are not speculable.
        prop_assert!(
            tel.speculative_hits + tel.speculative_misses <= d.nodes as u64,
            "hit/miss ledger ({} + {}) exceeds evaluated nodes ({})",
            tel.speculative_hits,
            tel.speculative_misses,
            d.nodes
        );
        // Executed work is conserved: everything a worker finished was
        // either consumed as a hit or retired as wasted speculation.
        prop_assert!(
            tel.tasks_executed >= tel.speculative_hits,
            "hits ({}) cannot exceed executed speculations ({})",
            tel.speculative_hits,
            tel.tasks_executed
        );
    }

    /// `dispatch = true` with `jobs = 1` never arms the dispatcher: the
    /// run is the legacy serial path, bit-identical counters included,
    /// and records no dispatcher telemetry.
    #[test]
    fn dispatch_flag_with_one_job_stays_serial(seed in 0u64..20, pick in 0usize..1000, v in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0D1);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(());
            }
        }
        let run = |dispatch: bool| {
            let mut config = RectifyConfig::dedc(2);
            config.dispatch = dispatch;
            config.jobs = 1;
            Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                .expect("well-formed inputs")
                .run()
        };
        let plain = run(false);
        let flagged = run(true);
        prop_assert_eq!(&plain.solutions, &flagged.solutions);
        let (p, f) = (&plain.stats, &flagged.stats);
        prop_assert_eq!(p.nodes, f.nodes);
        prop_assert_eq!(p.rounds, f.rounds);
        prop_assert_eq!(p.corrections_screened, f.corrections_screened);
        prop_assert_eq!(p.words_simulated, f.words_simulated);
        prop_assert!(f.dispatch.is_none(), "one job never arms the dispatcher");
    }

    /// `run_cone_events` leaves the value matrix bit-identical to a plain
    /// `run_cone` after an arbitrary single-line disturbance on a random
    /// circuit.
    #[test]
    fn event_driven_cone_resim_matches_plain(seed in 0u64..200, pick in 0usize..1000, flip in 0u64..u64::MAX) {
        let n = dag(seed);
        let stem = GateId::from_index(pick % n.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let pi = PackedMatrix::random(n.inputs().len(), 96, &mut rng);
        let mut sim = Simulator::new();
        let base = sim.run(&n, &pi);
        let cone = n.fanout_cone_sorted(stem);

        let mut plain = base.clone();
        plain.row_mut(stem.index())[0] ^= flip;
        sim.run_cone(&n, &mut plain, &cone);

        let mut events = base.clone();
        events.row_mut(stem.index())[0] ^= flip;
        let mut esim = Simulator::new();
        esim.run_cone_events(&n, &mut events, &cone);

        for id in n.ids() {
            prop_assert_eq!(
                plain.row(id.index()),
                events.row(id.index()),
                "row {} diverged",
                id.index()
            );
        }
    }

    /// The parameter ladder's monotonicity means any candidate admitted at
    /// level i is admitted at level i+1 (same node, looser screens).
    #[test]
    fn relaxing_the_ladder_never_shrinks_the_candidate_set(seed in 0u64..40, pick in 0usize..1000, v in prop::bool::ANY) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(());
            }
        }
        let mut config = RectifyConfig::dedc(1);
        config.model = CorrectionModel::StuckAt;
        config.max_candidates_per_node = usize::MAX;
        config.max_candidate_lines = usize::MAX;
        config.theorem_floor = false;
        let ladder = default_ladder();
        let mut prev: Option<Vec<incdx_fault::Correction>> = None;
        for level in &ladder {
            let mut rect = Rectifier::new(golden.clone(), pi.clone(), device.clone(), config.clone())
                .expect("well-formed inputs");
            let mut now: Vec<incdx_fault::Correction> = rect
                .rank_candidates(&[], level)
                .into_iter()
                .map(|rc| rc.correction)
                .collect();
            now.sort();
            if let Some(prev) = &prev {
                for c in prev {
                    prop_assert!(now.contains(c), "{c} lost when relaxing");
                }
            }
            prev = Some(now);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hierarchical mode reports exactly the flat solution set in
    /// exhaustive mode — across every traversal strategy, with and
    /// without multi-observation batching. The ISSUE-8 contract: the
    /// abstraction changes node counts, never answers.
    #[test]
    fn hierarchical_search_matches_flat_across_traversals(
        seed in 0u64..24,
        pick in 0usize..1000,
        v in prop::bool::ANY,
    ) {
        let golden = dag(seed);
        let line = GateId::from_index(pick % golden.len());
        let fault = StuckAt::new(line, v);
        let mut device_nl = golden.clone();
        if fault.apply(&mut device_nl).is_err() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA857);
        let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
        let mut sim = Simulator::new();
        let device = Response::capture(&device_nl, &sim.run_for_inputs(&device_nl, golden.inputs(), &pi));
        {
            let vals = sim.run(&golden, &pi);
            if Response::compare(&golden, &vals, &device).matches() {
                return Ok(()); // fault not excited
            }
        }
        let fingerprint = |r: &incdx_core::RectifyResult| {
            let mut v: Vec<Vec<incdx_fault::Correction>> = r
                .solutions
                .iter()
                .map(|s| {
                    let mut c = s.corrections.clone();
                    c.sort();
                    c
                })
                .collect();
            v.sort();
            v
        };
        for t in TraversalKind::ALL {
            let run = |hierarchical: bool, batch_obs: bool| {
                let mut config = RectifyConfig::stuck_at_exhaustive(1);
                config.traversal = t;
                config.hierarchical = hierarchical;
                config.batch_obs = batch_obs;
                Rectifier::new(golden.clone(), pi.clone(), device.clone(), config)
                    .expect("well-formed inputs")
                    .run()
            };
            let flat = run(false, false);
            let hier = run(true, false);
            let hier_batched = run(true, true);
            prop_assert_eq!(fingerprint(&flat), fingerprint(&hier), "traversal {}", t.as_str());
            prop_assert_eq!(
                fingerprint(&flat),
                fingerprint(&hier_batched),
                "batched traversal {}",
                t.as_str()
            );
            prop_assert_eq!(flat.verdict, hier.verdict);
        }
    }
}

/// Stats counters accumulate across rounds and respect the screening
/// invariant `screened == rejected_h2 + rejected_h3 + qualified` — a
/// multi-error run so the decision tree goes through several rounds
/// (each adding its own per-node deltas to the shared counters).
#[test]
fn stats_counters_accumulate_across_rounds() {
    let golden = dag(7);
    // Two stuck-at faults so the tree must expand past the root.
    let a = GateId::from_index(11 % golden.len());
    let b = GateId::from_index(29 % golden.len());
    let mut device_nl = golden.clone();
    StuckAt::new(a, false)
        .apply(&mut device_nl)
        .expect("apply a");
    StuckAt::new(b, true)
        .apply(&mut device_nl)
        .expect("apply b");
    let mut rng = StdRng::seed_from_u64(7);
    let pi = PackedMatrix::random(golden.inputs().len(), 128, &mut rng);
    let mut sim = Simulator::new();
    let device = Response::capture(
        &device_nl,
        &sim.run_for_inputs(&device_nl, golden.inputs(), &pi),
    );
    {
        let vals = sim.run(&golden, &pi);
        assert!(
            !Response::compare(&golden, &vals, &device).matches(),
            "faults must be excited for the test to exercise rounds"
        );
    }
    let result = Rectifier::new(golden.clone(), pi, device, RectifyConfig::dedc(2))
        .expect("well-formed inputs")
        .run();
    let s = &result.stats;
    assert!(s.rounds >= 1, "at least one round ran");
    assert!(s.nodes >= s.rounds, "every round evaluates ≥ 1 node");
    assert!(s.corrections_screened > 0);
    assert_eq!(
        s.corrections_screened,
        s.corrections_rejected_h2 + s.corrections_rejected_h3 + s.corrections_qualified,
        "every screened correction is rejected by h2, rejected by h3, or qualified"
    );
    assert!(s.words_simulated > 0, "simulation work is metered");
    assert!(
        s.evaluate_time >= s.screen_time,
        "screening is part of evaluation"
    );
    assert!(
        s.diagnosis_time >= s.path_trace_time,
        "path-trace is a component of diagnosis"
    );
}
