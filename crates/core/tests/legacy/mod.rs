//! A frozen copy of the pre-refactor monolithic engine (the 1610-line
//! `session.rs` before the Traversal/Evaluator/CandidatePipeline split),
//! kept as the reference implementation for the old-vs-new equivalence
//! property test in `refactor_equivalence.rs`.
//!
//! Only the default policy is retained (the paper's round-based
//! traversal); the DFS/BFS ablation arms were dropped because the
//! refactored engine's strategies are pinned against the *default*
//! behaviour. Everything else — node preparation, the incremental
//! matrix-cache path, heuristic 1, screening, stat accounting — is a
//! line-for-line copy, rebased onto the crate's public API.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use incdx_core::{
    correction_output_row_into, path_trace_counts, run_parallel_with, CorrectionScratch,
    ParamLevel, RankedCorrection, RectifyConfig, RectifyResult, RectifyStats, Solution, Verdict,
};
use incdx_fault::{enumerate_corrections, Correction, CorrectionAction, CorrectionModel};
use incdx_netlist::{ConeCache, ConeSet, GateId, GateKind, Netlist};
use incdx_sim::{xor_masked_count_ones, PackedBits, PackedMatrix, Response, Simulator};

// ---------------------------------------------------------------------
// Private copies of the old engine's internal types.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Node {
    corrections: Vec<Correction>,
    candidates: Vec<RankedCorrection>,
    next: usize,
}

impl Node {
    fn open(&self) -> bool {
        self.next < self.candidates.len()
    }
}

#[derive(Debug)]
struct CacheEntry {
    netlist: Netlist,
    vals: PackedMatrix,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug)]
struct NodeMatrixCache {
    entries: HashMap<Vec<Correction>, CacheEntry>,
    budget_bytes: usize,
    bytes: usize,
    tick: u64,
}

impl NodeMatrixCache {
    fn new(budget_bytes: usize) -> Self {
        NodeMatrixCache {
            entries: HashMap::new(),
            budget_bytes,
            bytes: 0,
            tick: 0,
        }
    }

    fn get_clone(&mut self, key: &[Correction]) -> Option<(Netlist, PackedMatrix)> {
        self.tick += 1;
        let e = self.entries.get_mut(key)?;
        e.last_used = self.tick;
        Some((e.netlist.clone(), e.vals.clone()))
    }

    fn insert(&mut self, key: Vec<Correction>, netlist: Netlist, vals: PackedMatrix) -> u64 {
        if self.budget_bytes == 0 {
            return 0;
        }
        let bytes = vals.rows() * vals.words_per_row() * 8 + netlist.len() * 64;
        self.tick += 1;
        let entry = CacheEntry {
            netlist,
            vals,
            bytes,
            last_used: self.tick,
        };
        if let Some(old) = self.entries.insert(key, entry) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        let mut evictions = 0;
        while self.bytes > self.budget_bytes && !self.entries.is_empty() {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let e = self.entries.remove(&lru).expect("present");
            self.bytes -= e.bytes;
            evictions += 1;
        }
        evictions
    }

    fn remove(&mut self, key: &[Correction]) {
        if let Some(e) = self.entries.remove(key) {
            self.bytes -= e.bytes;
        }
    }
}

enum NodeEval {
    Solved,
    Dead,
    Open { candidates: Vec<RankedCorrection> },
}

/// The pre-refactor engine, round-based traversal only.
#[derive(Debug)]
pub struct LegacyRectifier {
    base: Netlist,
    base_inputs: Vec<GateId>,
    vectors: PackedMatrix,
    spec: Response,
    config: RectifyConfig,
    sim: Simulator,
    stats: RectifyStats,
    base_cones: ConeCache,
    base_vals: Option<PackedMatrix>,
    matrix_cache: NodeMatrixCache,
}

impl LegacyRectifier {
    pub fn new(
        netlist: Netlist,
        vectors: PackedMatrix,
        spec: Response,
        config: RectifyConfig,
    ) -> Self {
        assert!(
            netlist.is_combinational(),
            "scan-convert sequential circuits first"
        );
        assert_eq!(vectors.rows(), netlist.inputs().len());
        assert_eq!(spec.po_values().rows(), netlist.outputs().len());
        assert_eq!(spec.po_values().num_vectors(), vectors.num_vectors());
        let base_inputs = netlist.inputs().to_vec();
        let base_cones = ConeCache::new(&netlist);
        let matrix_cache = NodeMatrixCache::new(if config.incremental {
            config.matrix_cache_bytes
        } else {
            0
        });
        LegacyRectifier {
            base: netlist,
            base_inputs,
            vectors,
            spec,
            config,
            sim: Simulator::new(),
            stats: RectifyStats::default(),
            base_cones,
            base_vals: None,
            matrix_cache,
        }
    }

    pub fn run(mut self) -> RectifyResult {
        let started = Instant::now();
        let ladder = self.config.ladder.clone();
        let mut solutions = Vec::new();
        for (level_idx, level) in ladder.iter().enumerate() {
            self.stats.deepest_ladder_level = level_idx;
            solutions = self.search_level(level, started);
            let out_of_time = self
                .config
                .time_limit
                .is_some_and(|limit| started.elapsed() > limit);
            if !solutions.is_empty() || out_of_time {
                break;
            }
        }
        if self.config.exhaustive {
            solutions = minimal_solutions(solutions);
        }
        RectifyResult {
            solutions,
            stats: self.stats,
            verdict: Verdict::default(),
            partials: Vec::new(),
            checkpoint: None,
        }
    }

    fn search_level(&mut self, level: &ParamLevel, started: Instant) -> Vec<Solution> {
        let mut solutions: Vec<Solution> = Vec::new();
        let mut seen_solutions: HashSet<Vec<Correction>> = HashSet::new();
        let mut visited: HashSet<Vec<Correction>> = HashSet::new();
        let mut nodes: Vec<Node> = Vec::new();
        let mut rounds_this_level = 0usize;

        let out_of_time = |s: &Self| {
            s.config
                .time_limit
                .is_some_and(|limit| started.elapsed() > limit)
        };

        match self.evaluate(&[], level, true) {
            NodeEval::Solved => {
                return vec![Solution {
                    corrections: vec![],
                }];
            }
            NodeEval::Dead => {
                return vec![];
            }
            NodeEval::Open { candidates } => {
                nodes.push(Node {
                    corrections: vec![],
                    candidates,
                    next: 0,
                });
            }
        }
        visited.insert(vec![]);

        let iteration_budget = self.config.max_rounds;
        'rounds: while rounds_this_level < iteration_budget {
            if nodes.iter().all(|n| !n.open()) {
                break;
            }
            rounds_this_level += 1;
            self.stats.rounds += 1;
            let plan: Vec<usize> = (0..nodes.len()).collect();
            for idx in plan {
                if out_of_time(self) {
                    self.stats.truncated = true;
                    break 'rounds;
                }
                if !nodes[idx].open() {
                    self.matrix_cache.remove(&nodes[idx].corrections);
                    continue;
                }
                let cand = nodes[idx].candidates[nodes[idx].next];
                nodes[idx].next += 1;
                let mut corrections = nodes[idx].corrections.clone();
                corrections.push(cand.correction);
                let mut canonical = corrections.clone();
                canonical.sort();
                if !visited.insert(canonical.clone()) {
                    continue;
                }
                if self.config.exhaustive
                    && seen_solutions
                        .iter()
                        .any(|s| s.iter().all(|c| canonical.contains(c)))
                {
                    continue;
                }
                let expandable = corrections.len() < self.config.max_corrections
                    && nodes.len() < self.config.max_nodes;
                match self.evaluate(&corrections, level, expandable) {
                    NodeEval::Solved => {
                        let mut key = corrections.clone();
                        key.sort();
                        if seen_solutions.insert(key) {
                            solutions.push(Solution { corrections });
                        }
                        if !self.config.exhaustive {
                            break 'rounds;
                        }
                        if solutions.len() >= self.config.max_solutions {
                            self.stats.truncated = true;
                            break 'rounds;
                        }
                    }
                    NodeEval::Dead => {}
                    NodeEval::Open { candidates } => {
                        if corrections.len() < self.config.max_corrections
                            && nodes.len() < self.config.max_nodes
                        {
                            nodes.push(Node {
                                corrections,
                                candidates,
                                next: 0,
                            });
                        } else if nodes.len() >= self.config.max_nodes {
                            self.stats.truncated = true;
                        }
                    }
                }
                if !nodes[idx].open() {
                    self.matrix_cache.remove(&nodes[idx].corrections);
                }
            }
        }
        if (self.config.exhaustive || solutions.is_empty())
            && rounds_this_level >= iteration_budget
            && nodes.iter().any(|n| n.open())
        {
            self.stats.truncated = true;
        }
        solutions
    }

    fn evaluate(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
        expand: bool,
    ) -> NodeEval {
        let t_eval = Instant::now();
        let outcome = self.evaluate_node(corrections, level, expand);
        self.stats.evaluate_time += t_eval.elapsed();
        outcome
    }

    fn evaluate_node(
        &mut self,
        corrections: &[Correction],
        level: &ParamLevel,
        expand: bool,
    ) -> NodeEval {
        self.stats.nodes += 1;
        let t0 = Instant::now();
        let words_before = self.sim.words_simulated();
        let events_before = self.sim.events_propagated();
        let skipped_before = self.sim.words_skipped();
        let prepared = self.prepare_node(corrections);
        self.stats.words_simulated += self.sim.words_simulated() - words_before;
        self.stats.events_propagated += self.sim.events_propagated() - events_before;
        self.stats.words_skipped += self.sim.words_skipped() - skipped_before;
        let Some((netlist, vals, mut cones)) = prepared else {
            self.stats.simulation_time += t0.elapsed();
            return NodeEval::Dead;
        };
        let response = Response::compare(&netlist, &vals, &self.spec);
        self.stats.simulation_time += t0.elapsed();
        let outcome = if response.matches() {
            NodeEval::Solved
        } else if corrections.len() >= self.config.max_corrections {
            NodeEval::Dead
        } else if !expand {
            self.stats.expansions_skipped += 1;
            NodeEval::Open {
                candidates: Vec::new(),
            }
        } else {
            self.expand_node(&netlist, &vals, &response, corrections, level, &mut cones)
        };
        self.stats.cone_cache_hits += cones.take_hits();
        if corrections.is_empty() {
            self.base_cones = cones;
        }
        if self.config.incremental
            && expand
            && corrections.len() < self.config.max_corrections
            && matches!(outcome, NodeEval::Open { .. })
        {
            self.stats.matrix_cache_evictions +=
                self.matrix_cache
                    .insert(corrections.to_vec(), netlist, vals);
        }
        outcome
    }

    fn prepare_node(
        &mut self,
        corrections: &[Correction],
    ) -> Option<(Netlist, PackedMatrix, ConeCache)> {
        if corrections.is_empty() {
            let netlist = self.base.clone();
            let vals = self.base_values();
            let cones = std::mem::take(&mut self.base_cones);
            return Some((netlist, vals, cones));
        }
        if self.config.incremental {
            let (prefix, last) = corrections.split_at(corrections.len() - 1);
            if let Some((mut netlist, mut vals)) = self.matrix_cache.get_clone(prefix) {
                self.stats.matrix_cache_hits += 1;
                if !self.apply_and_propagate(&mut netlist, &mut vals, &last[0]) {
                    return None;
                }
                let cones = ConeCache::new(&netlist);
                return Some((netlist, vals, cones));
            }
            let mut netlist = self.base.clone();
            let mut vals = self.base_values();
            for c in corrections {
                if !self.apply_and_propagate(&mut netlist, &mut vals, c) {
                    return None;
                }
            }
            let cones = ConeCache::new(&netlist);
            return Some((netlist, vals, cones));
        }
        let mut netlist = self.base.clone();
        for c in corrections {
            if c.apply(&mut netlist).is_err() {
                return None;
            }
        }
        let vals = self
            .sim
            .run_for_inputs(&netlist, &self.base_inputs, &self.vectors);
        let cones = ConeCache::new(&netlist);
        Some((netlist, vals, cones))
    }

    fn base_values(&mut self) -> PackedMatrix {
        if !self.config.incremental {
            return self
                .sim
                .run_for_inputs(&self.base, &self.base_inputs, &self.vectors);
        }
        if self.base_vals.is_none() {
            self.base_vals = Some(self.sim.run_for_inputs(
                &self.base,
                &self.base_inputs,
                &self.vectors,
            ));
        }
        self.base_vals.clone().expect("just filled")
    }

    fn apply_and_propagate(
        &mut self,
        netlist: &mut Netlist,
        vals: &mut PackedMatrix,
        c: &Correction,
    ) -> bool {
        let rows_before = netlist.len();
        if c.apply(netlist).is_err() {
            return false;
        }
        if netlist.len() > rows_before {
            vals.grow_rows(netlist.len());
            for idx in rows_before..netlist.len() {
                self.sim.eval_gate(netlist, GateId::from_index(idx), vals);
            }
        }
        self.sim.eval_gate(netlist, c.line(), vals);
        let cone = netlist.fanout_cone_sorted(c.line());
        self.sim.run_cone_events(netlist, vals, &cone);
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_node(
        &mut self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        corrections: &[Correction],
        level: &ParamLevel,
        cones: &mut ConeCache,
    ) -> NodeEval {
        let t1 = Instant::now();
        let counts = path_trace_counts(
            netlist,
            vals,
            response,
            &self.spec,
            self.config.path_trace_vector_cap,
        );
        let mut marked: Vec<GateId> = netlist.ids().filter(|id| counts[id.index()] > 0).collect();
        marked.sort_by_key(|id| std::cmp::Reverse(counts[id.index()]));
        let fraction = self.config.path_trace_fraction.max(level.promote);
        let mut take = ((marked.len() as f64 * fraction).ceil() as usize)
            .max(8)
            .min(marked.len());
        while take < marked.len()
            && counts[marked[take].index()] == counts[marked[take - 1].index()]
        {
            take += 1;
        }
        if take > self.config.max_candidate_lines {
            self.stats.lines_truncated += take - self.config.max_candidate_lines;
            take = self.config.max_candidate_lines;
        }
        let promoted = &marked[..take];
        self.stats.path_trace_time += t1.elapsed();
        let t_rank = Instant::now();
        let scored_lines: Vec<(GateId, f64)> = if level.h1 <= 0.0 {
            let max_count = promoted
                .first()
                .map(|l| counts[l.index()] as f64)
                .unwrap_or(1.0)
                .max(1.0);
            promoted
                .iter()
                .map(|&l| (l, counts[l.index()] as f64 / max_count))
                .collect()
        } else {
            self.heuristic1(netlist, vals, response, promoted, cones)
        };
        self.stats.rank_time += t_rank.elapsed();
        self.stats.diagnosis_time += t1.elapsed();

        let t2 = Instant::now();
        let n_err = response.num_failing();
        let nv = self.vectors.num_vectors();
        let n_corr = nv - n_err;
        let remaining = (self.config.max_corrections - corrections.len()).max(1);
        let h2_threshold = if self.config.theorem_floor {
            level.h2.min(1.0 / remaining as f64)
        } else {
            level.h2
        };
        let mut ranked = self.screen_level(
            netlist,
            vals,
            response,
            &scored_lines,
            level,
            h2_threshold,
            n_err,
            n_corr,
            cones,
        );
        let outcome = if ranked.is_empty() {
            NodeEval::Dead
        } else {
            ranked.sort_by(|a, b| b.rank.total_cmp(&a.rank));
            if ranked.len() > self.config.max_candidates_per_node {
                self.stats.candidates_truncated +=
                    ranked.len() - self.config.max_candidates_per_node;
                ranked.truncate(self.config.max_candidates_per_node);
            }
            NodeEval::Open { candidates: ranked }
        };
        self.stats.correction_time += t2.elapsed();
        outcome
    }

    fn heuristic1(
        &mut self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        lines: &[GateId],
        cones: &mut ConeCache,
    ) -> Vec<(GateId, f64)> {
        let err_words: Vec<u64> = response.failing_vectors().words().to_vec();
        let err_cols: Vec<u32> = err_words
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != 0)
            .map(|(w, _)| w as u32)
            .collect();
        let total_bad = response.mismatch_bits().max(1);
        let wpr = vals.words_per_row();
        let nv = vals.num_vectors();
        let spec = &self.spec;
        let incremental = self.config.incremental;
        let cone_refs: Vec<Arc<ConeSet>> = lines.iter().map(|&l| cones.get(netlist, l)).collect();
        let outcome = run_parallel_with(
            lines.len(),
            self.config.jobs,
            || (Simulator::new(), vals.clone(), Vec::<u64>::new()),
            |(sim, vals, saved), i| {
                let line = lines[i];
                let words_before = sim.words_simulated();
                let events_before = sim.events_propagated();
                let skipped_before = sim.words_skipped();
                let cone = &cone_refs[i];
                saved.clear();
                if incremental {
                    for &g in cone.sorted() {
                        let row = vals.row(g.index());
                        for &w in &err_cols {
                            saved.push(row[w as usize]);
                        }
                    }
                } else {
                    for &g in cone.sorted() {
                        saved.extend_from_slice(vals.row(g.index()));
                    }
                }
                {
                    let row = vals.row_mut(line.index());
                    for (w, &m) in row.iter_mut().zip(&err_words) {
                        *w ^= m;
                    }
                }
                if incremental {
                    sim.run_cone_events_cols(netlist, vals, cone.sorted(), &err_cols);
                } else {
                    sim.run_cone(netlist, vals, cone.sorted());
                }
                let mut rectified = 0usize;
                for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                    if !cone.contains(po) {
                        continue;
                    }
                    let after = vals.row(po.index());
                    let spec_row = spec.po_values().row(po_idx);
                    let before = response.po_values().row(po_idx);
                    for w in 0..wpr {
                        let was_bad = before[w] ^ spec_row[w];
                        let now_bad = after[w] ^ spec_row[w];
                        let mut fixed = was_bad & !now_bad;
                        if w == wpr - 1 {
                            fixed &= PackedBits::new(nv).tail_mask();
                        }
                        rectified += fixed.count_ones() as usize;
                    }
                }
                if incremental {
                    let nc = err_cols.len();
                    for (k, &g) in cone.sorted().iter().enumerate() {
                        let row = vals.row_mut(g.index());
                        for (j, &w) in err_cols.iter().enumerate() {
                            row[w as usize] = saved[k * nc + j];
                        }
                    }
                } else {
                    for (k, &g) in cone.sorted().iter().enumerate() {
                        vals.row_mut(g.index())
                            .copy_from_slice(&saved[k * wpr..(k + 1) * wpr]);
                    }
                }
                (
                    rectified,
                    sim.words_simulated() - words_before,
                    sim.events_propagated() - events_before,
                    sim.words_skipped() - skipped_before,
                )
            },
        );
        let mut scored = Vec::with_capacity(lines.len());
        for (i, (rectified, words, events, skipped)) in outcome.results.into_iter().enumerate() {
            self.stats.words_simulated += words;
            self.stats.events_propagated += events;
            self.stats.words_skipped += skipped;
            scored.push((lines[i], rectified as f64 / total_bad as f64));
        }
        self.stats.parallel.merge(&outcome.telemetry);
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored
    }

    #[allow(clippy::too_many_arguments)]
    fn screen_level(
        &mut self,
        netlist: &Netlist,
        vals: &PackedMatrix,
        response: &Response,
        scored_lines: &[(GateId, f64)],
        level: &ParamLevel,
        h2_threshold: f64,
        n_err: usize,
        n_corr: usize,
        cones: &mut ConeCache,
    ) -> Vec<RankedCorrection> {
        let t_screen = Instant::now();
        let nv = self.vectors.num_vectors();
        let wpr = vals.words_per_row();
        let tail = PackedBits::new(nv).tail_mask();
        let err_words: Vec<u64> = response.failing_vectors().words().to_vec();
        let v_ratio = n_err as f64 / nv as f64;
        let old_diff: Vec<Vec<u64>> = netlist
            .outputs()
            .iter()
            .enumerate()
            .map(|(po_idx, _)| {
                let got = response.po_values().row(po_idx);
                let want = self.spec.po_values().row(po_idx);
                got.iter().zip(want).map(|(a, b)| a ^ b).collect()
            })
            .collect();
        let keep = scored_lines
            .iter()
            .take_while(|&&(_, s)| s + 1e-12 >= level.h1)
            .count();
        self.stats.lines_rejected_h1 += scored_lines.len() - keep;
        let active = &scored_lines[..keep];
        let spec = &self.spec;
        let config = &self.config;
        let incremental = config.incremental;
        let cone_refs: Vec<Arc<ConeSet>> =
            active.iter().map(|&(l, _)| cones.get(netlist, l)).collect();
        let outcome = run_parallel_with(
            active.len(),
            config.jobs,
            || {
                (
                    Simulator::new(),
                    vals.clone(),
                    Vec::<u64>::new(),
                    CorrectionScratch::default(),
                    Vec::<u32>::new(),
                )
            },
            |(sim, vals, saved, scratch, cols), li| {
                let (line, _) = active[li];
                let cone = &cone_refs[li];
                let mut delta = ScreenDelta::default();
                let words_before = sim.words_simulated();
                let events_before = sim.events_propagated();
                let skipped_before = sim.words_skipped();
                let mut pass: Vec<(Correction, f64)> = Vec::new();
                let cur = vals.row(line.index()).to_vec();
                let qualifies = |complemented: usize| -> bool {
                    complemented as f64 / n_err.max(1) as f64 + 1e-12 >= h2_threshold
                };
                for corr in enumerate_corrections(netlist, line, config.model, &[]) {
                    delta.screened += 1;
                    let Ok(Some(new_row)) =
                        correction_output_row_into(netlist, vals, &corr, scratch)
                    else {
                        continue;
                    };
                    let complemented = xor_masked_count_ones(new_row, &cur, &err_words);
                    if qualifies(complemented) {
                        pass.push((corr, complemented as f64 / n_err.max(1) as f64));
                    }
                }
                if config.model == CorrectionModel::DesignErrors
                    && netlist.gate(line).kind().is_logic()
                {
                    let gate = netlist.gate(line);
                    let kind = gate.kind();
                    let fanins = gate.fanins().to_vec();
                    enum Family {
                        And,
                        Or,
                        Xor,
                    }
                    let (family, identity, invert) = match kind {
                        GateKind::And => (Family::And, !0u64, false),
                        GateKind::Nand => (Family::And, !0u64, true),
                        GateKind::Buf => (Family::And, !0u64, false),
                        GateKind::Not => (Family::And, !0u64, true),
                        GateKind::Or => (Family::Or, 0u64, false),
                        GateKind::Nor => (Family::Or, 0u64, true),
                        GateKind::Xor => (Family::Xor, 0u64, false),
                        GateKind::Xnor => (Family::Xor, 0u64, true),
                        _ => unreachable!("is_logic checked"),
                    };
                    let fold = |skip: Option<usize>| -> Vec<u64> {
                        let mut acc = vec![identity; wpr];
                        for (p, &f) in fanins.iter().enumerate() {
                            if Some(p) == skip {
                                continue;
                            }
                            let row = vals.row(f.index());
                            for (a, &r) in acc.iter_mut().zip(row) {
                                match family {
                                    Family::And => *a &= r,
                                    Family::Or => *a |= r,
                                    Family::Xor => *a ^= r,
                                }
                            }
                        }
                        acc
                    };
                    let core = fold(None);
                    let base_wo: Vec<Vec<u64>> = (0..fanins.len()).map(|p| fold(Some(p))).collect();
                    let combine = |base: &[u64], src: &[u64], w: usize| -> u64 {
                        let v = match family {
                            Family::And => base[w] & src[w],
                            Family::Or => base[w] | src[w],
                            Family::Xor => base[w] ^ src[w],
                        };
                        if invert {
                            !v
                        } else {
                            v
                        }
                    };
                    let can_add = matches!(
                        kind,
                        GateKind::And
                            | GateKind::Nand
                            | GateKind::Or
                            | GateKind::Nor
                            | GateKind::Xor
                            | GateKind::Xnor
                    );
                    let mut eligible: Vec<GateId> = netlist
                        .ids()
                        .filter(|&s| {
                            s != line
                                && !cone.contains(s)
                                && !matches!(
                                    netlist.gate(s).kind(),
                                    GateKind::Const0 | GateKind::Const1 | GateKind::Dff
                                )
                        })
                        .collect();
                    if config.wire_source_limit > 0 && eligible.len() > config.wire_source_limit {
                        delta.wire_sources_truncated += eligible.len() - config.wire_source_limit;
                        let stride = eligible.len().div_ceil(config.wire_source_limit);
                        eligible = eligible.into_iter().step_by(stride).collect();
                    }
                    for src in eligible {
                        let srow = vals.row(src.index());
                        if can_add && !fanins.contains(&src) {
                            delta.screened += 1;
                            let mut complemented = 0usize;
                            for w in 0..wpr {
                                let diff = (combine(&core, srow, w) ^ cur[w]) & err_words[w];
                                complemented += diff.count_ones() as usize;
                            }
                            if qualifies(complemented) {
                                pass.push((
                                    Correction::new(
                                        line,
                                        CorrectionAction::AddInput { source: src },
                                    ),
                                    complemented as f64 / n_err.max(1) as f64,
                                ));
                            }
                        }
                        for (p, &old) in fanins.iter().enumerate() {
                            if old == src {
                                continue;
                            }
                            delta.screened += 1;
                            let mut complemented = 0usize;
                            for w in 0..wpr {
                                let diff = (combine(&base_wo[p], srow, w) ^ cur[w]) & err_words[w];
                                complemented += diff.count_ones() as usize;
                            }
                            if qualifies(complemented) {
                                pass.push((
                                    Correction::new(
                                        line,
                                        CorrectionAction::ReplaceInput {
                                            port: p,
                                            source: src,
                                        },
                                    ),
                                    complemented as f64 / n_err.max(1) as f64,
                                ));
                            }
                        }
                        let insert_kinds: &[GateKind] = if level.h3 <= 0.85 {
                            &[GateKind::And, GateKind::Or, GateKind::Nand, GateKind::Nor]
                        } else {
                            &[GateKind::And, GateKind::Or]
                        };
                        for &k2 in insert_kinds {
                            delta.screened += 1;
                            let mut complemented = 0usize;
                            for w in 0..wpr {
                                let v = match k2 {
                                    GateKind::And => cur[w] & srow[w],
                                    GateKind::Or => cur[w] | srow[w],
                                    GateKind::Nand => !(cur[w] & srow[w]),
                                    _ => !(cur[w] | srow[w]),
                                };
                                let diff = (v ^ cur[w]) & err_words[w];
                                complemented += diff.count_ones() as usize;
                            }
                            if qualifies(complemented) {
                                pass.push((
                                    Correction::new(
                                        line,
                                        CorrectionAction::InsertGate {
                                            kind: k2,
                                            other: src,
                                        },
                                    ),
                                    complemented as f64 / n_err.max(1) as f64,
                                ));
                            }
                        }
                    }
                }
                delta.rejected_h2 = delta.screened - pass.len();
                let mut line_ranked: Vec<RankedCorrection> = Vec::new();
                for (corr, h2_fraction) in pass {
                    let Ok(Some(new_row)) =
                        correction_output_row_into(netlist, vals, &corr, scratch)
                    else {
                        delta.rejected_h3 += 1;
                        continue;
                    };
                    saved.clear();
                    if incremental {
                        cols.clear();
                        for (w, (&n, &c)) in new_row.iter().zip(&cur).enumerate() {
                            if n != c {
                                cols.push(w as u32);
                            }
                        }
                        for &g in cone.sorted() {
                            let row = vals.row(g.index());
                            for &w in cols.iter() {
                                saved.push(row[w as usize]);
                            }
                        }
                    } else {
                        for &g in cone.sorted() {
                            saved.extend_from_slice(vals.row(g.index()));
                        }
                    }
                    vals.row_mut(line.index()).copy_from_slice(new_row);
                    if incremental {
                        sim.run_cone_events_cols(netlist, vals, cone.sorted(), cols);
                    } else {
                        sim.run_cone(netlist, vals, cone.sorted());
                    }
                    let mut after_fail = vec![0u64; wpr];
                    for (po_idx, &po) in netlist.outputs().iter().enumerate() {
                        if cone.contains(po) {
                            let got = vals.row(po.index());
                            let want = spec.po_values().row(po_idx);
                            for w in 0..wpr {
                                after_fail[w] |= got[w] ^ want[w];
                            }
                        } else {
                            for w in 0..wpr {
                                after_fail[w] |= old_diff[po_idx][w];
                            }
                        }
                    }
                    let mut newly_err = 0usize;
                    let mut fixed = 0usize;
                    for w in 0..wpr {
                        let mut ne = after_fail[w] & !err_words[w];
                        let mut fx = err_words[w] & !after_fail[w];
                        if w == wpr - 1 {
                            ne &= tail;
                            fx &= tail;
                        }
                        newly_err += ne.count_ones() as usize;
                        fixed += fx.count_ones() as usize;
                    }
                    if incremental {
                        let nc = cols.len();
                        for (k, &g) in cone.sorted().iter().enumerate() {
                            let row = vals.row_mut(g.index());
                            for (j, &w) in cols.iter().enumerate() {
                                row[w as usize] = saved[k * nc + j];
                            }
                        }
                    } else {
                        for (k, &g) in cone.sorted().iter().enumerate() {
                            vals.row_mut(g.index())
                                .copy_from_slice(&saved[k * wpr..(k + 1) * wpr]);
                        }
                    }
                    let h3_score = 1.0 - newly_err as f64 / n_corr.max(1) as f64;
                    if h3_score + 1e-12 < level.h3 {
                        delta.rejected_h3 += 1;
                        continue;
                    }
                    delta.qualified += 1;
                    let corr_h1 = fixed as f64 / n_err.max(1) as f64;
                    line_ranked.push(RankedCorrection {
                        correction: corr,
                        rank: (1.0 - v_ratio) * h3_score + v_ratio * corr_h1,
                        h1_score: corr_h1,
                        h2_fraction,
                        h3_score,
                    });
                }
                delta.words = sim.words_simulated() - words_before;
                delta.events = sim.events_propagated() - events_before;
                delta.skipped = sim.words_skipped() - skipped_before;
                (line_ranked, delta)
            },
        );
        let mut ranked = Vec::new();
        for (line_ranked, delta) in outcome.results {
            ranked.extend(line_ranked);
            self.stats.corrections_screened += delta.screened;
            self.stats.corrections_qualified += delta.qualified;
            self.stats.corrections_rejected_h2 += delta.rejected_h2;
            self.stats.corrections_rejected_h3 += delta.rejected_h3;
            self.stats.wire_sources_truncated += delta.wire_sources_truncated;
            self.stats.words_simulated += delta.words;
            self.stats.events_propagated += delta.events;
            self.stats.words_skipped += delta.skipped;
        }
        self.stats.parallel.merge(&outcome.telemetry);
        self.stats.screen_time += t_screen.elapsed();
        ranked
    }
}

#[derive(Default)]
struct ScreenDelta {
    screened: usize,
    qualified: usize,
    rejected_h2: usize,
    rejected_h3: usize,
    wire_sources_truncated: usize,
    words: u64,
    events: u64,
    skipped: u64,
}

fn minimal_solutions(mut solutions: Vec<Solution>) -> Vec<Solution> {
    let sets: Vec<Vec<Correction>> = solutions
        .iter()
        .map(|s| {
            let mut v = s.corrections.clone();
            v.sort();
            v
        })
        .collect();
    let mut keep = vec![true; solutions.len()];
    for i in 0..sets.len() {
        for j in 0..sets.len() {
            if i != j
                && keep[i]
                && sets[j].len() < sets[i].len()
                && sets[j].iter().all(|c| sets[i].contains(c))
            {
                keep[i] = false;
            }
        }
    }
    let mut idx = 0;
    solutions.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    solutions
}
