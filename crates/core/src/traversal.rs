//! Traversal strategies: which open decision-tree node expands next.
//!
//! The paper's contribution (Fig. 2) is the round-based schedule of
//! [`RoundRobinBfs`]: every node present at the start of a *round*
//! applies its next-best candidate, so the tree grows in both depth and
//! breadth and at most doubles per round. [`DepthFirst`] and
//! [`NaiveBfs`] are the paper's strawmen ("a wrong decision at the top
//! may strand the search" / "excessive computation"); [`BestFirst`] is
//! a greedy policy ordering the frontier by the next candidate's
//! heuristic-1 score scaled down by the node's failing-vector count.
//!
//! Strategies only *schedule*; admission (depth/node caps) lives in
//! [`Tree`], and node evaluation is the engine's job — so every policy
//! explores the same node set semantics and differs purely in order.

use std::fmt::Debug;
use std::str::FromStr;

use crate::error::IncdxError;
use crate::tree::{Node, RankedCorrection, Tree};

/// A frontier-scheduling policy over the decision [`Tree`].
pub trait Traversal: Debug + Send {
    /// Stable name, reported in [`RectifyStats`](crate::RectifyStats)
    /// and the JSON reports.
    fn name(&self) -> &'static str;

    /// Iteration budget for one parameter-ladder level. The default is
    /// the single-step formula (each iteration expands one node, so the
    /// budget scales with the node cap); [`RoundRobinBfs`] overrides it
    /// to the round cap, since one of its iterations sweeps the whole
    /// frontier.
    fn iteration_budget(&self, max_rounds: usize, max_nodes: usize) -> usize {
        max_nodes
            .saturating_mul(4)
            .min(max_rounds.saturating_mul(1 << 12))
    }

    /// Fills `plan` with the node indices to expand this iteration, in
    /// order. `plan` arrives cleared. An empty plan ends the level.
    fn schedule(&mut self, tree: &Tree, plan: &mut Vec<usize>);

    /// The policy reduced to a frontier priority: how urgently should
    /// the child reached by applying `candidate` to `parent` be
    /// speculatively evaluated by the
    /// [dispatcher](crate::DispatchTelemetry)? Higher values pop first;
    /// exact ties break by ascending [`Prio::seq`](crate::Prio) — the
    /// push sequence number — so the pop order is deterministic for any
    /// push order. The default is breadth-first (shallower children
    /// first), matching both BFS policies.
    fn frontier_priority(&self, parent: &Node, candidate: &RankedCorrection) -> f64 {
        let _ = candidate;
        -((parent.depth() + 1) as f64)
    }

    /// Offers the policy a per-line SCOAP observability table (`CO`,
    /// indexed by `GateId::index` on the session's base netlist; lower
    /// means easier to observe). Called once by the engine right after
    /// the strategy is built. The default ignores it; [`BestFirst`]
    /// stores it and uses it as an infinitesimal tie-break so that among
    /// equally promising candidates the most observable line goes first.
    fn seed_observability(&mut self, co: &[u32]) {
        let _ = co;
    }
}

/// The paper's round-based schedule: every node present at the start of
/// the round, oldest first. Closed nodes are deliberately kept in the
/// plan — the engine uses those visits to release their cached
/// matrices, exactly as the pre-refactor loop did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinBfs;

impl Traversal for RoundRobinBfs {
    fn name(&self) -> &'static str {
        "round-robin-bfs"
    }

    fn iteration_budget(&self, max_rounds: usize, _max_nodes: usize) -> usize {
        max_rounds
    }

    fn schedule(&mut self, tree: &Tree, plan: &mut Vec<usize>) {
        plan.extend(0..tree.len());
    }
}

/// Greedy depth-first: always extend the most recently created open
/// node.
#[derive(Debug, Clone, Copy, Default)]
pub struct DepthFirst;

impl Traversal for DepthFirst {
    fn name(&self) -> &'static str {
        "depth-first"
    }

    fn schedule(&mut self, tree: &Tree, plan: &mut Vec<usize>) {
        plan.extend(tree.nodes().iter().rposition(Node::open));
    }

    fn frontier_priority(&self, parent: &Node, _candidate: &RankedCorrection) -> f64 {
        (parent.depth() + 1) as f64
    }
}

/// Naive breadth-first: exhaust every candidate of the oldest open node
/// before moving on.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBfs;

impl Traversal for NaiveBfs {
    fn name(&self) -> &'static str {
        "naive-bfs"
    }

    fn schedule(&mut self, tree: &Tree, plan: &mut Vec<usize>) {
        plan.extend(tree.nodes().iter().position(Node::open));
    }
}

/// Greedy best-first: expand the open node maximizing
/// `next-candidate h1 / failing-vector count` — prefer nodes whose best
/// untried correction promises the largest relative repair.
///
/// Tie-breaking is part of the contract, not an accident of iteration:
/// equal priorities (compared with the total order of
/// [`f64::total_cmp`], so NaN scores cannot poison the comparison)
/// resolve toward the *lowest node index*, i.e. stable creation order.
/// Node indices are the tree's push sequence numbers, so the scheduled
/// node is a deterministic function of the tree contents alone — the
/// property the dispatcher's frontier relies on to replay identically.
#[derive(Debug, Clone, Default)]
pub struct BestFirst {
    /// SCOAP `CO` per line of the base netlist (empty until seeded).
    co: Vec<u32>,
}

impl BestFirst {
    /// An infinitesimal bonus favouring more observable lines. Scaled to
    /// `1e-9` so it can only reorder candidates whose heuristic scores
    /// tie exactly (distinct h1 ratios on realistic tree sizes differ by
    /// far more); unseeded strategies add nothing, preserving pure
    /// creation-order tie-breaks.
    fn co_bonus(&self, line: incdx_netlist::GateId) -> f64 {
        if self.co.is_empty() {
            return 0.0;
        }
        // Lines beyond the seeded table (grown by InsertGate corrections)
        // get the best-case CO of 0: a neutral, deterministic choice.
        let co = self.co.get(line.index()).copied().unwrap_or(0);
        1e-9 / (1.0 + co as f64)
    }

    fn priority(&self, node: &Node) -> Option<f64> {
        let cand = node.peek()?;
        Some(cand.h1_score / node.failing.max(1) as f64 + self.co_bonus(cand.correction.line()))
    }
}

impl Traversal for BestFirst {
    fn name(&self) -> &'static str {
        "best-first"
    }

    fn schedule(&mut self, tree: &Tree, plan: &mut Vec<usize>) {
        let mut best: Option<(usize, f64)> = None;
        for (idx, node) in tree.nodes().iter().enumerate() {
            let Some(p) = self.priority(node) else {
                continue;
            };
            let better = match best {
                None => true,
                Some((best_idx, bp)) => match p.total_cmp(&bp) {
                    std::cmp::Ordering::Greater => true,
                    // Explicit stable order: on an exact tie the lower
                    // (older) sequence number wins. Iteration is
                    // ascending so `idx > best_idx` here, but spelling
                    // the rule out keeps it load-bearing, not
                    // incidental.
                    std::cmp::Ordering::Equal => idx < best_idx,
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((idx, p));
            }
        }
        plan.extend(best.map(|(idx, _)| idx));
    }

    fn frontier_priority(&self, parent: &Node, candidate: &RankedCorrection) -> f64 {
        candidate.h1_score / parent.failing.max(1) as f64
            + self.co_bonus(candidate.correction.line())
    }

    fn seed_observability(&mut self, co: &[u32]) {
        self.co = co.to_vec();
    }
}

/// Selector for the built-in traversal strategies — the value carried
/// by [`RectifyConfig::traversal`](crate::RectifyConfig::traversal) and
/// the `--traversal` CLI flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalKind {
    /// [`RoundRobinBfs`] — the paper's rounds (default).
    #[default]
    RoundRobinBfs,
    /// [`DepthFirst`].
    DepthFirst,
    /// [`NaiveBfs`].
    NaiveBfs,
    /// [`BestFirst`].
    BestFirst,
}

impl TraversalKind {
    /// Every built-in strategy, in presentation order.
    pub const ALL: [TraversalKind; 4] = [
        TraversalKind::RoundRobinBfs,
        TraversalKind::DepthFirst,
        TraversalKind::NaiveBfs,
        TraversalKind::BestFirst,
    ];

    /// The canonical CLI token (`bfs`, `dfs`, `naive-bfs`, `best-first`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraversalKind::RoundRobinBfs => "bfs",
            TraversalKind::DepthFirst => "dfs",
            TraversalKind::NaiveBfs => "naive-bfs",
            TraversalKind::BestFirst => "best-first",
        }
    }

    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn Traversal> {
        match self {
            TraversalKind::RoundRobinBfs => Box::new(RoundRobinBfs),
            TraversalKind::DepthFirst => Box::new(DepthFirst),
            TraversalKind::NaiveBfs => Box::new(NaiveBfs),
            TraversalKind::BestFirst => Box::new(BestFirst::default()),
        }
    }
}

impl FromStr for TraversalKind {
    type Err = IncdxError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bfs" | "rounds" | "round-robin-bfs" => Ok(TraversalKind::RoundRobinBfs),
            "dfs" | "depth-first" => Ok(TraversalKind::DepthFirst),
            "naive-bfs" => Ok(TraversalKind::NaiveBfs),
            "best-first" | "best" => Ok(TraversalKind::BestFirst),
            other => Err(IncdxError::UnknownTraversal(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RankedCorrection;
    use incdx_fault::{Correction, CorrectionAction};
    use incdx_netlist::GateId;

    fn rc(h1: f64) -> RankedCorrection {
        RankedCorrection {
            correction: Correction::new(GateId(0), CorrectionAction::SetConst(true)),
            rank: h1,
            h1_score: h1,
            h2_fraction: 1.0,
            h3_score: 1.0,
        }
    }

    fn tree_with(nodes: Vec<Node>) -> Tree {
        let mut t = Tree::new(8, 64);
        let mut it = nodes.into_iter();
        if let Some(root) = it.next() {
            t.push_root(root);
        }
        for n in it {
            assert!(matches!(t.push(n), crate::tree::PushOutcome::Added(_)));
        }
        t
    }

    fn child(k: u32, cands: Vec<RankedCorrection>, failing: usize) -> Node {
        Node::new(
            vec![Correction::new(
                GateId(k),
                CorrectionAction::SetConst(false),
            )],
            cands,
            failing,
        )
    }

    #[test]
    fn round_robin_schedules_every_node_including_closed() {
        let t = tree_with(vec![
            Node::new(vec![], vec![], 1), // closed
            child(1, vec![rc(0.2)], 1),
        ]);
        let mut plan = Vec::new();
        RoundRobinBfs.schedule(&t, &mut plan);
        assert_eq!(plan, vec![0, 1]);
        assert_eq!(RoundRobinBfs.iteration_budget(48, 1024), 48);
    }

    #[test]
    fn dfs_picks_newest_open_and_bfs_oldest_open() {
        let t = tree_with(vec![
            Node::new(vec![], vec![], 1), // closed root
            child(1, vec![rc(0.2)], 1),
            child(2, vec![rc(0.9)], 1),
        ]);
        let mut plan = Vec::new();
        DepthFirst.schedule(&t, &mut plan);
        assert_eq!(plan, vec![2]);
        plan.clear();
        NaiveBfs.schedule(&t, &mut plan);
        assert_eq!(plan, vec![1]);
    }

    #[test]
    fn best_first_maximizes_h1_over_failing() {
        let t = tree_with(vec![
            Node::new(vec![], vec![rc(0.5)], 10), // 0.05
            child(1, vec![rc(0.4)], 2),           // 0.2  <- winner
            child(2, vec![rc(0.6)], 4),           // 0.15
            child(3, vec![], 1),                  // closed
        ]);
        let mut plan = Vec::new();
        BestFirst::default().schedule(&t, &mut plan);
        assert_eq!(plan, vec![1]);
    }

    #[test]
    fn best_first_breaks_ties_toward_oldest() {
        let t = tree_with(vec![
            Node::new(vec![], vec![rc(0.4)], 2),
            child(1, vec![rc(0.4)], 2),
        ]);
        let mut plan = Vec::new();
        BestFirst::default().schedule(&t, &mut plan);
        assert_eq!(plan, vec![0]);
    }

    #[test]
    fn best_first_tie_break_is_stable_sequence_order() {
        // Regression: a frontier full of exactly-equal priorities must
        // schedule the lowest sequence number (creation order), for any
        // frontier size and regardless of where the tied class sits.
        for tied in 2..6usize {
            let mut nodes = vec![Node::new(vec![], vec![], 1)]; // closed root
            for k in 0..tied {
                nodes.push(child(k as u32 + 1, vec![rc(0.25)], 4));
            }
            let t = tree_with(nodes);
            let mut plan = Vec::new();
            BestFirst::default().schedule(&t, &mut plan);
            assert_eq!(plan, vec![1], "tied class of {tied} must pick oldest");
        }
        // NaN h1 scores take a fixed place in total_cmp's total order
        // (positive NaN above every real) instead of poisoning the
        // comparison — what the determinism contract needs is a total,
        // stable order, and the dispatcher's Prio uses the same one.
        let t = tree_with(vec![
            Node::new(vec![], vec![rc(f64::NAN)], 1),
            child(1, vec![rc(0.1)], 1),
        ]);
        let mut plan = Vec::new();
        BestFirst::default().schedule(&t, &mut plan);
        assert_eq!(plan, vec![0]);
    }

    #[test]
    fn seeded_best_first_breaks_exact_ties_by_observability() {
        fn rc_at(line: u32, h1: f64) -> RankedCorrection {
            RankedCorrection {
                correction: Correction::new(GateId(line), CorrectionAction::SetConst(true)),
                rank: h1,
                h1_score: h1,
                h2_fraction: 1.0,
                h3_score: 1.0,
            }
        }
        // Two open nodes with exactly tied h1/failing, differing only in
        // which line their next candidate touches.
        let t = tree_with(vec![
            Node::new(vec![], vec![rc_at(0, 0.25)], 4), // CO 9
            child(9, vec![rc_at(1, 0.25)], 4),          // CO 2 <- more observable
        ]);
        let mut seeded = BestFirst::default();
        seeded.seed_observability(&[9, 2]);
        let mut plan = Vec::new();
        seeded.schedule(&t, &mut plan);
        assert_eq!(plan, vec![1], "seeded CO must win exact ties");
        // Unseeded: pure creation order.
        let mut plan = Vec::new();
        BestFirst::default().schedule(&t, &mut plan);
        assert_eq!(plan, vec![0]);
        // The bonus never outweighs a real score difference.
        let t2 = tree_with(vec![
            Node::new(vec![], vec![rc_at(0, 0.26)], 4),
            child(9, vec![rc_at(1, 0.25)], 4),
        ]);
        let mut plan = Vec::new();
        seeded.schedule(&t2, &mut plan);
        assert_eq!(plan, vec![0]);
        // Frontier priorities see the same bonus.
        let parent = child(9, vec![rc_at(1, 0.5)], 4);
        assert!(
            seeded.frontier_priority(&parent, &rc_at(1, 0.8))
                > seeded.frontier_priority(&parent, &rc_at(0, 0.8))
        );
    }

    #[test]
    fn frontier_priorities_encode_the_policies() {
        let parent = child(1, vec![rc(0.5)], 4); // depth 1
        let cand = rc(0.8);
        // BFS policies: shallower children first (higher = sooner).
        assert_eq!(RoundRobinBfs.frontier_priority(&parent, &cand), -2.0);
        assert_eq!(NaiveBfs.frontier_priority(&parent, &cand), -2.0);
        // DFS: deeper children first.
        assert_eq!(DepthFirst.frontier_priority(&parent, &cand), 2.0);
        // Best-first: the candidate's own h1 per failing vector.
        assert_eq!(BestFirst::default().frontier_priority(&parent, &cand), 0.2);
    }

    #[test]
    fn single_step_budget_scales_with_node_cap() {
        assert_eq!(DepthFirst.iteration_budget(48, 1024), 4096);
        assert_eq!(BestFirst::default().iteration_budget(1, 1024), 4096);
        assert_eq!(NaiveBfs.iteration_budget(usize::MAX, 10), 40);
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for kind in TraversalKind::ALL {
            assert_eq!(kind.as_str().parse::<TraversalKind>().unwrap(), kind);
            assert!(!kind.build().name().is_empty());
        }
        assert_eq!(
            "rounds".parse::<TraversalKind>().unwrap(),
            TraversalKind::RoundRobinBfs
        );
        assert_eq!(
            "best".parse::<TraversalKind>().unwrap(),
            TraversalKind::BestFirst
        );
        assert!(matches!(
            "zigzag".parse::<TraversalKind>(),
            Err(IncdxError::UnknownTraversal(_))
        ));
    }
}
