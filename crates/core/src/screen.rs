//! Heuristic 2 support: the local, one-gate evaluation of a candidate
//! correction ("a single simulation step on the gate driving l and the
//! fan-ins to that gate", §3.2).
//!
//! Given the current value matrix, [`correction_output_row`] computes what
//! the corrected gate would output on *every* vector without touching the
//! netlist — the cheap test that, per the paper, "disqualifies the
//! majority of inappropriate corrections".

use incdx_fault::{Correction, CorrectionAction};
use incdx_netlist::{GateId, GateKind, Netlist};
use incdx_sim::{PackedBits, PackedMatrix};

fn row_of(vals: &PackedMatrix, id: GateId) -> Vec<u64> {
    vals.row(id.index()).to_vec()
}

fn eval_kind(kind: GateKind, rows: &[Vec<u64>], wpr: usize) -> Vec<u64> {
    let mut out = vec![0u64; wpr];
    match kind {
        GateKind::Const0 => {}
        GateKind::Const1 => out.fill(!0),
        GateKind::Buf => out.copy_from_slice(&rows[0]),
        GateKind::Not => {
            for (o, &w) in out.iter_mut().zip(&rows[0]) {
                *o = !w;
            }
        }
        GateKind::And | GateKind::Nand => {
            out.copy_from_slice(&rows[0]);
            for r in &rows[1..] {
                for (o, &w) in out.iter_mut().zip(r) {
                    *o &= w;
                }
            }
            if kind == GateKind::Nand {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Or | GateKind::Nor => {
            out.copy_from_slice(&rows[0]);
            for r in &rows[1..] {
                for (o, &w) in out.iter_mut().zip(r) {
                    *o |= w;
                }
            }
            if kind == GateKind::Nor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            out.copy_from_slice(&rows[0]);
            for r in &rows[1..] {
                for (o, &w) in out.iter_mut().zip(r) {
                    *o ^= w;
                }
            }
            if kind == GateKind::Xnor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Input | GateKind::Dff => unreachable!("screened corrections are combinational"),
    }
    out
}

/// Computes the packed output values the target line would take if
/// `correction` were applied, over all vectors of `vals` (the current
/// node's simulation matrix). Pure function of the fanin rows — the
/// netlist is not modified.
///
/// Returns `None` when the action is structurally inapplicable (bad port,
/// arity underflow) — such candidates are discarded upstream.
///
/// # Example
///
/// ```
/// use incdx_core::correction_output_row;
/// use incdx_fault::{Correction, CorrectionAction};
/// use incdx_netlist::{parse_bench, GateKind};
/// use incdx_sim::{PackedMatrix, Simulator};
///
/// let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let mut pi = PackedMatrix::new(2, 4);
/// pi.row_mut(0)[0] = 0b0101;
/// pi.row_mut(1)[0] = 0b0011;
/// let vals = Simulator::new().run(&n, &pi);
/// let y = n.find_by_name("y").unwrap();
/// let c = Correction::new(y, CorrectionAction::ChangeKind(GateKind::Or));
/// let row = correction_output_row(&n, &vals, &c).unwrap();
/// assert_eq!(row.words()[0] & 0xF, 0b0111); // OR instead of AND
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn correction_output_row(
    netlist: &Netlist,
    vals: &PackedMatrix,
    correction: &Correction,
) -> Option<PackedBits> {
    let wpr = vals.words_per_row();
    let line = correction.line();
    let gate = netlist.gate(line);
    let kind = gate.kind();
    let fanins = gate.fanins();
    let words = match correction.action() {
        CorrectionAction::SetConst(v) => {
            if v {
                vec![!0u64; wpr]
            } else {
                vec![0u64; wpr]
            }
        }
        CorrectionAction::ChangeKind(new_kind) => {
            let (lo, hi) = new_kind.arity();
            if fanins.len() < lo || fanins.len() > hi {
                return None;
            }
            let rows: Vec<Vec<u64>> = fanins.iter().map(|&f| row_of(vals, f)).collect();
            eval_kind(new_kind, &rows, wpr)
        }
        CorrectionAction::InvertInput { port } => {
            if port >= fanins.len() || !kind.is_logic() {
                return None;
            }
            let mut rows: Vec<Vec<u64>> = fanins.iter().map(|&f| row_of(vals, f)).collect();
            for w in rows[port].iter_mut() {
                *w = !*w;
            }
            eval_kind(kind, &rows, wpr)
        }
        CorrectionAction::RemoveInput { port } => {
            if port >= fanins.len() || fanins.len() <= kind.arity().0 || !kind.is_logic() {
                return None;
            }
            let rows: Vec<Vec<u64>> = fanins
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != port)
                .map(|(_, &f)| row_of(vals, f))
                .collect();
            eval_kind(kind, &rows, wpr)
        }
        CorrectionAction::AddInput { source } => {
            if !kind.is_logic() || source == line || fanins.contains(&source) {
                return None;
            }
            let mut rows: Vec<Vec<u64>> = fanins.iter().map(|&f| row_of(vals, f)).collect();
            rows.push(row_of(vals, source));
            eval_kind(kind, &rows, wpr)
        }
        CorrectionAction::ReplaceInput { port, source } => {
            if port >= fanins.len() || !kind.is_logic() || source == line {
                return None;
            }
            let mut rows: Vec<Vec<u64>> = fanins.iter().map(|&f| row_of(vals, f)).collect();
            rows[port] = row_of(vals, source);
            eval_kind(kind, &rows, wpr)
        }
        CorrectionAction::WireThrough { port } => {
            if port >= fanins.len() {
                return None;
            }
            row_of(vals, fanins[port])
        }
        CorrectionAction::InsertGate { kind: new_kind, other } => {
            if !kind.is_logic() || other == line {
                return None;
            }
            let rows: Vec<Vec<u64>> = fanins.iter().map(|&f| row_of(vals, f)).collect();
            let orig = eval_kind(kind, &rows, wpr);
            eval_kind(new_kind, &[orig, row_of(vals, other)], wpr)
        }
    };
    let mut bits = PackedBits::new(vals.num_vectors());
    bits.words_mut().copy_from_slice(&words);
    bits.mask_tail();
    Some(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;
    use incdx_sim::Simulator;

    /// Ground truth: actually apply the correction and resimulate.
    fn reference_row(n: &Netlist, pi: &PackedMatrix, c: &Correction) -> Option<PackedBits> {
        let mut m = n.clone();
        c.apply(&mut m).ok()?;
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&m, n.inputs(), pi);
        let mut bits = vals.to_bits(c.line().index());
        bits.mask_tail();
        Some(bits)
    }

    #[test]
    fn local_evaluation_matches_full_resimulation_for_every_action() {
        let n = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n",
        )
        .unwrap();
        let x = n.find_by_name("x").unwrap();
        let c = n.find_by_name("c").unwrap();
        let mut pi = PackedMatrix::new(3, 8);
        for v in 0..8 {
            for i in 0..3 {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let vals = Simulator::new().run(&n, &pi);
        let actions = [
            CorrectionAction::SetConst(false),
            CorrectionAction::SetConst(true),
            CorrectionAction::ChangeKind(GateKind::Nor),
            CorrectionAction::ChangeKind(GateKind::Xor),
            CorrectionAction::InvertInput { port: 0 },
            CorrectionAction::InvertInput { port: 1 },
            CorrectionAction::RemoveInput { port: 0 },
            CorrectionAction::AddInput { source: c },
            CorrectionAction::ReplaceInput { port: 1, source: c },
            CorrectionAction::WireThrough { port: 1 },
            CorrectionAction::InsertGate { kind: GateKind::Or, other: c },
        ];
        for action in actions {
            let corr = Correction::new(x, action);
            let local = correction_output_row(&n, &vals, &corr);
            let reference = reference_row(&n, &pi, &corr);
            match (local, reference) {
                (Some(l), Some(r)) => assert_eq!(l, r, "{corr}"),
                (None, None) => {}
                (l, r) => panic!("{corr}: local {l:?} vs reference {r:?}"),
            }
        }
    }

    #[test]
    fn inapplicable_actions_return_none() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let pi = PackedMatrix::new(1, 4);
        let vals = Simulator::new().run(&n, &pi);
        // Removing the only input of a NOT is not possible.
        assert!(correction_output_row(
            &n,
            &vals,
            &Correction::new(y, CorrectionAction::RemoveInput { port: 0 })
        )
        .is_none());
        // Bad port.
        assert!(correction_output_row(
            &n,
            &vals,
            &Correction::new(y, CorrectionAction::InvertInput { port: 5 })
        )
        .is_none());
        // Kind with incompatible arity.
        assert!(correction_output_row(
            &n,
            &vals,
            &Correction::new(y, CorrectionAction::ChangeKind(GateKind::Xor))
        )
        .is_none());
    }

    #[test]
    fn add_existing_input_is_rejected_like_apply() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let a = n.find_by_name("a").unwrap();
        let pi = PackedMatrix::new(2, 4);
        let vals = Simulator::new().run(&n, &pi);
        let corr = Correction::new(y, CorrectionAction::AddInput { source: a });
        assert!(correction_output_row(&n, &vals, &corr).is_none());
        assert!(corr.apply(&mut n.clone()).is_err());
    }
}
