//! Heuristic 2 support: the local, one-gate evaluation of a candidate
//! correction ("a single simulation step on the gate driving l and the
//! fan-ins to that gate", §3.2).
//!
//! Given the current value matrix, [`correction_output_row_into`] computes
//! what the corrected gate would output on *every* vector without touching
//! the netlist — the cheap test that, per the paper, "disqualifies the
//! majority of inappropriate corrections". It evaluates over borrowed row
//! slices into a caller-owned [`CorrectionScratch`], so the screening hot
//! loop allocates nothing per candidate; [`correction_output_row`] is the
//! allocating convenience wrapper.

use incdx_fault::{Correction, CorrectionAction};
use incdx_netlist::{GateId, GateKind, Netlist};
use incdx_sim::{PackedBits, PackedMatrix};

use crate::error::IncdxError;

/// Caller-owned scratch arena for [`correction_output_row_into`]: the
/// output row plus one temporary (inverted-input / inserted-gate
/// intermediate). Reused across candidates; sized lazily to the matrix's
/// word count.
#[derive(Debug, Default, Clone)]
pub struct CorrectionScratch {
    out: Vec<u64>,
    tmp: Vec<u64>,
}

/// Evaluates `kind` over an iterator of borrowed fanin rows into `out`
/// (whole words; tail bits are garbage-in/garbage-out). Returns `false`
/// when the kind needs a fanin and none was supplied, or the kind has no
/// evaluable function (primary input, state element) — callers treat
/// such candidates as inapplicable.
#[must_use]
fn eval_rows_into<'a, I>(kind: GateKind, mut rows: I, out: &mut [u64]) -> bool
where
    I: Iterator<Item = &'a [u64]>,
{
    match kind {
        GateKind::Const0 => out.fill(0),
        GateKind::Const1 => out.fill(!0),
        GateKind::Buf | GateKind::Not => {
            let Some(first) = rows.next() else {
                return false;
            };
            if kind == GateKind::Buf {
                out.copy_from_slice(first);
            } else {
                for (o, &w) in out.iter_mut().zip(first) {
                    *o = !w;
                }
            }
        }
        GateKind::And | GateKind::Nand => {
            let Some(first) = rows.next() else {
                return false;
            };
            out.copy_from_slice(first);
            for r in rows {
                for (o, &w) in out.iter_mut().zip(r) {
                    *o &= w;
                }
            }
            if kind == GateKind::Nand {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Or | GateKind::Nor => {
            let Some(first) = rows.next() else {
                return false;
            };
            out.copy_from_slice(first);
            for r in rows {
                for (o, &w) in out.iter_mut().zip(r) {
                    *o |= w;
                }
            }
            if kind == GateKind::Nor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let Some(first) = rows.next() else {
                return false;
            };
            out.copy_from_slice(first);
            for r in rows {
                for (o, &w) in out.iter_mut().zip(r) {
                    *o ^= w;
                }
            }
            if kind == GateKind::Xnor {
                for o in out.iter_mut() {
                    *o = !*o;
                }
            }
        }
        // Screened corrections target combinational logic only; a
        // candidate that somehow reaches here is inapplicable, not a
        // crash.
        GateKind::Input | GateKind::Dff => return false,
    }
    true
}

/// Allocation-free core of [`correction_output_row`]: computes the packed
/// output values the target line would take if `correction` were applied,
/// over all vectors of `vals`, into `scratch`. Pure function of the fanin
/// rows — the netlist is not modified.
///
/// Returns the raw output words, borrowed from `scratch`. Tail bits are
/// **not** masked — the row is word-for-word what a full resimulation of
/// the corrected circuit would store for the line, so it can be planted
/// directly into a value matrix; mask only when counting.
///
/// Returns `Ok(None)` when the action is structurally inapplicable (bad
/// port, arity underflow) — such candidates are discarded upstream.
///
/// # Errors
///
/// [`IncdxError::WidthMismatch`] when `vals` has fewer rows than the
/// netlist has gates — some fanin would have no row to read.
pub fn correction_output_row_into<'s>(
    netlist: &Netlist,
    vals: &PackedMatrix,
    correction: &Correction,
    scratch: &'s mut CorrectionScratch,
) -> Result<Option<&'s [u64]>, IncdxError> {
    if vals.rows() < netlist.len() {
        return Err(IncdxError::WidthMismatch {
            expected: netlist.len(),
            got: vals.rows(),
        });
    }
    let wpr = vals.words_per_row();
    let CorrectionScratch { out, tmp } = scratch;
    out.clear();
    out.resize(wpr, 0);
    let line = correction.line();
    let gate = netlist.gate(line);
    let kind = gate.kind();
    let fanins = gate.fanins();
    let row = |f: GateId| vals.row(f.index());
    match correction.action() {
        CorrectionAction::SetConst(v) => {
            if v {
                out.fill(!0);
            }
        }
        CorrectionAction::ChangeKind(new_kind) => {
            let (lo, hi) = new_kind.arity();
            if fanins.len() < lo || fanins.len() > hi {
                return Ok(None);
            }
            if !eval_rows_into(new_kind, fanins.iter().map(|&f| row(f)), out) {
                return Ok(None);
            }
        }
        CorrectionAction::InvertInput { port } => {
            if port >= fanins.len() || !kind.is_logic() {
                return Ok(None);
            }
            tmp.clear();
            tmp.extend(row(fanins[port]).iter().map(|&w| !w));
            let tmp = &*tmp;
            if !eval_rows_into(
                kind,
                fanins
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| if i == port { tmp } else { row(f) }),
                out,
            ) {
                return Ok(None);
            }
        }
        CorrectionAction::RemoveInput { port } => {
            if port >= fanins.len() || fanins.len() <= kind.arity().0 || !kind.is_logic() {
                return Ok(None);
            }
            if !eval_rows_into(
                kind,
                fanins
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != port)
                    .map(|(_, &f)| row(f)),
                out,
            ) {
                return Ok(None);
            }
        }
        CorrectionAction::AddInput { source } => {
            if !kind.is_logic() || source == line || fanins.contains(&source) {
                return Ok(None);
            }
            if !eval_rows_into(
                kind,
                fanins
                    .iter()
                    .map(|&f| row(f))
                    .chain(std::iter::once(row(source))),
                out,
            ) {
                return Ok(None);
            }
        }
        CorrectionAction::ReplaceInput { port, source } => {
            if port >= fanins.len() || !kind.is_logic() || source == line {
                return Ok(None);
            }
            if !eval_rows_into(
                kind,
                fanins
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| if i == port { row(source) } else { row(f) }),
                out,
            ) {
                return Ok(None);
            }
        }
        CorrectionAction::WireThrough { port } => {
            if port >= fanins.len() {
                return Ok(None);
            }
            out.copy_from_slice(row(fanins[port]));
        }
        CorrectionAction::InsertGate {
            kind: new_kind,
            other,
        } => {
            if !kind.is_logic() || other == line {
                return Ok(None);
            }
            tmp.clear();
            tmp.resize(wpr, 0);
            if !eval_rows_into(kind, fanins.iter().map(|&f| row(f)), tmp) {
                return Ok(None);
            }
            let tmp = &*tmp;
            if !eval_rows_into(new_kind, [tmp, row(other)].into_iter(), out) {
                return Ok(None);
            }
        }
    }
    Ok(Some(out))
}

/// Computes the packed output values the target line would take if
/// `correction` were applied, over all vectors of `vals` (the current
/// node's simulation matrix), as a tail-masked [`PackedBits`]. Allocating
/// wrapper around [`correction_output_row_into`].
///
/// Returns `Ok(None)` when the action is structurally inapplicable (bad
/// port, arity underflow) — such candidates are discarded upstream — and
/// [`IncdxError::WidthMismatch`] when `vals` is too narrow for the
/// netlist.
///
/// # Example
///
/// ```
/// use incdx_core::correction_output_row;
/// use incdx_fault::{Correction, CorrectionAction};
/// use incdx_netlist::{parse_bench, GateKind};
/// use incdx_sim::{PackedMatrix, Simulator};
///
/// let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let mut pi = PackedMatrix::new(2, 4);
/// pi.row_mut(0)[0] = 0b0101;
/// pi.row_mut(1)[0] = 0b0011;
/// let vals = Simulator::new().run(&n, &pi);
/// let y = n.find_by_name("y").unwrap();
/// let c = Correction::new(y, CorrectionAction::ChangeKind(GateKind::Or));
/// let row = correction_output_row(&n, &vals, &c)?.unwrap();
/// assert_eq!(row.words()[0] & 0xF, 0b0111); // OR instead of AND
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn correction_output_row(
    netlist: &Netlist,
    vals: &PackedMatrix,
    correction: &Correction,
) -> Result<Option<PackedBits>, IncdxError> {
    let mut scratch = CorrectionScratch::default();
    let Some(words) = correction_output_row_into(netlist, vals, correction, &mut scratch)? else {
        return Ok(None);
    };
    let mut bits = PackedBits::new(vals.num_vectors());
    bits.words_mut().copy_from_slice(words);
    bits.mask_tail();
    Ok(Some(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_netlist::parse_bench;
    use incdx_sim::Simulator;

    /// Ground truth: actually apply the correction and resimulate.
    fn reference_row(n: &Netlist, pi: &PackedMatrix, c: &Correction) -> Option<PackedBits> {
        let mut m = n.clone();
        c.apply(&mut m).ok()?;
        let mut sim = Simulator::new();
        let vals = sim.run_for_inputs(&m, n.inputs(), pi);
        let mut bits = vals.to_bits(c.line().index());
        bits.mask_tail();
        Some(bits)
    }

    #[test]
    fn local_evaluation_matches_full_resimulation_for_every_action() {
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, c)\n")
                .unwrap();
        let x = n.find_by_name("x").unwrap();
        let c = n.find_by_name("c").unwrap();
        let mut pi = PackedMatrix::new(3, 8);
        for v in 0..8 {
            for i in 0..3 {
                pi.set(i, v, v >> i & 1 == 1);
            }
        }
        let vals = Simulator::new().run(&n, &pi);
        let actions = [
            CorrectionAction::SetConst(false),
            CorrectionAction::SetConst(true),
            CorrectionAction::ChangeKind(GateKind::Nor),
            CorrectionAction::ChangeKind(GateKind::Xor),
            CorrectionAction::InvertInput { port: 0 },
            CorrectionAction::InvertInput { port: 1 },
            CorrectionAction::RemoveInput { port: 0 },
            CorrectionAction::AddInput { source: c },
            CorrectionAction::ReplaceInput { port: 1, source: c },
            CorrectionAction::WireThrough { port: 1 },
            CorrectionAction::InsertGate {
                kind: GateKind::Or,
                other: c,
            },
        ];
        // One scratch reused across all candidates, as in the hot loop.
        let mut scratch = CorrectionScratch::default();
        for action in actions {
            let corr = Correction::new(x, action);
            let local = correction_output_row(&n, &vals, &corr).unwrap();
            let reference = reference_row(&n, &pi, &corr);
            match (&local, &reference) {
                (Some(l), Some(r)) => assert_eq!(l, r, "{corr}"),
                (None, None) => {}
                (l, r) => panic!("{corr}: local {l:?} vs reference {r:?}"),
            }
            // The borrowed-slice path agrees with the wrapper modulo tail
            // masking.
            let raw = correction_output_row_into(&n, &vals, &corr, &mut scratch).unwrap();
            match (raw, local) {
                (Some(raw), Some(l)) => {
                    let mut bits = PackedBits::new(vals.num_vectors());
                    bits.words_mut().copy_from_slice(raw);
                    bits.mask_tail();
                    assert_eq!(bits, l, "{corr} (scratch path)");
                }
                (None, None) => {}
                (raw, l) => panic!("{corr}: scratch {raw:?} vs wrapper {l:?}"),
            }
        }
    }

    #[test]
    fn inapplicable_actions_return_none() {
        let n = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let pi = PackedMatrix::new(1, 4);
        let vals = Simulator::new().run(&n, &pi);
        // Removing the only input of a NOT is not possible.
        assert!(correction_output_row(
            &n,
            &vals,
            &Correction::new(y, CorrectionAction::RemoveInput { port: 0 })
        )
        .unwrap()
        .is_none());
        // Bad port.
        assert!(correction_output_row(
            &n,
            &vals,
            &Correction::new(y, CorrectionAction::InvertInput { port: 5 })
        )
        .unwrap()
        .is_none());
        // Kind with incompatible arity.
        assert!(correction_output_row(
            &n,
            &vals,
            &Correction::new(y, CorrectionAction::ChangeKind(GateKind::Xor))
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn narrow_matrix_is_a_width_mismatch_error() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        // One row fewer than the netlist has gates: y's fanins would have
        // no rows to read.
        let narrow = PackedMatrix::new(n.len() - 1, 8);
        let corr = Correction::new(y, CorrectionAction::SetConst(true));
        let mut scratch = CorrectionScratch::default();
        match correction_output_row_into(&n, &narrow, &corr, &mut scratch) {
            Err(IncdxError::WidthMismatch { expected, got }) => {
                assert_eq!(expected, n.len());
                assert_eq!(got, n.len() - 1);
            }
            other => panic!("expected WidthMismatch, got {other:?}"),
        }
        assert!(matches!(
            correction_output_row(&n, &narrow, &corr),
            Err(IncdxError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn add_existing_input_is_rejected_like_apply() {
        let n = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let y = n.find_by_name("y").unwrap();
        let a = n.find_by_name("a").unwrap();
        let pi = PackedMatrix::new(2, 4);
        let vals = Simulator::new().run(&n, &pi);
        let corr = Correction::new(y, CorrectionAction::AddInput { source: a });
        assert!(correction_output_row(&n, &vals, &corr).unwrap().is_none());
        assert!(corr.apply(&mut n.clone()).is_err());
    }
}
