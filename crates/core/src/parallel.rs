//! Deterministic parallel map over independent work items.
//!
//! This is the engine's only threading primitive: results are always
//! collected **in input-index order**, so callers that merge them
//! sequentially observe exactly the serial order regardless of worker
//! count or scheduling — the property the serial-vs-parallel
//! determinism guarantee of [`crate::Rectifier`] rests on.
//!
//! Built on `std::thread::scope` (no external dependencies). Work is
//! distributed by an atomic cursor, so uneven item costs self-balance.
//!
//! # Panic isolation
//!
//! This module is one of the workspace's two **sanctioned
//! `catch_unwind` boundaries** (enforced by the `panic_audit` lint;
//! the other is the dispatcher worker loop in `dispatch.rs`): a panicking task is
//! caught at the worker, the worker's scratch state is discarded and
//! rebuilt with `init()` (it may have been left inconsistent), and the
//! failed items are retried serially after the parallel section
//! drains. Only a *second* panic of the same item propagates. Every
//! recovery is counted in [`ParallelTelemetry::panics_recovered`] so
//! the engine can record the degradation and, after repeated failures,
//! fall back to serial screening.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Resolves a user-facing job count: `0` means all available cores,
/// and the result never exceeds `items` (no idle workers).
pub fn effective_jobs(jobs: usize, items: usize) -> usize {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        jobs
    };
    jobs.min(items.max(1))
}

/// Runs `f(i)` for `i in 0..n` across up to `jobs` worker threads
/// (`0` = available parallelism) and returns the results in index
/// order.
///
/// # Panics
///
/// Propagates the first worker panic.
///
/// # Example
///
/// ```
/// let squares = incdx_core::run_parallel(100, 4, |i| i * i);
/// assert_eq!(squares[7], 49);
/// ```
pub fn run_parallel<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_parallel_with(n, jobs, || (), move |(), i| f(i)).results
}

/// Utilization telemetry of one parallel section, reported by
/// [`run_parallel_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelTelemetry {
    /// Workers that actually ran (after clamping to the item count).
    pub workers: usize,
    /// Summed in-task time across all workers.
    pub busy: Duration,
    /// Wall-clock of the whole section.
    pub wall: Duration,
    /// Worker panics caught and recovered by the serial retry (each one
    /// is a first-attempt task failure whose retry succeeded).
    pub panics_recovered: u64,
}

impl ParallelTelemetry {
    /// Mean fraction of the section's wall-clock each worker spent in
    /// tasks (1.0 = perfectly utilized). Zero when nothing ran.
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.workers as f64;
        if denom > 0.0 {
            (self.busy.as_secs_f64() / denom).min(1.0)
        } else {
            0.0
        }
    }

    /// Accumulates another section's telemetry (workers becomes the
    /// max — sections run one at a time).
    pub fn merge(&mut self, other: &ParallelTelemetry) {
        self.workers = self.workers.max(other.workers);
        self.busy += other.busy;
        self.wall += other.wall;
        self.panics_recovered += other.panics_recovered;
    }
}

/// Results plus telemetry of a [`run_parallel_with`] section.
#[derive(Debug)]
pub struct ParallelOutcome<T> {
    /// Per-item results, in input-index order.
    pub results: Vec<T>,
    /// Worker-utilization telemetry.
    pub telemetry: ParallelTelemetry,
}

/// Like [`run_parallel`], but each worker thread first builds private
/// scratch state with `init` and every task gets `&mut` access to its
/// worker's state — the shape needed when tasks share expensive
/// read-only inputs but each needs its own mutable workspace (e.g. a
/// simulator plus a value-matrix copy).
///
/// With `jobs <= 1` everything runs inline on the calling thread with a
/// single `init()` — no thread is spawned, so the serial path stays
/// allocation- and synchronization-free.
///
/// Determinism: `f` runs against worker-private state and the results
/// are returned in index order, so the output is independent of worker
/// count provided `f` is a pure function of `(state-after-init, i)`.
///
/// # Panics
///
/// A task panic is caught at the worker boundary (see the module
/// docs): the worker's state is rebuilt with `init()` and the item is
/// retried serially with fresh state. Only a retry panic propagates,
/// so a deterministic (non-transient) task panic still surfaces.
pub fn run_parallel_with<S, T, I, F>(n: usize, jobs: usize, init: I, f: F) -> ParallelOutcome<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs, n);
    let started = Instant::now();
    if jobs <= 1 {
        let mut state = init();
        let mut recovered = 0u64;
        let t0 = Instant::now();
        let mut results: Vec<T> = Vec::with_capacity(n);
        for i in 0..n {
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                Ok(v) => results.push(v),
                Err(_) => {
                    // The panic may have left the scratch state
                    // inconsistent: rebuild before the retry.
                    recovered += 1;
                    state = init();
                    results.push(f(&mut state, i));
                }
            }
        }
        let busy = t0.elapsed();
        return ParallelOutcome {
            results,
            telemetry: ParallelTelemetry {
                workers: 1,
                busy,
                wall: started.elapsed(),
                panics_recovered: recovered,
            },
        };
    }
    let next = AtomicUsize::new(0);
    let busy_nanos = AtomicU64::new(0);
    // Each worker collects (index, value) pairs privately; the scope join
    // then scatters them back into index order. No locks, and a worker
    // panic surfaces via resume_unwind instead of poisoning shared state.
    type WorkerYield<T> = (Vec<(usize, T)>, Vec<usize>);
    let per_worker: Vec<WorkerYield<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut produced: Vec<(usize, T)> = Vec::new();
                    let mut failed: Vec<usize> = Vec::new();
                    let t0 = Instant::now();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
                            Ok(v) => produced.push((i, v)),
                            Err(_) => {
                                failed.push(i);
                                state = init();
                            }
                        }
                    }
                    busy_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    (produced, failed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(produced) => produced,
                // catch_unwind covers every task, so a join error means a
                // panic escaped the boundary (e.g. in a Drop); propagate.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut failed: Vec<usize> = Vec::new();
    for (produced, worker_failed) in per_worker {
        for (i, value) in produced {
            slots[i] = Some(value);
        }
        failed.extend(worker_failed);
    }
    // Serial retry of the failed chunk, in index order on fresh state.
    // Results stay deterministic because `f` is a pure function of
    // (state-after-init, i); a second panic of the same item propagates.
    let recovered = failed.len() as u64;
    if !failed.is_empty() {
        failed.sort_unstable();
        let mut state = init();
        for &i in &failed {
            slots[i] = Some(f(&mut state, i));
        }
    }
    let results = slots.into_iter().flatten().collect();
    ParallelOutcome {
        results,
        telemetry: ParallelTelemetry {
            workers: jobs,
            busy: Duration::from_nanos(busy_nanos.load(Ordering::Relaxed)),
            wall: started.elapsed(),
            panics_recovered: recovered,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_all_indices_in_order() {
        let out = run_parallel(100, 4, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn zero_jobs_means_auto() {
        assert_eq!(run_parallel(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<usize> = run_parallel(0, 2, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker counts its own tasks; the sum covers every index
        // exactly once.
        let outcome = run_parallel_with(
            64,
            4,
            || 0usize,
            |count, i| {
                *count += 1;
                (i, *count)
            },
        );
        assert_eq!(outcome.results.len(), 64);
        let mut indices: Vec<usize> = outcome.results.iter().map(|&(i, _)| i).collect();
        indices.dedup();
        assert_eq!(indices, (0..64).collect::<Vec<_>>());
        assert!(outcome.telemetry.workers <= 4);
        assert!(outcome.telemetry.utilization() <= 1.0);
    }

    #[test]
    fn serial_path_spawns_nothing_and_matches() {
        let serial = run_parallel_with(10, 1, || (), |(), i| i * 3);
        let parallel = run_parallel_with(10, 4, || (), |(), i| i * 3);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.telemetry.workers, 1);
    }

    #[test]
    fn effective_jobs_clamps() {
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 100), 2);
        assert!(effective_jobs(0, 100) >= 1);
        assert_eq!(effective_jobs(4, 0), 1);
    }

    #[test]
    fn more_jobs_than_items_clamps_and_completes() {
        let outcome = run_parallel_with(3, 16, || 0usize, |_, i| i + 1);
        assert_eq!(outcome.results, vec![1, 2, 3]);
        assert!(outcome.telemetry.workers <= 3, "no idle workers spawned");
    }

    #[test]
    fn zero_items_with_many_jobs_yields_empty_outcome() {
        let outcome = run_parallel_with(0, 8, || 0usize, |_, i| i);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.telemetry.workers, 1, "clamped to the serial path");
        assert_eq!(outcome.telemetry.panics_recovered, 0);
        // Satellite: merging an empty-outcome telemetry is a no-op on
        // counters but still folds in the (near-zero) wall time.
        let mut acc = ParallelTelemetry::default();
        acc.merge(&outcome.telemetry);
        assert_eq!(acc.workers, 1);
        assert_eq!(acc.panics_recovered, 0);
        assert!(acc.utilization() <= 1.0);
    }

    #[test]
    fn merge_accumulates_panic_recoveries() {
        let mut a = ParallelTelemetry {
            workers: 2,
            busy: Duration::from_millis(5),
            wall: Duration::from_millis(3),
            panics_recovered: 1,
        };
        let b = ParallelTelemetry {
            workers: 4,
            busy: Duration::from_millis(7),
            wall: Duration::from_millis(2),
            panics_recovered: 2,
        };
        a.merge(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.panics_recovered, 3);
        assert_eq!(a.busy, Duration::from_millis(12));
    }

    /// Installs a no-op panic hook for the duration of a test so the
    /// intentional panics don't spam the test log, restoring the
    /// previous hook afterwards.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn transient_panic_is_recovered_with_identical_results() {
        use std::sync::atomic::AtomicBool;
        for jobs in [1, 4] {
            let tripped = AtomicBool::new(false);
            let outcome = with_quiet_panics(|| {
                run_parallel_with(
                    32,
                    jobs,
                    || 0u64,
                    |acc, i| {
                        if i == 17 && !tripped.swap(true, Ordering::SeqCst) {
                            panic!("transient fault"); // panic-audit: allow
                        }
                        *acc += 1;
                        i * 10
                    },
                )
            });
            let expected: Vec<usize> = (0..32).map(|i| i * 10).collect();
            assert_eq!(outcome.results, expected, "jobs={jobs}");
            assert_eq!(outcome.telemetry.panics_recovered, 1, "jobs={jobs}");
        }
    }

    #[test]
    fn deterministic_panic_still_propagates() {
        for jobs in [1, 3] {
            let caught = with_quiet_panics(|| {
                std::panic::catch_unwind(|| {
                    run_parallel_with(
                        8,
                        jobs,
                        || (),
                        |(), i| {
                            if i == 5 {
                                panic!("hard fault"); // panic-audit: allow
                            }
                            i
                        },
                    )
                })
            });
            assert!(caught.is_err(), "retry panic must surface (jobs={jobs})");
        }
    }
}
