//! Structured observability report for a rectification run.
//!
//! [`RectifyReport`] flattens a [`RectifyResult`] plus run context into
//! a machine-readable record, printable as one line of JSON with
//! [`RectifyReport::to_json`]. The bench binaries emit one record per
//! run on stdout (prefixed lines starting with `{"report":"rectify"`),
//! so tables and reports can be post-processed with standard JSON
//! tooling. The schema is documented in `EXPERIMENTS.md`.

use std::fmt;
use std::time::Duration;

use crate::limits::Verdict;
use crate::session::{RectifyResult, RectifyStats};

/// A flattened, serializable view of one [`crate::Rectifier::run`].
///
/// # Example
///
/// ```
/// use incdx_core::{Rectifier, RectifyConfig, RectifyReport};
/// use incdx_netlist::parse_bench;
/// use incdx_sim::{PackedMatrix, Response, Simulator};
///
/// let spec_nl = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let design = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
/// let mut pi = PackedMatrix::new(2, 4);
/// pi.row_mut(0)[0] = 0b0101;
/// pi.row_mut(1)[0] = 0b0011;
/// let spec = Response::capture(&spec_nl, &Simulator::new().run(&spec_nl, &pi));
/// let config = RectifyConfig::dedc(1);
/// let jobs = config.jobs;
/// let result = Rectifier::new(design, pi, spec, config)?.run();
///
/// let report = RectifyReport::new("and-vs-or", jobs, &result);
/// let json = report.to_json();
/// assert!(json.starts_with(r#"{"report":"rectify","label":"and-vs-or""#));
/// assert!(!json.contains('\n'));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RectifyReport {
    /// Caller-chosen run label (circuit name, trial id, …).
    pub label: String,
    /// The [`crate::RectifyConfig::jobs`] setting the run used.
    pub jobs: usize,
    /// Number of valid correction tuples found.
    pub solutions: usize,
    /// Distinct lines over all solutions ([`RectifyResult::distinct_sites`]).
    pub distinct_sites: usize,
    /// Typed run outcome ([`RectifyResult::verdict`]).
    pub verdict: Verdict,
    /// Number of ranked partial solutions reported
    /// ([`RectifyResult::partials`]).
    pub partials: usize,
    /// The run's full counter/timer set.
    pub stats: RectifyStats,
}

impl RectifyReport {
    /// Builds a report from a finished run.
    pub fn new(label: &str, jobs: usize, result: &RectifyResult) -> Self {
        Self::from_parts(
            label,
            jobs,
            result.solutions.len(),
            result.distinct_sites(),
            result.verdict,
            result.partials.len(),
            result.stats.clone(),
        )
    }

    /// Builds a report from already-extracted pieces, for harnesses that
    /// summarize a [`RectifyResult`] and drop it before reporting.
    pub fn from_parts(
        label: &str,
        jobs: usize,
        solutions: usize,
        distinct_sites: usize,
        verdict: Verdict,
        partials: usize,
        stats: RectifyStats,
    ) -> Self {
        RectifyReport {
            label: label.to_string(),
            jobs,
            solutions,
            distinct_sites,
            verdict,
            partials,
            stats,
        }
    }

    /// Renders the report as a single line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::with_capacity(640);
        out.push_str("{\"report\":\"rectify\"");
        out.push_str(&format!(",\"label\":\"{}\"", escape_json(&self.label)));
        out.push_str(&format!(",\"traversal\":\"{}\"", escape_json(s.traversal)));
        out.push_str(&format!(",\"evaluator\":\"{}\"", escape_json(s.evaluator)));
        out.push_str(&format!(",\"jobs\":{}", self.jobs));
        out.push_str(&format!(",\"solutions\":{}", self.solutions));
        out.push_str(&format!(",\"distinct_sites\":{}", self.distinct_sites));
        out.push_str(&format!(",\"verdict\":\"{}\"", self.verdict.tag()));
        if let Verdict::Partial {
            best_remaining_failures,
        } = self.verdict
        {
            out.push_str(&format!(
                ",\"best_remaining_failures\":{best_remaining_failures}"
            ));
        }
        out.push_str(&format!(",\"partials\":{}", self.partials));
        out.push_str(&format!(",\"nodes\":{}", s.nodes));
        out.push_str(&format!(",\"expansions_skipped\":{}", s.expansions_skipped));
        out.push_str(&format!(",\"rounds\":{}", s.rounds));
        out.push_str(&format!(
            ",\"deepest_ladder_level\":{}",
            s.deepest_ladder_level
        ));
        out.push_str(&format!(",\"truncated\":{}", s.truncated));
        out.push_str(&format!(
            ",\"time\":{{\"evaluate\":{},\"simulation\":{},\"path_trace\":{},\"rank\":{},\"screen\":{},\"prune\":{},\"diagnosis\":{},\"correction\":{}}}",
            secs(s.evaluate_time),
            secs(s.simulation_time),
            secs(s.path_trace_time),
            secs(s.rank_time),
            secs(s.screen_time),
            secs(s.prune_time),
            secs(s.diagnosis_time),
            secs(s.correction_time),
        ));
        out.push_str(&format!(
            ",\"candidates\":{{\"screened\":{},\"qualified\":{},\"rejected_h2\":{},\"rejected_h3\":{},\"lines_rejected_h1\":{},\"lines_truncated\":{},\"wire_sources_truncated\":{},\"candidates_truncated\":{}}}",
            s.corrections_screened,
            s.corrections_qualified,
            s.corrections_rejected_h2,
            s.corrections_rejected_h3,
            s.lines_rejected_h1,
            s.lines_truncated,
            s.wire_sources_truncated,
            s.candidates_truncated,
        ));
        out.push_str(&format!(
            ",\"simulation\":{{\"words\":{},\"events_propagated\":{},\"words_skipped\":{},\"blocks_skipped\":{},\"sparse_rows\":{},\"dense_fallbacks\":{}}}",
            s.words_simulated,
            s.events_propagated,
            s.words_skipped,
            s.blocks_skipped,
            s.sparse_rows,
            s.dense_fallbacks,
        ));
        out.push_str(&format!(
            ",\"path_trace\":{{\"batches\":{},\"observations_batched\":{}}}",
            s.path_trace_batches, s.observations_batched,
        ));
        out.push_str(&format!(
            ",\"cache\":{{\"cone_hits\":{},\"matrix_hits\":{},\"matrix_evictions\":{}}}",
            s.cone_cache_hits, s.matrix_cache_hits, s.matrix_cache_evictions,
        ));
        match &s.abstraction {
            Some(a) => out.push_str(&format!(
                ",\"abstraction\":{{\"super_gates\":{},\"concrete_gates\":{},\"abstract_gates\":{},\"collapse_ratio\":{:.4},\"suspects_expanded\":{},\"refinement_rounds\":{},\"phase1_nodes\":{},\"phase2_nodes\":{}}}",
                a.super_gates,
                a.concrete_gates,
                a.abstract_gates,
                a.collapse_ratio,
                a.suspects_expanded,
                a.refinement_rounds,
                a.phase1_nodes,
                a.phase2_nodes,
            )),
            None => out.push_str(",\"abstraction\":null"),
        }
        match &s.analysis {
            Some(a) => out.push_str(&format!(
                ",\"analysis\":{{\"const_lines\":{},\"dominated_lines\":{},\"table_rebuilds\":{},\"prune_checks\":{},\"static_pruned\":{}}}",
                a.const_lines, a.dominated_lines, a.table_rebuilds, s.prune_checks, s.static_pruned,
            )),
            None => out.push_str(",\"analysis\":null"),
        }
        match &s.fault_classes {
            Some(fc) => {
                out.push_str(&format!(
                    ",\"fault_classes\":{{\"classes\":{},\"faults\":{},\"representatives\":[",
                    fc.classes, fc.faults,
                ));
                for (i, r) in fc.representatives.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\"", escape_json(r)));
                }
                out.push_str("]}");
            }
            None => out.push_str(",\"fault_classes\":null"),
        }
        out.push_str(&format!(
            ",\"workers\":{{\"count\":{},\"busy\":{},\"wall\":{},\"utilization\":{:.4}}}",
            s.parallel.workers,
            secs(s.parallel.busy),
            secs(s.parallel.wall),
            s.parallel.utilization(),
        ));
        match &s.dispatch {
            Some(d) => {
                out.push_str(&format!(
                    ",\"dispatch\":{{\"workers\":{},\"tasks_executed\":{},\"tasks_stolen\":{},\"steal_failures\":{},\"speculative_hits\":{},\"speculative_misses\":{},\"hit_rate\":{:.4},\"tasks_wasted\":{},\"frontier_high_water\":{}",
                    d.workers,
                    d.tasks_executed,
                    d.tasks_stolen,
                    d.steal_failures,
                    d.speculative_hits,
                    d.speculative_misses,
                    d.hit_rate(),
                    d.tasks_wasted,
                    d.frontier_high_water,
                ));
                out.push_str(",\"worker_nodes\":[");
                for (i, n) in d.worker_nodes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&n.to_string());
                }
                out.push_str("],\"worker_busy\":[");
                for (i, b) in d.worker_busy.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&secs(*b));
                }
                out.push_str("],\"worker_idle\":[");
                for (i, t) in d.worker_idle.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&secs(*t));
                }
                out.push_str("]}");
            }
            None => out.push_str(",\"dispatch\":null"),
        }
        out.push_str(&format!(
            ",\"audit\":{{\"checks\":{},\"violations\":{}}}",
            s.audit_checks, s.audit_violations,
        ));
        out.push_str(",\"degradations\":[");
        for (i, d) in s.degradations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"count\":{},\"detail\":\"{}\"}}",
                d.kind.tag(),
                d.count,
                escape_json(&d.detail),
            ));
        }
        out.push(']');
        match &s.chaos {
            Some(c) => out.push_str(&format!(
                ",\"chaos\":{{\"panics\":{},\"bit_flips\":{},\"width_errors\":{},\"summary_flips\":{},\"map_corruptions\":{},\"table_corruptions\":{},\"checkpoint_corruptions\":{}}}",
                c.panics, c.bit_flips, c.width_errors, c.summary_flips, c.map_corruptions, c.table_corruptions, c.checkpoint_corruptions,
            )),
            None => out.push_str(",\"chaos\":null"),
        }
        out.push('}');
        out
    }
}

impl fmt::Display for RectifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, and control characters). Shared by the report,
/// checkpoint, and bench serializers.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_label_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_is_one_line_and_balanced() {
        let result = RectifyResult {
            solutions: vec![],
            verdict: Verdict::default(),
            partials: vec![],
            checkpoint: None,
            stats: RectifyStats::default(),
        };
        let json = RectifyReport::new("c17 \"quoted\"", 4, &result).to_json();
        assert!(!json.contains('\n'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
        assert!(json.contains("\"jobs\":4"));
        assert!(json.contains("\"traversal\":\""));
        assert!(json.contains("\"evaluator\":\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"events_propagated\":0"));
        assert!(json.contains("\"cache\":{\"cone_hits\":0"));
        assert!(json.contains("\"audit\":{\"checks\":0,\"violations\":0}"));
        assert!(json.contains("\"verdict\":\"exact\""));
        assert!(json.contains("\"degradations\":[]"));
        assert!(json.contains("\"chaos\":null"));
        assert!(json.contains("\"dispatch\":null"));
        assert!(json.contains("\"abstraction\":null"));
        assert!(json.contains("\"analysis\":null"));
        assert!(json.contains("\"fault_classes\":null"));
        assert!(json.contains("\"path_trace\":{\"batches\":0,\"observations_batched\":0}"));
    }

    #[test]
    fn analysis_and_fault_class_telemetry_serialize() {
        let stats = RectifyStats {
            analysis: Some(crate::AnalysisStats {
                const_lines: 4,
                dominated_lines: 11,
                table_rebuilds: 1,
            }),
            prune_checks: 30,
            static_pruned: 7,
            fault_classes: Some(crate::FaultClassSummary {
                classes: 2,
                faults: 6,
                representatives: vec!["y/0".to_string(), "g1/1".to_string()],
            }),
            ..RectifyStats::default()
        };
        let report = RectifyReport::from_parts("prune", 1, 1, 1, Verdict::default(), 0, stats);
        let json = report.to_json();
        assert!(json.contains(
            "\"analysis\":{\"const_lines\":4,\"dominated_lines\":11,\
             \"table_rebuilds\":1,\"prune_checks\":30,\"static_pruned\":7}"
        ));
        assert!(json.contains(
            "\"fault_classes\":{\"classes\":2,\"faults\":6,\"representatives\":[\"y/0\",\"g1/1\"]}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn abstraction_telemetry_serializes() {
        let stats = RectifyStats {
            abstraction: Some(crate::AbstractionStats {
                super_gates: 12,
                concrete_gates: 100,
                abstract_gates: 40,
                collapse_ratio: 0.4,
                suspects_expanded: 9,
                refinement_rounds: 2,
                phase1_nodes: 5,
                phase2_nodes: 17,
            }),
            path_trace_batches: 3,
            observations_batched: 96,
            ..RectifyStats::default()
        };
        let report = RectifyReport::from_parts("hier", 1, 1, 1, Verdict::default(), 0, stats);
        let json = report.to_json();
        assert!(json.contains(
            "\"abstraction\":{\"super_gates\":12,\"concrete_gates\":100,\
             \"abstract_gates\":40,\"collapse_ratio\":0.4000,\"suspects_expanded\":9,\
             \"refinement_rounds\":2,\"phase1_nodes\":5,\"phase2_nodes\":17}"
        ));
        assert!(json.contains("\"path_trace\":{\"batches\":3,\"observations_batched\":96}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn dispatch_telemetry_serializes() {
        use std::time::Duration;
        let stats = RectifyStats {
            dispatch: Some(crate::DispatchTelemetry {
                workers: 2,
                tasks_executed: 10,
                tasks_stolen: 3,
                steal_failures: 1,
                speculative_hits: 6,
                speculative_misses: 2,
                tasks_wasted: 4,
                frontier_high_water: 5,
                worker_nodes: vec![7, 3],
                worker_busy: vec![Duration::from_millis(250), Duration::from_millis(125)],
                worker_idle: vec![Duration::from_millis(50), Duration::ZERO],
            }),
            ..RectifyStats::default()
        };
        let report = RectifyReport::from_parts("dispatch", 2, 1, 1, Verdict::default(), 0, stats);
        let json = report.to_json();
        assert!(json.contains(
            "\"dispatch\":{\"workers\":2,\"tasks_executed\":10,\"tasks_stolen\":3,\
             \"steal_failures\":1,\"speculative_hits\":6,\"speculative_misses\":2,\
             \"hit_rate\":0.7500,\"tasks_wasted\":4,\"frontier_high_water\":5"
        ));
        assert!(json.contains("\"worker_nodes\":[7,3]"));
        assert!(json.contains("\"worker_busy\":[0.250000,0.125000]"));
        assert!(json.contains("\"worker_idle\":[0.050000,0.000000]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn degradations_and_verdict_serialize() {
        use crate::limits::{DegradationEvent, DegradationKind};
        let mut stats = RectifyStats::default();
        stats.degradations.push(DegradationEvent::new(
            DegradationKind::WorkerPanic,
            2,
            "2 worker panic(s) \"quoted\"",
        ));
        stats.chaos = Some(crate::ChaosSummary {
            panics: 2,
            bit_flips: 1,
            width_errors: 0,
            summary_flips: 3,
            map_corruptions: 1,
            table_corruptions: 2,
            checkpoint_corruptions: 1,
        });
        let report = RectifyReport::from_parts(
            "chaos",
            2,
            0,
            0,
            Verdict::Partial {
                best_remaining_failures: 7,
            },
            3,
            stats,
        );
        let json = report.to_json();
        assert!(json.contains("\"verdict\":\"partial\""));
        assert!(json.contains("\"best_remaining_failures\":7"));
        assert!(json.contains("\"partials\":3"));
        assert!(json.contains(
            "\"degradations\":[{\"kind\":\"worker-panic\",\"count\":2,\"detail\":\"2 worker panic(s) \\\"quoted\\\"\"}]"
        ));
        assert!(json.contains(
            "\"chaos\":{\"panics\":2,\"bit_flips\":1,\"width_errors\":0,\"summary_flips\":3,\"map_corruptions\":1,\"table_corruptions\":2,\"checkpoint_corruptions\":1}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
