//! A minimal recursive-descent JSON reader shared by every hand-rolled
//! line-JSON surface in the workspace (checkpoints, the serve wire
//! protocol, bench tooling).
//!
//! The reader covers exactly the value kinds the workspace's writers
//! emit: unsigned integers, booleans, strings, arrays and objects.
//! Floats are deliberately rejected — scores travel as IEEE-754 bit
//! patterns (`u64`) so round-trips are exact — and so are `null`s,
//! which no writer produces. Everything is `Result`-based: malformed
//! input surfaces as an error string naming the offending byte, never
//! a panic, so untrusted bytes (a torn spool file, a garbled client
//! request) are safe to feed in.
//!
//! Documents are capped at [`MAX_DEPTH`] nesting levels, which bounds
//! recursion on adversarial input.

/// Maximum nesting depth accepted by [`parse`]. Deeper documents are
/// rejected with an error rather than risking stack exhaustion.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value restricted to the workspace's wire subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the writers emit).
    UInt(u64),
    /// A string, with escapes already decoded.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (duplicate keys keep the
    /// first occurrence when read through [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// If `self` is not an object or the field is absent.
    pub fn get(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("expected object while reading `{key}`")),
        }
    }

    /// Looks up an optional object field; `None` when `self` is not an
    /// object or the field is absent.
    pub fn get_opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Reads the value as a `u64`.
    ///
    /// # Errors
    ///
    /// If the value is not an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Json::UInt(v) => Ok(*v),
            _ => Err("expected unsigned integer".to_string()),
        }
    }

    /// Reads the value as a `usize`.
    ///
    /// # Errors
    ///
    /// If the value is not an unsigned integer that fits in `usize`.
    pub fn as_usize(&self) -> Result<usize, String> {
        usize::try_from(self.as_u64()?).map_err(|_| "integer out of range".to_string())
    }

    /// Reads the value as a string slice.
    ///
    /// # Errors
    ///
    /// If the value is not a string.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected string".to_string()),
        }
    }

    /// Reads the value as a boolean.
    ///
    /// # Errors
    ///
    /// If the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err("expected boolean".to_string()),
        }
    }

    /// Reads the value as an array slice.
    ///
    /// # Errors
    ///
    /// If the value is not an array.
    pub fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err("expected array".to_string()),
        }
    }
}

/// Parses a complete JSON document.
///
/// The whole input must be consumed — trailing non-whitespace bytes are
/// an error, which is how torn/concatenated spool lines are caught.
///
/// # Errors
///
/// A human-readable description of the first malformed byte.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut reader = Reader::new(text);
    let root = reader.value(0)?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(format!("trailing garbage at byte {}", reader.pos));
    }
    Ok(root)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| format!("unexpected end of input at byte {}", self.pos))
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Ok(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek()? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E' | b'-')) {
            return Err(format!(
                "only unsigned integers are valid here (byte {start})"
            ));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        digits
            .parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| format!("integer overflow at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode exactly one multi-byte UTF-8 character —
                    // validating only its own bytes keeps string
                    // scanning linear even for multi-hundred-KB
                    // embedded payloads (a checkpoint inside a spool
                    // record).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("non-utf8 string".to_string()),
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "unterminated string".to_string())?;
                    let c = std::str::from_utf8(chunk)
                        .map_err(|_| "non-utf8 string".to_string())?
                        .chars()
                        .next()
                        .ok_or_else(|| "non-utf8 string".to_string())?;
                    out.push(c);
                    self.pos += len - 1;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.consume(b',')?;
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.consume(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.consume(b',')?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_subset() {
        let doc = parse("{\"a\":1,\"b\":[true,\"x\\n\"],\"c\":{}}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64().unwrap(), 1);
        let arr = doc.get("b").unwrap().as_arr().unwrap();
        assert!(arr[0].as_bool().unwrap());
        assert_eq!(arr[1].as_str().unwrap(), "x\n");
        assert!(doc.get("c").unwrap().get("missing").is_err());
        assert_eq!(doc.get_opt("missing"), None);
        assert!(doc.get_opt("a").is_some());
    }

    #[test]
    fn rejects_everything_outside_the_subset() {
        assert!(parse("1.5").is_err(), "floats");
        assert!(parse("-3").is_err(), "negative integers");
        assert!(parse("null").is_err(), "null");
        assert!(parse("{\"a\":1} extra").is_err(), "trailing garbage");
        assert!(parse("{\"a\":").is_err(), "truncation");
        assert!(parse("").is_err(), "empty input");
        assert!(parse("99999999999999999999999").is_err(), "overflow");
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err(), "nesting bomb");
    }

    #[test]
    fn decodes_escapes_and_utf8() {
        let doc = parse("\"caf\u{e9} \\u00e9 \\t\\\\\"").unwrap();
        assert_eq!(doc.as_str().unwrap(), "café é \t\\");
    }
}
