//! Evaluation backends: how a decision-tree node's circuit and value
//! matrix are (re)built.
//!
//! The engine asks its [`Evaluator`] to *prepare* a node — produce the
//! base netlist with the node's correction tuple applied and the fully
//! simulated value matrix — and to optionally *retain* matrices of open
//! nodes for child reuse. [`FromScratch`] clones and resimulates the
//! whole circuit per node; [`Incremental`] keeps the event-driven path
//! of the pre-refactor engine ([`NodeMatrixCache`] + change-bounded
//! `run_cone_events`), bit-identical to [`FromScratch`] in results but
//! doing a fraction of the simulation work; [`Parallel`] decorates
//! either with a worker count for the screening stages.
//!
//! All backends are pure with respect to results: solutions and
//! candidate rankings do not depend on the backend, only the work
//! counters do (see the cache-invariants section of `ARCHITECTURE.md`).
//!
//! Besides the master session, each dispatcher worker (`dispatch.rs`)
//! owns a private evaluator stack built by the same
//! `session::build_evaluator` path, so speculative node preparation
//! reuses these backends unchanged — purity is what makes a worker's
//! result interchangeable with the master's.

use std::fmt::Debug;

use incdx_fault::Correction;
use incdx_netlist::{ConeCache, GateId, Netlist};
use incdx_sim::{PackedMatrix, Simulator};

use crate::cache::NodeMatrixCache;

/// Monotonic work counters of an evaluation backend. The engine diffs
/// them around [`Evaluator::prepare`] calls to attribute work to
/// [`RectifyStats`](crate::RectifyStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Packed words evaluated ([`Simulator::words_simulated`]).
    pub words: u64,
    /// Change-bounded events propagated.
    pub events: u64,
    /// Packed words skipped by the change-bounded walk.
    pub skipped: u64,
    /// Node preparations served from a cached parent matrix.
    pub matrix_hits: u64,
    /// Invariant checks performed by an [`Auditing`](crate::Auditing)
    /// decorator (0 for plain backends).
    pub audit_checks: u64,
    /// Invariant checks that failed (always 0 on a healthy engine).
    pub audit_violations: u64,
    /// All-zero [`BLOCK_WORDS`](incdx_sim::BLOCK_WORDS)-word blocks the
    /// sparse kernel skipped without touching.
    pub blocks_skipped: u64,
    /// Rows/operations evaluated block-restricted by the sparse kernel.
    pub sparse_rows: u64,
    /// Operations where sparse mode was requested but the dense path ran
    /// (rows too narrow, or a mask with no skippable block).
    pub dense_fallbacks: u64,
}

/// Read-only run context handed to [`Evaluator::prepare`]: the base
/// circuit, its primary-input order, the test vectors, and the shared
/// base-netlist cone cache (swapped into the root node's prepared state
/// and handed back by the engine after each root evaluation).
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The uncorrected base netlist.
    pub base: &'a Netlist,
    /// Primary inputs of `base`, in vector-row order.
    pub base_inputs: &'a [GateId],
    /// The test-vector matrix (one row per primary input).
    pub vectors: &'a PackedMatrix,
    /// Memoized fanout cones of `base`, reused across root evaluations.
    pub base_cones: &'a mut ConeCache,
}

/// A fully prepared decision-tree node.
#[derive(Debug)]
pub struct PreparedNode {
    /// The base netlist with the node's corrections applied.
    pub netlist: Netlist,
    /// The node circuit's fully simulated value matrix.
    pub vals: PackedMatrix,
    /// Cone cache over `netlist`, for the diagnosis/screening stages.
    pub cones: ConeCache,
}

/// A simulation backend for node preparation.
pub trait Evaluator: Debug + Send {
    /// Stable name, reported in [`RectifyStats`](crate::RectifyStats)
    /// and the JSON reports.
    fn name(&self) -> &'static str;

    /// Worker threads the diagnosis/screening stages should use
    /// (`0` = all cores, `1` = serial).
    fn jobs(&self) -> usize {
        1
    }

    /// Does this backend keep parent matrices for change-bounded reuse?
    /// (Selects the column-restricted save/restore strategy in the
    /// screening stages.)
    fn incremental(&self) -> bool {
        false
    }

    /// Is the hierarchical sparse kernel enabled? When `true`, node
    /// preparation uses the block-granular cone walk and the candidate
    /// pipeline restricts screening popcounts to occupied blocks of the
    /// failing-vector mask (results are bit-identical either way; see
    /// the "Simulation kernel" section of `ARCHITECTURE.md`).
    fn sparse(&self) -> bool {
        false
    }

    /// Current work counters (monotonic; diffed by the engine).
    fn counters(&self) -> SimCounters;

    /// Builds the node for `corrections` applied to `ctx.base`. Returns
    /// `None` when a correction fails to apply — a dead node.
    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode>;

    /// Clones out the retained (netlist, matrix) pair for `corrections`
    /// if this backend kept one, refreshing its recency. Backends that
    /// keep nothing return `None`. Used by the dispatcher's cache
    /// warming to probe a worker's private cache without triggering the
    /// replay a [`Evaluator::prepare`] miss would cost.
    fn cached(&mut self, _corrections: &[Correction]) -> Option<(Netlist, PackedMatrix)> {
        None
    }

    /// Offers an open node's (netlist, matrix) for child reuse. Returns
    /// the number of cache evictions this caused (0 for backends that
    /// keep nothing).
    fn retain(
        &mut self,
        _corrections: &[Correction],
        _netlist: Netlist,
        _vals: PackedMatrix,
    ) -> u64 {
        0
    }

    /// Tells the backend a node closed: any retained state for it can
    /// never be reused.
    fn release(&mut self, _corrections: &[Correction]) {}

    /// Drops all retained/memoized state, returning the backend to its
    /// just-constructed condition (fresh counters included).
    fn reset(&mut self);

    /// Approximate bytes of retained/cached state, for the engine's
    /// retained-memory budget ([`RectifyLimits::max_retained_bytes`]).
    /// Backends that keep nothing report 0.
    ///
    /// [`RectifyLimits::max_retained_bytes`]: crate::RectifyLimits::max_retained_bytes
    fn retained_bytes(&self) -> usize {
        0
    }

    /// Drains structured degradation events recorded since the last
    /// call (audit repairs, evaluator fallbacks). Plain backends record
    /// none; the [`Auditing`](crate::Auditing) decorator overrides this.
    fn take_degradations(&mut self) -> Vec<crate::limits::DegradationEvent> {
        Vec::new()
    }
}

/// Rebuild every node from the base circuit and resimulate everything —
/// the paper's baseline cost model.
#[derive(Debug, Default)]
pub struct FromScratch {
    sim: Simulator,
}

impl FromScratch {
    /// A fresh from-scratch backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables/disables the sparse simulation kernel (builder style).
    pub fn with_sparse(mut self, on: bool) -> Self {
        self.sim.set_sparse(on);
        self
    }
}

impl Evaluator for FromScratch {
    fn name(&self) -> &'static str {
        "from-scratch"
    }

    fn sparse(&self) -> bool {
        self.sim.sparse()
    }

    fn counters(&self) -> SimCounters {
        SimCounters {
            words: self.sim.words_simulated(),
            events: self.sim.events_propagated(),
            skipped: self.sim.words_skipped(),
            blocks_skipped: self.sim.blocks_skipped(),
            sparse_rows: self.sim.sparse_rows(),
            dense_fallbacks: self.sim.dense_fallbacks(),
            ..SimCounters::default()
        }
    }

    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode> {
        if corrections.is_empty() {
            // The root is resimulated per call (ladder restarts), keeping
            // the original engine's work profile for `incremental = false`.
            let netlist = ctx.base.clone();
            let vals = self
                .sim
                .run_for_inputs(ctx.base, ctx.base_inputs, ctx.vectors);
            let cones = std::mem::take(ctx.base_cones);
            return Some(PreparedNode {
                netlist,
                vals,
                cones,
            });
        }
        let mut netlist = ctx.base.clone();
        for c in corrections {
            if c.apply(&mut netlist).is_err() {
                return None;
            }
        }
        let vals = self
            .sim
            .run_for_inputs(&netlist, ctx.base_inputs, ctx.vectors);
        let cones = ConeCache::new(&netlist);
        Some(PreparedNode {
            netlist,
            vals,
            cones,
        })
    }

    fn reset(&mut self) {
        let sparse = self.sim.sparse();
        self.sim = Simulator::new();
        self.sim.set_sparse(sparse);
    }
}

/// Event-driven incremental backend: reuse the parent node's cached
/// value matrix and resimulate only the corrected line's fanout cone,
/// change-bounded. Matrices of open nodes live in a byte-budgeted LRU
/// (`NodeMatrixCache`); a miss replays the correction tuple
/// incrementally from the memoized base matrix.
#[derive(Debug)]
pub struct Incremental {
    sim: Simulator,
    cache: NodeMatrixCache,
    cache_budget: usize,
    base_vals: Option<PackedMatrix>,
    hits: u64,
}

impl Incremental {
    /// An incremental backend whose matrix cache holds at most
    /// `cache_budget` bytes (`0` disables the cache but keeps the
    /// change-bounded cone propagation).
    pub fn new(cache_budget: usize) -> Self {
        Incremental {
            sim: Simulator::new(),
            cache: NodeMatrixCache::new(cache_budget),
            cache_budget,
            base_vals: None,
            hits: 0,
        }
    }

    /// Enables/disables the sparse simulation kernel (builder style).
    /// Sparse mode changes no result — the change-bounded cone walk
    /// just propagates per occupied block instead of per row.
    pub fn with_sparse(mut self, on: bool) -> Self {
        self.sim.set_sparse(on);
        self
    }

    /// The base netlist's fully simulated value matrix, memoized (a pure
    /// function of the base netlist and the vector set).
    fn base_values(&mut self, ctx: &EvalContext<'_>) -> PackedMatrix {
        if self.base_vals.is_none() {
            self.base_vals = Some(
                self.sim
                    .run_for_inputs(ctx.base, ctx.base_inputs, ctx.vectors),
            );
        }
        match &self.base_vals {
            Some(v) => v.clone(),
            // Unreachable: just filled above. An empty matrix keeps this
            // arm panic-free; it would fail the solution check, never
            // fabricate one.
            None => PackedMatrix::new(0, 0),
        }
    }

    /// Applies one correction to a consistent (netlist, matrix) pair and
    /// restores consistency incrementally: evaluate any appended gates,
    /// then the corrected line, then propagate change-bounded through
    /// its fanout cone. Returns `false` when the correction does not
    /// apply.
    fn apply_and_propagate(
        &mut self,
        netlist: &mut Netlist,
        vals: &mut PackedMatrix,
        c: &Correction,
    ) -> bool {
        let rows_before = netlist.len();
        if c.apply(netlist).is_err() {
            return false;
        }
        if netlist.len() > rows_before {
            // Appended gates (an InvertInput NOT, an InsertGate aux gate)
            // read only pre-existing lines and feed only the corrected
            // line: evaluate them once, in id order.
            vals.grow_rows(netlist.len());
            for idx in rows_before..netlist.len() {
                self.sim.eval_gate(netlist, GateId::from_index(idx), vals);
            }
        }
        self.sim.eval_gate(netlist, c.line(), vals);
        let cone = netlist.fanout_cone_sorted(c.line());
        self.sim.run_cone_events(netlist, vals, &cone);
        true
    }
}

impl Evaluator for Incremental {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn incremental(&self) -> bool {
        true
    }

    fn sparse(&self) -> bool {
        self.sim.sparse()
    }

    fn counters(&self) -> SimCounters {
        SimCounters {
            words: self.sim.words_simulated(),
            events: self.sim.events_propagated(),
            skipped: self.sim.words_skipped(),
            matrix_hits: self.hits,
            blocks_skipped: self.sim.blocks_skipped(),
            sparse_rows: self.sim.sparse_rows(),
            dense_fallbacks: self.sim.dense_fallbacks(),
            ..SimCounters::default()
        }
    }

    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode> {
        if corrections.is_empty() {
            let netlist = ctx.base.clone();
            let vals = self.base_values(ctx);
            let cones = std::mem::take(ctx.base_cones);
            return Some(PreparedNode {
                netlist,
                vals,
                cones,
            });
        }
        let (last, prefix) = corrections.split_last()?;
        if let Some((mut netlist, mut vals)) = self.cache.get_clone(prefix) {
            self.hits += 1;
            if !self.apply_and_propagate(&mut netlist, &mut vals, last) {
                return None;
            }
            let cones = ConeCache::new(&netlist);
            return Some(PreparedNode {
                netlist,
                vals,
                cones,
            });
        }
        // Miss: replay every correction incrementally from the base
        // matrix — k cone resimulations instead of a whole-circuit pass.
        let mut netlist = ctx.base.clone();
        let mut vals = self.base_values(ctx);
        for c in corrections {
            if !self.apply_and_propagate(&mut netlist, &mut vals, c) {
                return None;
            }
        }
        let cones = ConeCache::new(&netlist);
        Some(PreparedNode {
            netlist,
            vals,
            cones,
        })
    }

    fn cached(&mut self, corrections: &[Correction]) -> Option<(Netlist, PackedMatrix)> {
        self.cache.get_clone(corrections)
    }

    fn retain(&mut self, corrections: &[Correction], netlist: Netlist, vals: PackedMatrix) -> u64 {
        self.cache.insert(corrections.to_vec(), netlist, vals)
    }

    fn release(&mut self, corrections: &[Correction]) {
        self.cache.remove(corrections);
    }

    fn reset(&mut self) {
        let sparse = self.sim.sparse();
        self.sim = Simulator::new();
        self.sim.set_sparse(sparse);
        self.cache = NodeMatrixCache::new(self.cache_budget);
        self.base_vals = None;
        self.hits = 0;
    }

    fn retained_bytes(&self) -> usize {
        let base = self
            .base_vals
            .as_ref()
            .map_or(0, |m| m.rows() * m.words_per_row() * 8);
        self.cache.bytes() + base
    }
}

/// Decorator adding a worker count for the parallel screening stages.
/// Node preparation itself stays on the inner backend; only
/// [`Evaluator::jobs`] changes, which the candidate pipeline feeds to
/// its deterministic parallel map.
#[derive(Debug)]
pub struct Parallel {
    inner: Box<dyn Evaluator>,
    jobs: usize,
}

impl Parallel {
    /// Wraps `inner`, advertising `jobs` workers (`0` = all cores).
    pub fn new(inner: Box<dyn Evaluator>, jobs: usize) -> Self {
        Parallel { inner, jobs }
    }
}

impl Evaluator for Parallel {
    fn name(&self) -> &'static str {
        match self.inner.name() {
            "incremental" => "parallel+incremental",
            "from-scratch" => "parallel+from-scratch",
            _ => "parallel",
        }
    }

    fn jobs(&self) -> usize {
        self.jobs
    }

    fn incremental(&self) -> bool {
        self.inner.incremental()
    }

    fn sparse(&self) -> bool {
        self.inner.sparse()
    }

    fn counters(&self) -> SimCounters {
        self.inner.counters()
    }

    fn prepare(
        &mut self,
        ctx: &mut EvalContext<'_>,
        corrections: &[Correction],
    ) -> Option<PreparedNode> {
        self.inner.prepare(ctx, corrections)
    }

    fn cached(&mut self, corrections: &[Correction]) -> Option<(Netlist, PackedMatrix)> {
        self.inner.cached(corrections)
    }

    fn retain(&mut self, corrections: &[Correction], netlist: Netlist, vals: PackedMatrix) -> u64 {
        self.inner.retain(corrections, netlist, vals)
    }

    fn release(&mut self, corrections: &[Correction]) {
        self.inner.release(corrections)
    }

    fn reset(&mut self) {
        self.inner.reset()
    }

    fn retained_bytes(&self) -> usize {
        self.inner.retained_bytes()
    }

    fn take_degradations(&mut self) -> Vec<crate::limits::DegradationEvent> {
        self.inner.take_degradations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::CorrectionAction;
    use incdx_netlist::parse_bench;

    fn setup() -> (Netlist, PackedMatrix) {
        let n =
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = AND(a, b)\ny = OR(x, a)\n").unwrap();
        let mut pi = PackedMatrix::new(2, 8);
        for v in 0..8 {
            pi.set(0, v, v & 1 == 1);
            pi.set(1, v, v & 2 == 2);
        }
        (n, pi)
    }

    fn prepare_with(
        ev: &mut dyn Evaluator,
        n: &Netlist,
        pi: &PackedMatrix,
        c: &[Correction],
    ) -> Option<PreparedNode> {
        let inputs = n.inputs().to_vec();
        let mut cones = ConeCache::new(n);
        let mut ctx = EvalContext {
            base: n,
            base_inputs: &inputs,
            vectors: pi,
            base_cones: &mut cones,
        };
        ev.prepare(&mut ctx, c)
    }

    #[test]
    fn incremental_matches_from_scratch() {
        let (n, pi) = setup();
        let y = n.find_by_name("y").unwrap();
        let tuple = vec![Correction::new(y, CorrectionAction::SetConst(true))];
        let mut scratch = FromScratch::new();
        let mut inc = Incremental::new(64 << 20);
        for corrections in [vec![], tuple] {
            let a = prepare_with(&mut scratch, &n, &pi, &corrections).unwrap();
            let b = prepare_with(&mut inc, &n, &pi, &corrections).unwrap();
            assert_eq!(a.vals.rows(), b.vals.rows());
            for r in 0..a.vals.rows() {
                assert_eq!(a.vals.row(r), b.vals.row(r), "row {r} of {corrections:?}");
            }
        }
    }

    #[test]
    fn retain_enables_cache_hits_and_release_drops_them() {
        let (n, pi) = setup();
        let y = n.find_by_name("y").unwrap();
        let mut inc = Incremental::new(64 << 20);
        let root = prepare_with(&mut inc, &n, &pi, &[]).unwrap();
        assert_eq!(inc.retain(&[], root.netlist, root.vals), 0);
        let tuple = vec![Correction::new(y, CorrectionAction::SetConst(true))];
        assert!(prepare_with(&mut inc, &n, &pi, &tuple).is_some());
        assert_eq!(inc.counters().matrix_hits, 1);
        inc.release(&[]);
        assert!(prepare_with(&mut inc, &n, &pi, &tuple).is_some());
        assert_eq!(inc.counters().matrix_hits, 1, "released entry cannot hit");
    }

    #[test]
    fn cached_probe_returns_retained_pairs_without_replay() {
        let (n, pi) = setup();
        let mut inc = Incremental::new(64 << 20);
        assert!(inc.cached(&[]).is_none(), "nothing retained yet");
        let root = prepare_with(&mut inc, &n, &pi, &[]).unwrap();
        inc.retain(&[], root.netlist, root.vals.clone());
        let words_before = inc.counters().words;
        let (_, vals) = inc.cached(&[]).expect("retained pair is probeable");
        assert_eq!(vals.row(0), root.vals.row(0), "probe clones the matrix");
        assert_eq!(
            inc.counters().words,
            words_before,
            "a probe simulates nothing"
        );
        // Backends that keep nothing answer None, so cache warming is a
        // no-op for them.
        assert!(FromScratch::new().cached(&[]).is_none());
        let mut par = Parallel::new(Box::new(Incremental::new(64 << 20)), 2);
        assert!(par.cached(&[]).is_none(), "decorator delegates");
    }

    #[test]
    fn failed_application_is_a_dead_node() {
        let (n, pi) = setup();
        let y = n.find_by_name("y").unwrap();
        // Adding an input that is already a fanin does not apply.
        let x = n.find_by_name("x").unwrap();
        let bad = vec![Correction::new(y, CorrectionAction::AddInput { source: x })];
        let mut scratch = FromScratch::new();
        let mut inc = Incremental::new(64 << 20);
        assert!(prepare_with(&mut scratch, &n, &pi, &bad).is_none());
        assert!(prepare_with(&mut inc, &n, &pi, &bad).is_none());
    }

    #[test]
    fn reset_restores_fresh_state() {
        let (n, pi) = setup();
        let mut inc = Incremental::new(64 << 20);
        let root = prepare_with(&mut inc, &n, &pi, &[]).unwrap();
        inc.retain(&[], root.netlist, root.vals);
        assert!(inc.counters().words > 0);
        inc.reset();
        assert_eq!(inc.counters(), SimCounters::default());
    }

    #[test]
    fn sparse_flag_survives_reset_and_decorators() {
        let mut inc = Incremental::new(0).with_sparse(true);
        assert!(inc.sparse());
        inc.reset();
        assert!(inc.sparse(), "reset must not silently drop sparse mode");
        let mut scratch = FromScratch::new().with_sparse(true);
        scratch.reset();
        assert!(scratch.sparse());
        let par = Parallel::new(Box::new(FromScratch::new().with_sparse(true)), 2);
        assert!(par.sparse());
        assert!(!Parallel::new(Box::new(FromScratch::new()), 2).sparse());
    }

    #[test]
    fn parallel_decorator_delegates() {
        let (n, pi) = setup();
        let mut par = Parallel::new(Box::new(Incremental::new(0)), 4);
        assert_eq!(par.jobs(), 4);
        assert!(par.incremental());
        assert_eq!(par.name(), "parallel+incremental");
        assert!(prepare_with(&mut par, &n, &pi, &[]).is_some());
        assert!(par.counters().words > 0);
        assert_eq!(
            Parallel::new(Box::new(FromScratch::new()), 0).name(),
            "parallel+from-scratch"
        );
    }
}
