//! Resource limits, cooperative cancellation, and run verdicts — the
//! resilience layer's vocabulary.
//!
//! A [`RectifyLimits`] bounds a [`Rectifier`](crate::Rectifier) run by
//! wall clock, evaluated nodes, simulated words, or retained backend
//! bytes; a [`CancelToken`] lets another thread (or a test) stop the
//! search cooperatively. Both are checked once per scheduled plan item
//! in the traversal loop — never mid-node — so an interrupted run
//! always stops on a consistent decision tree, from which the engine
//! extracts ranked [`PartialSolution`]s and (for limit/cancel stops) a
//! [`Checkpoint`](crate::Checkpoint).
//!
//! The outcome of a supervised run is summarised by a [`Verdict`], and
//! every recovery the engine performed along the way (worker panics
//! caught, audit repairs, backend fallbacks) is recorded as a
//! [`DegradationEvent`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use incdx_fault::Correction;

/// Resource budget for one [`Rectifier::run`](crate::Rectifier::run).
/// All fields default to `None` (unlimited); each is checked
/// cooperatively at plan-item granularity in the traversal loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RectifyLimits {
    /// Wall-clock deadline, measured from the start of `run()`.
    /// Exceeding it stops the search with
    /// [`Verdict::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Budget on decision-tree nodes evaluated
    /// ([`RectifyStats::nodes`](crate::RectifyStats::nodes)); reaching
    /// it stops the search with [`Verdict::BudgetExhausted`].
    pub max_total_nodes: Option<u64>,
    /// Budget on packed words simulated
    /// ([`RectifyStats::words_simulated`](crate::RectifyStats::words_simulated));
    /// reaching it stops with [`Verdict::BudgetExhausted`].
    pub max_words: Option<u64>,
    /// Budget on bytes retained by the evaluation backend (an RSS
    /// estimate: matrix cache plus memoized base values); reaching it
    /// stops with [`Verdict::BudgetExhausted`].
    pub max_retained_bytes: Option<usize>,
}

impl RectifyLimits {
    /// True when no limit is armed (the default).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_total_nodes.is_none()
            && self.max_words.is_none()
            && self.max_retained_bytes.is_none()
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    polls: AtomicU64,
    /// Poll count at which the token auto-cancels; 0 disables the trap.
    trip_at: AtomicU64,
}

/// A shareable cooperative cancellation handle.
///
/// Clones share state: cancelling any clone cancels them all. The
/// engine polls the token once per scheduled plan item (via
/// [`CancelToken::poll`], which also counts polls so tests can trip the
/// token at an exact traversal step with [`CancelToken::trip_after`]);
/// pipeline workers and dispatcher speculation workers use the
/// non-counting [`CancelToken::is_cancelled`] so worker scheduling
/// never perturbs the deterministic poll count.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the engine's
    /// next poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called (or a
    /// [`CancelToken::trip_after`] trap fired). Does not count as a
    /// poll.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Arms a deterministic trap: the token cancels itself on the
    /// `n`-th subsequent call to [`CancelToken::poll`] (1-based).
    /// `n = 0` clears the trap. Intended for tests that need to stop
    /// the traversal at an exact step.
    pub fn trip_after(&self, n: u64) {
        let at = if n == 0 {
            0
        } else {
            self.inner.polls.load(Ordering::Relaxed).saturating_add(n)
        };
        self.inner.trip_at.store(at, Ordering::Relaxed);
    }

    /// Counts one engine poll and returns the cancellation state. The
    /// engine calls this exactly once per scheduled plan item, so the
    /// poll count is a deterministic function of the search — the basis
    /// for [`CancelToken::trip_after`].
    pub fn poll(&self) -> bool {
        let polls = self.inner.polls.fetch_add(1, Ordering::Relaxed) + 1;
        let trip = self.inner.trip_at.load(Ordering::Relaxed);
        if trip != 0 && polls >= trip {
            self.cancel();
        }
        self.is_cancelled()
    }

    /// Number of engine polls so far.
    pub fn polls(&self) -> u64 {
        self.inner.polls.load(Ordering::Relaxed)
    }
}

/// Why a supervised run stopped before exhausting the search. Ordered
/// by reporting precedence (a cancelled run reports `Cancelled` even if
/// it also blew a budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopReason {
    Cancelled,
    Deadline,
    Budget,
}

/// The typed outcome of a [`Rectifier::run`](crate::Rectifier::run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Verdict {
    /// The search ran to completion with no degradation: the reported
    /// solution set is the engine's exact answer at the deepest ladder
    /// level reached.
    #[default]
    Exact,
    /// The search was truncated by an engine cap (rounds, nodes,
    /// solutions, legacy `time_limit`) before finding any solution;
    /// the best open node still failed `best_remaining_failures`
    /// vectors.
    Partial {
        /// `remaining_failures` of the best-ranked partial solution.
        best_remaining_failures: usize,
    },
    /// [`RectifyLimits::deadline`] expired.
    DeadlineExceeded,
    /// A node/words/bytes budget in [`RectifyLimits`] was exhausted.
    BudgetExhausted,
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// The search completed, but only by degrading: worker panics were
    /// recovered, audit repairs substituted from-scratch replays, or
    /// parallel screening fell back to serial. The solution set is
    /// still exact (recovery is lossless by construction).
    Degraded,
}

impl Verdict {
    /// Stable lowercase tag used in JSON reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Exact => "exact",
            Verdict::Partial { .. } => "partial",
            Verdict::DeadlineExceeded => "deadline-exceeded",
            Verdict::BudgetExhausted => "budget-exhausted",
            Verdict::Cancelled => "cancelled",
            Verdict::Degraded => "degraded",
        }
    }

    /// True for every early-stop verdict (deadline, budget, cancel).
    pub fn is_early_stop(&self) -> bool {
        matches!(
            self,
            Verdict::DeadlineExceeded | Verdict::BudgetExhausted | Verdict::Cancelled
        )
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Partial {
                best_remaining_failures,
            } => write!(f, "partial (best remaining {best_remaining_failures})"),
            v => f.write_str(v.tag()),
        }
    }
}

/// A still-open decision-tree node reported when a run stops early: a
/// correction tuple that does not yet rectify the netlist but was
/// viable when the search stopped. Ranked ascending by
/// `remaining_failures` — fewer failing vectors first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialSolution {
    /// The tuple's corrections, in application order (empty for the
    /// root: no progress was made before the stop).
    pub corrections: Vec<Correction>,
    /// Vectors still failing with the tuple applied.
    pub remaining_failures: usize,
}

/// What kind of recovery a [`DegradationEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationKind {
    /// A screening worker panicked; the chunk was retried serially.
    WorkerPanic,
    /// Repeated worker panics latched screening to serial for the rest
    /// of the run (Parallel → serial fallback).
    ParallelDisabled,
    /// An audit replay disagreed with the prepared node; the
    /// from-scratch replay result was substituted (Incremental →
    /// FromScratch fallback).
    EvaluatorFallback,
    /// A prepared node failed a structural audit check (matrix width)
    /// and was rebuilt from the from-scratch replay.
    AuditRepair,
    /// A sparse failing-vector mask's block summary diverged from its
    /// words (a chaos summary flip) and was rebuilt from the words.
    SparseRepair,
    /// A hierarchical run's [`AbstractionMap`](incdx_netlist::AbstractionMap)
    /// failed its structural self-check (a chaos map corruption) and was
    /// rebuilt from the base netlist — or the abstract session could not
    /// be constructed and the run fell back to flat diagnosis.
    AbstractionRepair,
    /// A static-analysis table (the dominator table behind candidate
    /// pruning telemetry) failed its structural self-check (a chaos
    /// table corruption) and was rebuilt from the base netlist.
    AnalysisRepair,
    /// A spooled checkpoint failed to parse back after a write (a torn
    /// write or a chaos corruption) and was rewritten from the live
    /// in-memory checkpoint before the damage could strand the job.
    CheckpointRepair,
}

impl DegradationKind {
    /// Stable lowercase tag used in JSON reports.
    pub fn tag(&self) -> &'static str {
        match self {
            DegradationKind::WorkerPanic => "worker-panic",
            DegradationKind::ParallelDisabled => "parallel-disabled",
            DegradationKind::EvaluatorFallback => "evaluator-fallback",
            DegradationKind::AuditRepair => "audit-repair",
            DegradationKind::SparseRepair => "sparse-repair",
            DegradationKind::AbstractionRepair => "abstraction-repair",
            DegradationKind::AnalysisRepair => "analysis-repair",
            DegradationKind::CheckpointRepair => "checkpoint-repair",
        }
    }
}

/// One recovery the engine performed instead of aborting. Aggregated in
/// [`RectifyStats::degradations`](crate::RectifyStats::degradations)
/// and serialized into the JSON report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// What was degraded.
    pub kind: DegradationKind,
    /// How many underlying incidents this event covers (≥ 1).
    pub count: u64,
    /// Human-readable context.
    pub detail: String,
}

impl DegradationEvent {
    /// An event covering `count` incidents of `kind`.
    pub fn new(kind: DegradationKind, count: u64, detail: impl Into<String>) -> Self {
        DegradationEvent {
            kind,
            count,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_are_unlimited() {
        assert!(RectifyLimits::default().is_unlimited());
        let armed = RectifyLimits {
            max_total_nodes: Some(5),
            ..RectifyLimits::default()
        };
        assert!(!armed.is_unlimited());
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && t.poll());
    }

    #[test]
    fn trip_after_fires_on_the_exact_poll() {
        let t = CancelToken::new();
        t.trip_after(3);
        assert!(!t.poll());
        assert!(!t.poll());
        assert!(t.poll(), "third poll trips");
        assert_eq!(t.polls(), 3);
    }

    #[test]
    fn trip_after_counts_from_the_current_poll() {
        let t = CancelToken::new();
        assert!(!t.poll());
        t.trip_after(2);
        assert!(!t.poll());
        assert!(t.poll());
    }

    #[test]
    fn verdict_tags_are_stable() {
        assert_eq!(Verdict::Exact.tag(), "exact");
        assert_eq!(
            Verdict::Partial {
                best_remaining_failures: 3
            }
            .tag(),
            "partial"
        );
        assert_eq!(Verdict::DeadlineExceeded.tag(), "deadline-exceeded");
        assert!(Verdict::Cancelled.is_early_stop());
        assert!(!Verdict::Degraded.is_early_stop());
        assert_eq!(
            format!(
                "{}",
                Verdict::Partial {
                    best_remaining_failures: 2
                }
            ),
            "partial (best remaining 2)"
        );
    }
}
