//! The `h1/h2/h3` parameter ladder of §3.3.
//!
//! * `h1` — fraction of erroneous PO bits a suspect line must be able to
//!   rectify under the flip-and-propagate measure (heuristic 1),
//! * `h2` — fraction of `V_err` bit-list entries a candidate correction
//!   must complement (heuristic 2, the aggressive form of Theorem 1's
//!   `|V_err|/N` bound),
//! * `h3` — fraction of previously-correct vectors a candidate correction
//!   must keep correct (heuristic 3).
//!
//! Runs start at `1/1/1` (the single-error case) and relax level by level
//! whenever a node produces no qualifying correction, `h1` first ("it is
//! error-count dependent"), down to the paper's floor of `0.1/0.3/0.5`.

/// One rung of the relaxation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamLevel {
    /// Heuristic 1 threshold — line qualification. A suspect line `l`
    /// survives when its flip-and-propagate correcting potential clears
    /// the bar:
    ///
    /// ```text
    /// |{erroneous PO bits rectified by complementing l}|
    /// -------------------------------------------------- ≥ h1
    ///              |erroneous PO bits|
    /// ```
    pub h1: f64,
    /// Heuristic 2 threshold — `V_err` complementation. A candidate
    /// correction `c` on a qualified line survives when its new output
    /// row complements enough of the line's erroneous bit-list:
    ///
    /// ```text
    /// |{bits of V_err(l) complemented by c}|
    /// -------------------------------------- ≥ max(h2, |V_err| / N)
    ///              |V_err(l)|
    /// ```
    ///
    /// The `|V_err|/N` term is Theorem 1's guarantee (with `N` the
    /// remaining correction slots): some correction of every valid
    /// `N`-tuple complements at least that fraction, so the floor never
    /// screens out all of a true tuple
    /// ([`RectifyConfig::theorem_floor`](crate::RectifyConfig::theorem_floor)).
    pub h2: f64,
    /// Heuristic 3 threshold — `V_corr` preservation. A correction
    /// survives when it keeps enough previously-correct vectors correct:
    ///
    /// ```text
    /// |{bits of V_corr(l) left unchanged by c}|
    /// ----------------------------------------- ≥ h3
    ///              |V_corr(l)|
    /// ```
    pub h3: f64,
    /// Fraction of path-trace-marked lines promoted to the correction
    /// stage at this level (the paper's "top 5–20%", relaxing to 100% at
    /// the floor so a weakly-marked true error site is eventually
    /// considered).
    pub promote: f64,
}

impl ParamLevel {
    /// A level with the given thresholds and the default 20% promotion
    /// fraction.
    ///
    /// # Panics
    ///
    /// Panics if any threshold is outside `[0, 1]`.
    pub fn new(h1: f64, h2: f64, h3: f64) -> Self {
        for (name, v) in [("h1", h1), ("h2", h2), ("h3", h3)] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} out of [0, 1]");
        }
        ParamLevel {
            h1,
            h2,
            h3,
            promote: 0.2,
        }
    }

    /// Sets the promotion fraction.
    ///
    /// # Panics
    ///
    /// Panics if `promote` is outside `(0, 1]`.
    pub fn with_promote(mut self, promote: f64) -> Self {
        assert!(
            promote > 0.0 && promote <= 1.0,
            "promote = {promote} out of (0, 1]"
        );
        self.promote = promote;
        self
    }
}

/// The default ladder: the paper's published waypoints (`1/1/1`,
/// `0.3/0.7/0.95`, `0.3/0.5/0.85`, floor `0.1/0.3/0.5`) with two
/// interpolated steps. The last level also covers the paper's NAND-XOR
/// exception, which needs 15–20% new erroneous vectors admitted
/// (`h3 = 0.8`).
pub fn default_ladder() -> Vec<ParamLevel> {
    vec![
        ParamLevel::new(1.0, 1.0, 1.0).with_promote(0.05),
        ParamLevel::new(0.6, 0.85, 0.98).with_promote(0.1),
        ParamLevel::new(0.3, 0.7, 0.95).with_promote(0.2),
        ParamLevel::new(0.3, 0.5, 0.85).with_promote(0.4),
        ParamLevel::new(0.2, 0.4, 0.8).with_promote(0.7),
        ParamLevel::new(0.1, 0.3, 0.5).with_promote(1.0),
        // One rung below the published floor: when errors overlap on every
        // failing vector, no single fix rectifies anything alone and
        // heuristic 1 scores the true sites 0 (the extreme of the Fig. 1
        // masking effect). h1 = 0 admits every marked line, ordered by
        // path-trace count.
        ParamLevel::new(0.0, 0.3, 0.5).with_promote(1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotonically_relaxing() {
        let ladder = default_ladder();
        assert!(ladder.len() >= 4);
        for w in ladder.windows(2) {
            assert!(w[1].h1 <= w[0].h1);
            assert!(w[1].h2 <= w[0].h2);
            assert!(w[1].h3 <= w[0].h3);
            assert!(w[1].promote >= w[0].promote, "promotion must widen");
        }
        assert_eq!(ladder[0], ParamLevel::new(1.0, 1.0, 1.0).with_promote(0.05));
        let floor = *ladder.last().unwrap();
        assert_eq!(floor, ParamLevel::new(0.0, 0.3, 0.5).with_promote(1.0));
        assert!((ParamLevel::new(0.5, 0.5, 0.5).promote - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn rejects_out_of_range() {
        ParamLevel::new(1.5, 0.5, 0.5);
    }
}
