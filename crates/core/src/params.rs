//! The `h1/h2/h3` parameter ladder of §3.3.
//!
//! * `h1` — fraction of erroneous PO bits a suspect line must be able to
//!   rectify under the flip-and-propagate measure (heuristic 1),
//! * `h2` — fraction of `V_err` bit-list entries a candidate correction
//!   must complement (heuristic 2, the aggressive form of Theorem 1's
//!   `|V_err|/N` bound),
//! * `h3` — fraction of previously-correct vectors a candidate correction
//!   must keep correct (heuristic 3).
//!
//! Runs start at `1/1/1` (the single-error case) and relax level by level
//! whenever a node produces no qualifying correction, `h1` first ("it is
//! error-count dependent"), down to the paper's floor of `0.1/0.3/0.5`.

use crate::error::IncdxError;

/// One rung of the relaxation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamLevel {
    /// Heuristic 1 threshold — line qualification. A suspect line `l`
    /// survives when its flip-and-propagate correcting potential clears
    /// the bar:
    ///
    /// ```text
    /// |{erroneous PO bits rectified by complementing l}|
    /// -------------------------------------------------- ≥ h1
    ///              |erroneous PO bits|
    /// ```
    pub h1: f64,
    /// Heuristic 2 threshold — `V_err` complementation. A candidate
    /// correction `c` on a qualified line survives when its new output
    /// row complements enough of the line's erroneous bit-list:
    ///
    /// ```text
    /// |{bits of V_err(l) complemented by c}|
    /// -------------------------------------- ≥ max(h2, |V_err| / N)
    ///              |V_err(l)|
    /// ```
    ///
    /// The `|V_err|/N` term is Theorem 1's guarantee (with `N` the
    /// remaining correction slots): some correction of every valid
    /// `N`-tuple complements at least that fraction, so the floor never
    /// screens out all of a true tuple
    /// ([`RectifyConfig::theorem_floor`](crate::RectifyConfig::theorem_floor)).
    pub h2: f64,
    /// Heuristic 3 threshold — `V_corr` preservation. A correction
    /// survives when it keeps enough previously-correct vectors correct:
    ///
    /// ```text
    /// |{bits of V_corr(l) left unchanged by c}|
    /// ----------------------------------------- ≥ h3
    ///              |V_corr(l)|
    /// ```
    pub h3: f64,
    /// Fraction of path-trace-marked lines promoted to the correction
    /// stage at this level (the paper's "top 5–20%", relaxing to 100% at
    /// the floor so a weakly-marked true error site is eventually
    /// considered).
    pub promote: f64,
}

impl ParamLevel {
    /// Known-good literal levels (the ladder below) skip validation.
    const fn literal(h1: f64, h2: f64, h3: f64, promote: f64) -> Self {
        ParamLevel {
            h1,
            h2,
            h3,
            promote,
        }
    }

    /// A level with the given thresholds and the default 20% promotion
    /// fraction.
    ///
    /// # Errors
    ///
    /// [`IncdxError::InvalidParam`] if any threshold is outside `[0, 1]`.
    pub fn new(h1: f64, h2: f64, h3: f64) -> Result<Self, IncdxError> {
        for (name, value) in [("h1", h1), ("h2", h2), ("h3", h3)] {
            if !(0.0..=1.0).contains(&value) {
                return Err(IncdxError::InvalidParam { name, value });
            }
        }
        Ok(ParamLevel {
            h1,
            h2,
            h3,
            promote: 0.2,
        })
    }

    /// Sets the promotion fraction.
    ///
    /// # Errors
    ///
    /// [`IncdxError::InvalidParam`] if `promote` is outside `(0, 1]`.
    pub fn with_promote(mut self, promote: f64) -> Result<Self, IncdxError> {
        if !(promote > 0.0 && promote <= 1.0) {
            return Err(IncdxError::InvalidParam {
                name: "promote",
                value: promote,
            });
        }
        self.promote = promote;
        Ok(self)
    }

    /// The exhaustive stuck-at level: `h1`/`h3` disabled, `h2 = 1` (cut
    /// to Theorem 1's `|V_err|/N` by the theorem floor), every marked
    /// line promoted — screening prunes nothing a valid tuple needs.
    pub const fn exhaustive() -> Self {
        ParamLevel::literal(0.0, 1.0, 0.0, 1.0)
    }
}

/// The default ladder: the paper's published waypoints (`1/1/1`,
/// `0.3/0.7/0.95`, `0.3/0.5/0.85`, floor `0.1/0.3/0.5`) with two
/// interpolated steps. The last level also covers the paper's NAND-XOR
/// exception, which needs 15–20% new erroneous vectors admitted
/// (`h3 = 0.8`).
pub fn default_ladder() -> Vec<ParamLevel> {
    vec![
        ParamLevel::literal(1.0, 1.0, 1.0, 0.05),
        ParamLevel::literal(0.6, 0.85, 0.98, 0.1),
        ParamLevel::literal(0.3, 0.7, 0.95, 0.2),
        ParamLevel::literal(0.3, 0.5, 0.85, 0.4),
        ParamLevel::literal(0.2, 0.4, 0.8, 0.7),
        ParamLevel::literal(0.1, 0.3, 0.5, 1.0),
        // One rung below the published floor: when errors overlap on every
        // failing vector, no single fix rectifies anything alone and
        // heuristic 1 scores the true sites 0 (the extreme of the Fig. 1
        // masking effect). h1 = 0 admits every marked line, ordered by
        // path-trace count.
        ParamLevel::literal(0.0, 0.3, 0.5, 1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(h1: f64, h2: f64, h3: f64, promote: f64) -> ParamLevel {
        ParamLevel::new(h1, h2, h3)
            .and_then(|l| l.with_promote(promote))
            .unwrap()
    }

    #[test]
    fn ladder_is_monotonically_relaxing() {
        let ladder = default_ladder();
        assert!(ladder.len() >= 4);
        for w in ladder.windows(2) {
            assert!(w[1].h1 <= w[0].h1);
            assert!(w[1].h2 <= w[0].h2);
            assert!(w[1].h3 <= w[0].h3);
            assert!(w[1].promote >= w[0].promote, "promotion must widen");
        }
        assert_eq!(ladder[0], level(1.0, 1.0, 1.0, 0.05));
        let floor = *ladder.last().unwrap();
        assert_eq!(floor, level(0.0, 0.3, 0.5, 1.0));
        assert!((ParamLevel::new(0.5, 0.5, 0.5).unwrap().promote - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range_as_errors() {
        assert!(matches!(
            ParamLevel::new(1.5, 0.5, 0.5),
            Err(IncdxError::InvalidParam { name: "h1", .. })
        ));
        assert!(matches!(
            ParamLevel::new(0.5, -0.1, 0.5),
            Err(IncdxError::InvalidParam { name: "h2", .. })
        ));
        assert!(matches!(
            ParamLevel::new(0.5, 0.5, 0.5).unwrap().with_promote(0.0),
            Err(IncdxError::InvalidParam {
                name: "promote",
                ..
            })
        ));
    }

    #[test]
    fn exhaustive_level_disables_h1_and_h3() {
        let l = ParamLevel::exhaustive();
        assert_eq!(l.h1, 0.0);
        assert_eq!(l.h2, 1.0);
        assert_eq!(l.h3, 0.0);
        assert_eq!(l.promote, 1.0);
    }
}
