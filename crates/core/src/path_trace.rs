//! Path-trace (Venkataraman and Fuchs, reference \[12\] of the paper): a
//! linear-time line-marking procedure that, starting from an erroneous
//! primary output under an erroneous vector, walks backwards marking the
//! lines that could carry the fault effect. Its key property (reference
//! \[10\]): *at least one line of every valid correction set is marked*.
//!
//! The first diagnosis step of §3.1 runs path-trace over a sample of
//! failing vectors and keeps the lines with the highest mark counts.

use incdx_netlist::{DenseBitSet, GateId, GateKind, Netlist};
use incdx_sim::{PackedMatrix, Response};

/// Runs path-trace for up to `vector_cap` failing vectors and returns a
/// mark count per line (`counts[line] = number of traced failing vectors
/// that marked the line`).
///
/// The marking rule at a gate with a marked output, evaluated under the
/// traced vector:
///
/// * inverter/buffer: trace the fanin;
/// * AND/NAND (OR/NOR): if some fanin carries the controlling value 0 (1),
///   trace *all controlling fanins*; otherwise trace all fanins;
/// * XOR/XNOR: trace all fanins.
///
/// # Example
///
/// ```
/// use incdx_core::path_trace_counts;
/// use incdx_netlist::parse_bench;
/// use incdx_sim::{PackedMatrix, Response, Simulator};
///
/// let good = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let bad = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n")?;
/// let mut pi = PackedMatrix::new(2, 4);
/// pi.row_mut(0)[0] = 0b0101;
/// pi.row_mut(1)[0] = 0b0011;
/// let mut sim = Simulator::new();
/// let spec = Response::capture(&good, &sim.run(&good, &pi));
/// let vals = sim.run(&bad, &pi);
/// let resp = Response::compare(&bad, &vals, &spec);
/// let counts = path_trace_counts(&bad, &vals, &resp, &spec, 16);
/// let y = bad.find_by_name("y").unwrap();
/// assert!(counts[y.index()] > 0, "the erroneous line is always marked");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn path_trace_counts(
    netlist: &Netlist,
    vals: &PackedMatrix,
    response: &Response,
    spec: &Response,
    vector_cap: usize,
) -> Vec<u32> {
    let mut counts = vec![0u32; netlist.len()];
    let mut marked = DenseBitSet::new(netlist.len());
    let mut stack: Vec<GateId> = Vec::new();
    for v in response.failing_vectors().iter_ones().take(vector_cap) {
        marked.clear();
        stack.clear();
        // Seed with every erroneous PO of this vector.
        for (po_idx, &po) in netlist.outputs().iter().enumerate() {
            let got = response.po_values().get(po_idx, v);
            let want = spec.po_values().get(po_idx, v);
            if got != want && marked.insert(po.index()) {
                stack.push(po);
            }
        }
        while let Some(g) = stack.pop() {
            let gate = netlist.gate(g);
            let trace = |l: GateId, marked: &mut DenseBitSet, stack: &mut Vec<GateId>| {
                if marked.insert(l.index()) {
                    stack.push(l);
                }
            };
            match gate.kind() {
                GateKind::Not | GateKind::Buf | GateKind::Dff => {
                    trace(gate.fanins()[0], &mut marked, &mut stack);
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let Some(c) = gate.kind().controlling_value() else {
                        // Unreachable for the and/or family; tracing every
                        // fanin is the conservative fallback (never loses a
                        // mark the paper's guarantee needs).
                        for &f in gate.fanins() {
                            trace(f, &mut marked, &mut stack);
                        }
                        continue;
                    };
                    let any_controlling = gate.fanins().iter().any(|f| vals.get(f.index(), v) == c);
                    for &f in gate.fanins() {
                        if !any_controlling || vals.get(f.index(), v) == c {
                            trace(f, &mut marked, &mut stack);
                        }
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    for &f in gate.fanins() {
                        trace(f, &mut marked, &mut stack);
                    }
                }
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
            }
        }
        for l in marked.iter() {
            counts[l] += 1;
        }
    }
    counts
}

/// The multi-observation batch form of [`path_trace_counts`]: one
/// reverse-topological **bit-parallel** marking pass over the whole traced
/// observation set, instead of one scalar DFS per failing vector.
///
/// Each gate carries a packed mark mask (one bit per traced failing
/// vector). Primary-output seeds are the erroneous bits; at every gate the
/// scalar marking rule is applied word-parallel: for an AND/NAND (OR/NOR)
/// with controlling value `c`, a fanin is marked on the vectors where the
/// gate is marked and either the fanin carries `c` or no fanin does;
/// inverters, buffers and XOR-family gates propagate the gate's mask to
/// every fanin. One reverse-topological pass reaches the fixpoint because
/// marks only ever flow to topologically earlier gates, so each gate's
/// mask is final when the pass reaches it.
///
/// Returns the per-line counts — **bit-identical** to
/// [`path_trace_counts`] (property-tested below) — plus the number of
/// failing observations actually batched (`min(vector_cap, failing)`).
pub fn path_trace_counts_batched(
    netlist: &Netlist,
    vals: &PackedMatrix,
    response: &Response,
    spec: &Response,
    vector_cap: usize,
) -> (Vec<u32>, usize) {
    let n = netlist.len();
    let wpr = vals.words_per_row();
    // Mask of the traced failing vectors: the first `vector_cap` failing
    // vectors ascending, matching the scalar loop's `iter_ones().take()`.
    let mut traced = vec![0u64; wpr];
    let mut observations = 0usize;
    for v in response.failing_vectors().iter_ones().take(vector_cap) {
        traced[v / 64] |= 1u64 << (v % 64);
        observations += 1;
    }
    let mut mark = vec![0u64; n * wpr];
    // Seed every PO with its erroneous traced bits.
    for (po_idx, &po) in netlist.outputs().iter().enumerate() {
        let got = response.po_values().row(po_idx);
        let want = spec.po_values().row(po_idx);
        let row = &mut mark[po.index() * wpr..(po.index() + 1) * wpr];
        for w in 0..wpr {
            row[w] |= (got[w] ^ want[w]) & traced[w];
        }
    }
    let mut scratch = vec![0u64; wpr];
    for &g in netlist.topo_order().iter().rev() {
        let gi = g.index() * wpr;
        if mark[gi..gi + wpr].iter().all(|&w| w == 0) {
            continue;
        }
        let gate = netlist.gate(g);
        match gate.kind() {
            GateKind::Not | GateKind::Buf | GateKind::Dff => {
                let f = gate.fanins()[0].index() * wpr;
                for w in 0..wpr {
                    mark[f + w] |= mark[gi + w];
                }
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                // `c` is Some for the whole and/or family; the scalar
                // fallback (trace everything) is kept for parity.
                let fanin_ctrl = |f: GateId, c: bool, w: usize| {
                    let row = vals.row(f.index());
                    if c {
                        row[w]
                    } else {
                        !row[w]
                    }
                };
                match gate.kind().controlling_value() {
                    Some(c) => {
                        // any_ctrl[w]: vectors where some fanin carries the
                        // controlling value.
                        scratch.iter_mut().for_each(|w| *w = 0);
                        for &f in gate.fanins() {
                            for (w, s) in scratch.iter_mut().enumerate() {
                                *s |= fanin_ctrl(f, c, w);
                            }
                        }
                        for &f in gate.fanins() {
                            let fi = f.index() * wpr;
                            for w in 0..wpr {
                                mark[fi + w] |= mark[gi + w] & (fanin_ctrl(f, c, w) | !scratch[w]);
                            }
                        }
                    }
                    None => {
                        for &f in gate.fanins() {
                            let fi = f.index() * wpr;
                            for w in 0..wpr {
                                mark[fi + w] |= mark[gi + w];
                            }
                        }
                    }
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                for &f in gate.fanins() {
                    let fi = f.index() * wpr;
                    for w in 0..wpr {
                        mark[fi + w] |= mark[gi + w];
                    }
                }
            }
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
        }
    }
    let counts = (0..n)
        .map(|l| {
            mark[l * wpr..(l + 1) * wpr]
                .iter()
                .map(|w| w.count_ones())
                .sum()
        })
        .collect();
    (counts, observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incdx_fault::{inject_design_errors, inject_stuck_at_faults, InjectionConfig};
    use incdx_gen::generate;
    use incdx_sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        golden: &Netlist,
        corrupted: &Netlist,
        vectors: usize,
        seed: u64,
    ) -> (PackedMatrix, Response, Response, PackedMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = PackedMatrix::random(golden.inputs().len(), vectors, &mut rng);
        let mut sim = Simulator::new();
        let spec = Response::capture(golden, &sim.run(golden, &pi));
        let vals = sim.run_for_inputs(corrupted, golden.inputs(), &pi);
        let resp = Response::compare(corrupted, &vals, &spec);
        (pi, spec, resp, vals)
    }

    #[test]
    fn marks_at_least_one_injected_stuck_at_site_per_vector() {
        // The published guarantee: every traced failing vector marks at
        // least one line of every valid correction set — in particular of
        // the actually-injected fault set.
        let golden = generate("c880a").unwrap();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = InjectionConfig {
                count: 2,
                require_individually_observable: false,
                check_vectors: 512,
                max_attempts: 100,
            };
            let inj = inject_stuck_at_faults(&golden, &cfg, &mut rng).unwrap();
            // Diagnosis direction: rectify the *golden* netlist toward the
            // faulty device, so trace on the golden values against the
            // device's responses.
            let mut rng2 = StdRng::seed_from_u64(seed + 1000);
            let pi = PackedMatrix::random(golden.inputs().len(), 512, &mut rng2);
            let mut sim = Simulator::new();
            let device = Response::capture(
                &inj.corrupted,
                &sim.run_for_inputs(&inj.corrupted, golden.inputs(), &pi),
            );
            let vals = sim.run(&golden, &pi);
            let resp = Response::compare(&golden, &vals, &device);
            if resp.num_failing() == 0 {
                continue; // not excited on these vectors
            }
            let counts = path_trace_counts(&golden, &vals, &resp, &device, 64);
            let hit = inj.injected.iter().any(|f| counts[f.line().index()] > 0);
            assert!(hit, "seed {seed}: no injected site marked");
        }
    }

    #[test]
    fn marks_at_least_one_injected_error_site() {
        let golden = generate("c432a").unwrap();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let inj = inject_design_errors(&golden, &InjectionConfig::default(), &mut rng).unwrap();
            let (_pi, spec, resp, vals) = setup(&golden, &inj.corrupted, 512, seed + 77);
            assert!(resp.num_failing() > 0, "injector guarantees observability");
            let counts = path_trace_counts(&inj.corrupted, &vals, &resp, &spec, 64);
            let hit = inj.injected.iter().any(|e| counts[e.line().index()] > 0);
            assert!(hit, "seed {seed}: no injected site marked");
        }
    }

    #[test]
    fn marks_are_bounded_by_traced_vectors() {
        let golden = generate("c17").unwrap();
        let mut corrupted = golden.clone();
        let line = corrupted.find_by_name("16").unwrap();
        incdx_fault::StuckAt::new(line, true)
            .apply(&mut corrupted)
            .unwrap();
        let (_pi, spec, resp, vals) = setup(&golden, &corrupted, 32, 3);
        let cap = 4;
        let counts = path_trace_counts(&corrupted, &vals, &resp, &spec, cap);
        assert!(counts.iter().all(|&c| c as usize <= cap));
        assert!(counts.iter().any(|&c| c > 0));
    }

    #[test]
    fn batched_counts_are_bit_identical_to_scalar_counts() {
        // The multi-observation batch pass must be an exact re-expression
        // of the per-vector DFS — same counts for every line, every cap.
        for (circuit, seed) in [("c432a", 1u64), ("c880a", 2)] {
            let golden = generate(circuit).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let inj = inject_design_errors(&golden, &InjectionConfig::default(), &mut rng).unwrap();
            let (_pi, spec, resp, vals) = setup(&golden, &inj.corrupted, 256, seed + 7);
            assert!(resp.num_failing() > 0);
            for cap in [1usize, 3, 32, usize::MAX] {
                let scalar = path_trace_counts(&inj.corrupted, &vals, &resp, &spec, cap);
                let (batched, obs) =
                    path_trace_counts_batched(&inj.corrupted, &vals, &resp, &spec, cap);
                assert_eq!(scalar, batched, "{circuit} cap {cap}");
                assert_eq!(obs, resp.failing_vectors().iter_ones().take(cap).count());
            }
        }
    }

    #[test]
    fn no_failing_vectors_means_no_marks() {
        let golden = generate("c17").unwrap();
        let (_pi, spec, resp, vals) = setup(&golden, &golden, 32, 4);
        let counts = path_trace_counts(&golden, &vals, &resp, &spec, 8);
        assert!(counts.iter().all(|&c| c == 0));
    }
}
